//! Fuzz + property wall for the campaign-server JSONL protocol
//! (`DESIGN.md` §10).
//!
//! The contract pinned here:
//!
//! * [`parse_request`] never panics — on byte soup, truncated lines,
//!   spliced junk, or structurally valid JSON with hostile fields — and
//!   every failure is a structured [`RequestError`] naming its stage.
//! * A valid request round-trips losslessly: `to_json` → compact line →
//!   `parse_request` reproduces the exact [`Request`], regardless of
//!   the order fields appear in on the wire.
//! * Every error the server would emit for a bad line is itself a valid
//!   JSONL response carrying the response schema tag.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use htforge::obs::{parse_json, Json};
use htforge::server::{
    parse_request, CircuitSource, JobKind, JobParams, JobSpec, Request, Response, RESPONSE_SCHEMA,
};

const STAGES: [&str; 3] = ["parse", "schema", "request"];

fn ascii_string(bytes: Vec<u8>) -> String {
    bytes.into_iter().map(|b| (b'a' + b % 26) as char).collect()
}

fn kind_strategy() -> impl Strategy<Value = JobKind> {
    prop_oneof![
        Just(JobKind::Simulate),
        Just(JobKind::Insert),
        Just(JobKind::Grade),
        Just(JobKind::Detect),
    ]
}

fn circuit_strategy() -> impl Strategy<Value = CircuitSource> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..12)
            .prop_map(|b| CircuitSource::Builtin(ascii_string(b))),
        // Inline netlists carry newlines, quotes and backslashes: the
        // JSON string escaper is part of the round-trip under test.
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|b| {
            let mut text = String::from("INPUT(a)\n# \"quoted\\path\"\n");
            text.push_str(&ascii_string(b));
            CircuitSource::Inline(text)
        }),
    ]
}

/// Specs whose every field survives the wire unclamped, so the
/// round-trip must be exact equality.
fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        proptest::collection::vec(any::<u8>(), 0..6),
        proptest::collection::vec(any::<u8>(), 1..10),
        kind_strategy(),
        circuit_strategy(),
        -1000i64..1000,
        prop_oneof![Just(None), (0u64..1 << 32).prop_map(Some)],
        (
            1u64..10_000,
            // Seeds ride the wire as f64; stay within exact range.
            0u64..1 << 53,
            1u64..100,
            0u32..501,
            1u64..65,
            1u64..257,
            prop_oneof![Just("random"), Just("mero"), Just("ndatpg")],
            1u64..5_000,
        ),
    )
        .prop_map(
            |(tenant, id, kind, circuit, priority, deadline_ms, params)| {
                let (vectors, seed, repeat, theta_milli, trigger, instances, scheme, tests) =
                    params;
                JobSpec {
                    tenant: ascii_string(tenant),
                    id: ascii_string(id),
                    kind,
                    circuit,
                    priority,
                    deadline_ms,
                    params: JobParams {
                        vectors: vectors as usize,
                        seed,
                        repeat: repeat as usize,
                        theta: f64::from(theta_milli) / 1000.0,
                        trigger_nodes: trigger as usize,
                        instances: instances as usize,
                        scheme: scheme.to_owned(),
                        tests: tests as usize,
                    },
                }
            },
        )
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        spec_strategy().prop_map(|s| Request::Submit(Box::new(s))),
        (
            proptest::collection::vec(any::<u8>(), 0..6),
            proptest::collection::vec(any::<u8>(), 1..10),
        )
            .prop_map(|(tenant, id)| Request::Cancel {
                tenant: ascii_string(tenant),
                id: ascii_string(id),
            }),
        Just(Request::Status),
        Just(Request::Metrics),
        any::<bool>().prop_map(|drop_queued| Request::Shutdown { drop_queued }),
    ]
}

/// A canonical valid submit line (ASCII, so byte-index truncation is
/// always a char boundary).
fn sample_line() -> String {
    Request::Submit(Box::new(JobSpec {
        tenant: "acme".into(),
        id: "job-1".into(),
        kind: JobKind::Detect,
        circuit: CircuitSource::Builtin("c17".into()),
        priority: 2,
        deadline_ms: Some(5_000),
        params: JobParams::default(),
    }))
    .to_json()
    .compact()
}

/// Recursively shuffles the field order of every JSON object.
fn shuffle_fields(doc: &mut Json, rng: &mut StdRng) {
    match doc {
        Json::Obj(fields) => {
            fields.shuffle(rng);
            for (_, v) in fields {
                shuffle_fields(v, rng);
            }
        }
        Json::Arr(items) => {
            for v in items {
                shuffle_fields(v, rng);
            }
        }
        _ => {}
    }
}

proptest! {
    /// Arbitrary bytes (lossily decoded): a structured error naming a
    /// known stage, never a panic.
    #[test]
    fn parse_request_survives_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_request(&line) {
            prop_assert!(STAGES.contains(&e.stage), "unknown stage `{}`", e.stage);
            // The error the daemon would write back is itself a valid
            // schema-tagged JSONL response.
            let resp = Response::from_request_error(&e).to_line();
            let doc = parse_json(&resp).expect("error response must be valid JSON");
            prop_assert_eq!(doc.get("schema").and_then(Json::as_str), Some(RESPONSE_SCHEMA));
            prop_assert_eq!(doc.get("type").and_then(Json::as_str), Some("error"));
        }
    }

    /// A valid line cut off anywhere (killed pipe, partial write) must
    /// parse or error, never panic.
    #[test]
    fn parse_request_survives_truncation(cut in any::<usize>()) {
        let line = sample_line();
        let cut = cut % (line.len() + 1);
        let truncated = &line[..cut];
        match parse_request(truncated) {
            Ok(req) if cut == line.len() => {
                prop_assert_eq!(req.to_json().compact(), line.clone(), "full line must parse");
            }
            Ok(_) | Err(_) => {}
        }
    }

    /// A valid line with a junk window spliced in — exercises parser
    /// paths that pure byte soup rarely reaches (valid prefixes).
    #[test]
    fn parse_request_survives_splice(
        at in any::<usize>(),
        junk in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let line = sample_line();
        let at = at % (line.len() + 1);
        let spliced = format!(
            "{}{}{}",
            &line[..at],
            String::from_utf8_lossy(&junk),
            &line[at..]
        );
        if let Err(e) = parse_request(&spliced) {
            prop_assert!(STAGES.contains(&e.stage), "unknown stage `{}`", e.stage);
        }
    }

    /// Structurally valid JSON with hostile field values (wrong types,
    /// absurd numbers) through every typed accessor.
    #[test]
    fn parse_request_survives_hostile_fields(
        op in prop_oneof![Just("submit"), Just("cancel"), Just("status"), Just("metrics"), Just("shutdown"), Just("reboot")],
        field in prop_oneof![
            Just("kind"), Just("circuit"), Just("priority"), Just("deadline_ms"),
            Just("params"), Just("id"), Just("tenant"), Just("mode"),
        ],
        value in prop_oneof![
            Just(Json::Null),
            Just(Json::Bool(true)),
            any::<f64>().prop_map(Json::Num),
            Just(Json::Arr(vec![Json::Num(1.0)])),
            Just(Json::Str("\u{0}\\\"".into())),
        ],
    ) {
        let doc = Json::obj(vec![
            ("schema", Json::Str(htforge::server::REQUEST_SCHEMA.into())),
            ("op", Json::Str(op.into())),
            ("id", Json::Str("j".into())),
            ("circuit", Json::Str("c17".into())),
            ("kind", Json::Str("simulate".into())),
            (field, value),
        ]);
        if let Err(e) = parse_request(&doc.compact()) {
            prop_assert!(STAGES.contains(&e.stage), "unknown stage `{}`", e.stage);
        }
    }

    /// Lossless round-trip: serialize → parse reproduces the request
    /// exactly, including every parameter.
    #[test]
    fn valid_requests_round_trip_losslessly(req in request_strategy()) {
        let line = req.to_json().compact();
        let parsed = parse_request(&line)
            .unwrap_or_else(|e| panic!("round-trip parse failed on `{line}`: {e:?}"));
        prop_assert_eq!(parsed, req);
    }

    /// Field order on the wire is irrelevant: shuffling every object's
    /// fields (top level and nested `params`) parses to the same request.
    #[test]
    fn field_order_never_matters(req in request_strategy(), shuffle_seed in any::<u64>()) {
        let canonical = req.to_json();
        let mut shuffled = canonical.clone();
        shuffle_fields(&mut shuffled, &mut StdRng::seed_from_u64(shuffle_seed));
        let parsed = parse_request(&shuffled.compact())
            .unwrap_or_else(|e| panic!("shuffled parse failed: {e:?}"));
        prop_assert_eq!(parsed, req);
    }
}

#[test]
fn malformed_lines_each_get_one_error_response_from_a_live_server() {
    use htforge::server::{Server, ServerConfig};

    let (server, rx) = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let bad_lines = [
        "",
        "   ",
        "{",
        "null",
        "[1,2,3]",
        "{\"op\":\"submit\"}",
        "{\"schema\":\"htforge.job_request/v9\",\"op\":\"status\"}",
        "\u{7f}\u{1b}[2Jgarbage",
    ];
    for line in bad_lines {
        server.handle_line(line);
    }
    // A good request after the barrage proves the session survived.
    server.handle_line(
        r#"{"schema":"htforge.job_request/v1","op":"submit","id":"ok","kind":"simulate","circuit":"c17","params":{"vectors":64}}"#,
    );
    server.request_shutdown(false);
    let stats = server.join();
    let responses: Vec<_> = rx.iter().collect();
    let errors = responses
        .iter()
        .filter(|r| matches!(r, Response::Error { .. }))
        .count();
    // Blank lines are skipped by the session reader, but handle_line
    // sees them here as parse errors — every bad line answered.
    assert_eq!(errors, bad_lines.len(), "{responses:?}");
    assert_eq!(stats.completed, 1);
    assert!(responses
        .iter()
        .any(|r| matches!(r, Response::Result(jr) if jr.id == "ok")));
}
