//! End-to-end resilience properties (`DESIGN.md` §9): wall-clock
//! deadlines and cross-thread cancellation on paper-scale circuits.
//!
//! The synthetic c7552/s38584 substitutes are large enough that an
//! unbudgeted pipeline run takes many seconds — a deadline in the
//! hundreds of milliseconds forces the degradation ladder to engage.

use std::time::{Duration, Instant};

use htforge::atpg::PodemConfig;
use htforge::core::{InsertionConfig, InsertionError, InsertionFramework};
use htforge::obs::RunBudget;

fn paper_scale_config() -> InsertionConfig {
    InsertionConfig {
        theta: 0.20,
        num_vectors: 10_000,
        trigger_nodes: 8,
        num_instances: 10,
        seed: 7,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    }
}

/// The run must come back promptly once the deadline passes — either
/// with partial results (and notes explaining the shortfall) or with a
/// phase-tagged `Timeout`. The overshoot bound is loose (CI boxes are
/// slow and single-core) but catches hangs and unbounded sweeps.
fn assert_deadline_respected(circuit: &str, deadline: Duration, overshoot: Duration) {
    let nl = htforge::circuits::load(circuit).unwrap();
    let started = Instant::now();
    let result = InsertionFramework::new(paper_scale_config())
        .run_with_budget(&nl, &RunBudget::with_deadline(deadline));
    let elapsed = started.elapsed();
    assert!(
        elapsed < deadline + overshoot,
        "{circuit}: deadline {deadline:?} but ran {elapsed:?}"
    );
    match result {
        Ok(outcome) => assert!(
            !outcome.degradations.is_empty(),
            "{circuit}: a run this tight must report degradations"
        ),
        Err(InsertionError::Timeout { phase }) => assert!(!phase.is_empty()),
        Err(other) => panic!("{circuit}: unexpected error {other}"),
    }
}

#[test]
fn c7552_scale_deadline_returns_promptly() {
    assert_deadline_respected("c7552", Duration::from_millis(500), Duration::from_secs(3));
}

#[test]
fn s38584_scale_deadline_returns_promptly() {
    assert_deadline_respected("s38584", Duration::from_millis(500), Duration::from_secs(3));
}

#[test]
fn zero_deadline_fails_fast_with_timeout() {
    let nl = htforge::circuits::load("c7552").unwrap();
    let started = Instant::now();
    let result = InsertionFramework::new(paper_scale_config())
        .run_with_budget(&nl, &RunBudget::with_deadline(Duration::ZERO));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "zero deadline must not start real work"
    );
    assert!(
        matches!(result, Err(InsertionError::Timeout { .. })),
        "got {result:?}"
    );
}

#[test]
fn cancellation_from_another_thread_stops_a_large_run() {
    let nl = htforge::circuits::load("s38584").unwrap();
    let budget = RunBudget::unlimited();
    let token = budget.cancel_token();
    let started = Instant::now();
    let result = std::thread::scope(|scope| {
        let worker = scope
            .spawn(|| InsertionFramework::new(paper_scale_config()).run_with_budget(&nl, &budget));
        std::thread::sleep(Duration::from_millis(100));
        token.cancel();
        worker.join().expect("worker must not panic")
    });
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "cancellation ignored for {elapsed:?}"
    );
    // s38584-scale work cannot finish in 100 ms, so the run must have
    // observed the token.
    assert!(
        matches!(result, Err(InsertionError::Cancelled)),
        "got {result:?}"
    );
}
