//! Property-based tests (proptest) over the toolkit's core invariants.

use proptest::prelude::*;

use htforge::atpg::Cube;
use htforge::circuits::synth::{generate, CircuitProfile};
use htforge::core::TriggerPlan;
use htforge::netlist::bench;
use htforge::sim::simulator::BoundSimulator;
use htforge::sim::{PatternSet, Tri};

fn arb_tri() -> impl Strategy<Value = Tri> {
    prop_oneof![Just(Tri::Zero), Just(Tri::One), Just(Tri::X)]
}

fn arb_cube(width: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(arb_tri(), width).prop_map(Cube::from_tris)
}

proptest! {
    /// Cube merging is commutative and preserves both operands' care bits.
    #[test]
    fn cube_merge_commutes(a in arb_cube(16), b in arb_cube(16)) {
        match (a.merge(&b), b.merge(&a)) {
            (Some(ab), Some(ba)) => {
                prop_assert_eq!(&ab, &ba);
                for i in 0..16 {
                    if a.get(i).is_care() {
                        prop_assert_eq!(ab.get(i), a.get(i));
                    }
                    if b.get(i).is_care() {
                        prop_assert_eq!(ab.get(i), b.get(i));
                    }
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "merge symmetry violated"),
        }
    }

    /// Compatibility is exactly "merge succeeds".
    #[test]
    fn compatibility_iff_mergeable(a in arb_cube(12), b in arb_cube(12)) {
        prop_assert_eq!(a.compatible(&b), a.merge(&b).is_some());
    }

    /// Any full vector drawn from a cube is contained in it.
    #[test]
    fn fill_is_contained(c in arb_cube(10), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = c.fill_random(&mut rng);
        prop_assert!(c.contains(&v));
    }

    /// The synthesized trigger tree fires exactly on the rare pattern,
    /// for arbitrary rare-value vectors and fan-ins.
    #[test]
    fn trigger_tree_is_exact(
        rare in proptest::collection::vec(any::<bool>(), 1..10),
        fanin in 2usize..5,
        probe in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let plan = TriggerPlan::synthesize(&rare, fanin);
        let leaves: Vec<bool> = probe.iter().take(rare.len()).copied().collect();
        let expected = leaves.iter().zip(&rare).all(|(&l, &r)| l == r);
        prop_assert_eq!(plan.eval(&leaves), expected);
        // And the all-rare pattern always fires.
        prop_assert!(plan.eval(&rare));
    }

    /// Generated synthetic netlists always validate and round-trip
    /// through the `.bench` format with identical structure.
    #[test]
    fn synthetic_netlists_round_trip(
        seed in any::<u64>(),
        inputs in 4usize..16,
        outputs in 1usize..5,
        gates in 30usize..120,
        dffs in 0usize..8,
    ) {
        let profile = CircuitProfile {
            name: "prop".into(),
            inputs,
            outputs,
            gates: gates.max(2 * outputs + 2),
            dffs,
            seed,
        };
        let nl = generate(&profile);
        prop_assert!(nl.validate().is_ok());
        prop_assert_eq!(nl.inputs().len(), inputs);
        prop_assert_eq!(nl.outputs().len(), outputs);
        prop_assert_eq!(nl.dffs().len(), dffs);

        let text = bench::write(&nl);
        let back = bench::parse(&text, "prop").expect("round-trip parses");
        prop_assert_eq!(back.node_count(), nl.node_count());
        prop_assert_eq!(back.gate_count(), nl.gate_count());
        prop_assert_eq!(back.dffs().len(), nl.dffs().len());
    }

    /// Round-tripped netlists are functionally identical (checked by
    /// bit-parallel simulation on random vectors).
    #[test]
    fn round_trip_preserves_function(seed in any::<u64>()) {
        let profile = CircuitProfile {
            name: "prop_fn".into(),
            inputs: 8,
            outputs: 3,
            gates: 80,
            dffs: 0,
            seed,
        };
        let nl = generate(&profile);
        let back = bench::parse(&bench::write(&nl), "prop_fn").expect("parses");

        let ps = PatternSet::random(8, 256, seed ^ 1);
        let a = BoundSimulator::new(&nl).expect("valid").run(&ps);
        let b = BoundSimulator::new(&back).expect("valid").run(&ps);
        for (&oa, &ob) in nl.outputs().iter().zip(back.outputs()) {
            for p in 0..ps.len() {
                prop_assert_eq!(a.value(oa, p), b.value(ob, p));
            }
        }
    }

    /// Bit-parallel and scalar gate evaluation agree on every gate kind.
    #[test]
    fn bit_parallel_matches_scalar(
        kind_idx in 0usize..8,
        inputs in proptest::collection::vec(any::<bool>(), 1..5),
    ) {
        let kind = htforge::netlist::GateKind::ALL[kind_idx];
        let inputs = if kind.is_unary() { vec![inputs[0]] } else { inputs };
        let scalar = kind.eval_bool(&inputs);
        let words: Vec<u64> = inputs.iter().map(|&b| u64::from(b)).collect();
        prop_assert_eq!(kind.eval_bits(&words) & 1 == 1, scalar);
    }
}
