//! Differential tests for [`DeltaSim`] incremental re-simulation.
//!
//! Every session must hold exactly the values a fresh full run of its
//! current patterns would produce — after single-bit flips, column
//! overwrites, batches of random edits, and fallbacks — on real
//! circuits (c17, a 16×16 multiplier, c2670) and random synthetic DAGs.
//! The proptest block drives arbitrary dirty sets; the directed tests
//! pin the fallback boundary and its observability.

use htforge_circuits::multiplier::multiplier;
use htforge_circuits::synth::{generate, CircuitProfile};
use htforge_netlist::Netlist;
use htforge_sim::{DeltaOutcome, DeltaSim, PatternSet, SimProgram};
use proptest::prelude::*;

/// Asserts the session's base evaluation is bit-identical — per node,
/// per packed word — to a fresh full kernel run of its current patterns.
fn assert_matches_full(nl: &Netlist, prog: &SimProgram, sim: &DeltaSim<'_>, label: &str) {
    let full = prog.run(sim.patterns());
    for id in nl.node_ids() {
        assert_eq!(
            sim.words(id),
            full.words(id),
            "{label}: node {}",
            nl.node(id).name()
        );
    }
}

/// Decodes one packed random edit: bits 32.. pick the input column,
/// bits 1..=16 the pattern, bit 0 the value (all reduced modulo the
/// session's bounds).
fn decode(edit: u64, inputs: usize, len: usize) -> (usize, usize, bool) {
    (
        (edit >> 32) as usize % inputs,
        ((edit >> 1) & 0xFFFF) as usize % len,
        edit & 1 == 1,
    )
}

/// Applies `edits` (raw values reduced modulo the session's bounds) as
/// one batch, propagates, and checks the session against the full run.
/// Returns the propagate outcome.
fn apply_batch(
    nl: &Netlist,
    prog: &SimProgram,
    sim: &mut DeltaSim<'_>,
    edits: &[(usize, usize, bool)],
    label: &str,
) -> DeltaOutcome {
    let inputs = sim.num_inputs();
    let len = sim.len();
    for &(i, p, v) in edits {
        sim.set_input(i % inputs, p % len, v);
    }
    let outcome = sim.propagate();
    assert_matches_full(nl, prog, sim, label);
    outcome
}

fn circuit(pick: u8) -> (Netlist, usize, &'static str) {
    match pick % 3 {
        0 => (htforge_circuits::iscas::c17(), 70, "c17"),
        1 => (multiplier("mul8", 8), 100, "mul8"),
        _ => (
            htforge_circuits::load("c2670").expect("built-in circuit"),
            130,
            "c2670",
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary batches of random edits across several propagate calls
    /// keep the session bit-identical to full runs, whichever path
    /// (incremental or fallback) each call takes.
    #[test]
    fn random_dirty_sets_track_full_runs(
        pick in any::<u8>(),
        batches in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..12),
            1..4,
        ),
    ) {
        let (nl, len, name) = circuit(pick);
        let inputs = nl.inputs().len();
        let prog = SimProgram::compile(&nl).unwrap();
        let base = PatternSet::random(inputs, len, u64::from(pick) + 7);
        let mut sim = prog.delta_sim(base);
        for (bi, batch) in batches.iter().enumerate() {
            let edits: Vec<(usize, usize, bool)> =
                batch.iter().map(|&e| decode(e, inputs, len)).collect();
            apply_batch(&nl, &prog, &mut sim, &edits, &format!("{name} batch {bi}"));
        }
    }

    /// A forced-fallback session (threshold 0) and a never-fallback
    /// session (threshold 1.0) agree with each other and with the full
    /// run under the same edits: the fallback is a performance decision,
    /// never a semantic one.
    #[test]
    fn fallback_and_incremental_paths_agree(
        pick in any::<u8>(),
        raw in proptest::collection::vec(any::<u64>(), 1..10),
    ) {
        let (nl, len, name) = circuit(pick);
        let inputs = nl.inputs().len();
        let edits: Vec<(usize, usize, bool)> =
            raw.iter().map(|&e| decode(e, inputs, len)).collect();
        let prog = SimProgram::compile(&nl).unwrap();
        let base = PatternSet::random(inputs, len, u64::from(pick) + 31);
        let mut eager = prog.delta_sim(base.clone()).with_fallback_fraction(0.0);
        let mut never = prog.delta_sim(base).with_fallback_fraction(1.0);
        apply_batch(&nl, &prog, &mut eager, &edits, &format!("{name} eager"));
        apply_batch(&nl, &prog, &mut never, &edits, &format!("{name} never"));
        for id in nl.node_ids() {
            prop_assert_eq!(eager.words(id), never.words(id));
        }
    }
}

#[test]
fn synthetic_dags_delta_equivalence() {
    // Random DAG shapes (every third sequential: non-scan DFF rows stay
    // constant 0 through incremental updates too), driven through a
    // deterministic edit schedule of flips and column overwrites.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xDE17A);
    for i in 0..10u64 {
        let outputs = rng.gen_range(1..5usize);
        let profile = CircuitProfile {
            name: format!("delta{i}"),
            inputs: rng.gen_range(3..20usize),
            outputs,
            gates: rng.gen_range(2 * outputs..200),
            dffs: if i % 3 == 0 {
                rng.gen_range(1..6usize)
            } else {
                0
            },
            seed: 0xD17A ^ (i * 0x9E37_79B9),
        };
        let nl = generate(&profile);
        let len = [1usize, 63, 64, 65, 130][i as usize % 5];
        let prog = SimProgram::compile(&nl).unwrap();
        let mut sim = prog.delta_sim(PatternSet::random(nl.inputs().len(), len, i + 5));
        let inputs = nl.inputs().len();
        for round in 0..6u64 {
            if round % 2 == 0 {
                let edits: Vec<(usize, usize, bool)> = (0..=round)
                    .map(|_| {
                        (
                            rng.gen_range(0..inputs),
                            rng.gen_range(0..len),
                            rng.gen_bool(0.5),
                        )
                    })
                    .collect();
                apply_batch(
                    &nl,
                    &prog,
                    &mut sim,
                    &edits,
                    &format!("{}/{len} round {round}", profile.name),
                );
            } else {
                let col = rng.gen_range(0..inputs);
                let words: Vec<u64> = (0..PatternSet::words_for(len)).map(|_| rng.gen()).collect();
                sim.set_input_words(col, &words);
                sim.propagate();
                assert_matches_full(
                    &nl,
                    &prog,
                    &sim,
                    &format!("{}/{len} overwrite {round}", profile.name),
                );
            }
        }
    }
}

#[test]
fn one_bit_flip_is_cheap_on_c2670() {
    // The MERO regime: one flipped bit against a settled base must
    // re-evaluate only a small cone, not the whole tape.
    let nl = htforge_circuits::load("c2670").expect("built-in circuit");
    let prog = SimProgram::compile(&nl).unwrap();
    let mut sim = prog.delta_sim(PatternSet::random(nl.inputs().len(), 64, 0x2670));
    let full_cost = prog.steps() * PatternSet::words_for(64);
    let mut incremental = 0usize;
    let mut spent = 0usize;
    for i in 0..nl.inputs().len() {
        let old = sim.patterns().get(i, 17);
        sim.set_input(i, 17, !old);
        if let DeltaOutcome::Incremental { step_words } = sim.propagate() {
            incremental += 1;
            spent += step_words;
        }
        let flipped = sim.patterns().get(i, 17);
        assert_eq!(flipped, !old, "edit must stick");
    }
    assert!(incremental > 0, "some flips must stay incremental");
    let avg = spent as f64 / incremental as f64;
    assert!(
        avg < full_cost as f64 * 0.5,
        "average cone ({avg:.1} step-words) should be well under the \
         full-run cost ({full_cost} step-words)"
    );
}

#[test]
fn fallback_past_threshold_is_correct_and_observable() {
    // Overwriting every input column dirties far more than 25% of the
    // tape on this circuit: the session must fall back (observably via
    // the outcome) and still match the full run bit for bit.
    let nl = multiplier("mul8", 8);
    let prog = SimProgram::compile(&nl).unwrap();
    let mut sim = prog.delta_sim(PatternSet::zeros(nl.inputs().len(), 100));
    assert_eq!(
        sim.fallback_threshold(),
        (prog.steps() as f64 * DeltaSim::DEFAULT_FALLBACK_FRACTION) as usize,
        "default threshold is the documented fraction of the tape"
    );
    for col in 0..nl.inputs().len() {
        sim.set_input_words(col, &[u64::MAX, u64::MAX]);
    }
    let outcome = sim.propagate();
    assert_eq!(outcome, DeltaOutcome::FullFallback, "must fall back");
    assert_matches_full(&nl, &prog, &sim, "post-fallback");
    // The session keeps working incrementally afterwards.
    sim.set_input(0, 0, false);
    let outcome = sim.propagate();
    assert!(
        matches!(outcome, DeltaOutcome::Incremental { .. }),
        "small edit after fallback stays incremental, got {outcome:?}"
    );
    assert_matches_full(&nl, &prog, &sim, "post-fallback flip");
}
