//! Crash-kill end-to-end: the real `htforge-server` binary, a real
//! Unix socket, a real `SIGKILL` — then a restart that must recover
//! every accepted job from the write-ahead journal.
//!
//! * **Zero lost accepted jobs.** Every job acked before the kill has
//!   exactly one terminal record in the journal after the restarted
//!   daemon drains — no loss, no duplicate terminals.
//! * **Recovery is introspectable.** The restarted daemon's `metrics`
//!   op reports the replayed/recovered/truncated counts.
//! * **Concurrent sessions are isolated.** Two clients on the same
//!   socket each see only their own acks and results.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use htforge::obs::{parse_json, Json};
use htforge::server::read_records;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_htforge-server")
}

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "htforge_crash_{tag}_{}_{}.{ext}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ))
}

fn start_daemon(socket: &Path, journal: &Path) -> Child {
    Command::new(bin())
        .args([
            "--socket",
            socket.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--fsync",
            "always",
            "--workers",
            "2",
            "--no-progress",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn htforge-server")
}

fn connect(socket: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(stream) = UnixStream::connect(socket) {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            return stream;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never bound {}",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn submit_line(id: &str, repeat: usize) -> String {
    format!(
        concat!(
            r#"{{"schema":"htforge.job_request/v1","op":"submit","tenant":"crash","id":"{}","#,
            r#""kind":"simulate","circuit":"c2670","params":{{"vectors":4096,"repeat":{}}}}}"#,
        ),
        id, repeat
    )
}

/// Reads JSONL responses until `want` returns true for one of them, or
/// panics at the deadline. Returns every line read, parsed.
fn read_until(reader: &mut BufReader<UnixStream>, want: impl Fn(&Json) -> bool) -> Vec<Json> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut seen = Vec::new();
    let mut line = String::new();
    loop {
        assert!(Instant::now() < deadline, "response never arrived");
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => panic!("daemon closed the stream early"),
            Ok(_) => {
                let doc = parse_json(line.trim()).expect("valid response JSON");
                let hit = want(&doc);
                seen.push(doc);
                if hit {
                    return seen;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn response_type(doc: &Json) -> &str {
    doc.get("type").and_then(Json::as_str).unwrap_or("")
}

/// Counts `(submit, terminal)` records per job id in a journal.
fn journal_tally(journal: &Path) -> std::collections::HashMap<String, (usize, usize)> {
    let (records, _) = read_records(journal).expect("journal readable");
    let mut tally: std::collections::HashMap<String, (usize, usize)> =
        std::collections::HashMap::new();
    for rec in &records {
        let id = rec.get("id").and_then(Json::as_str).unwrap().to_owned();
        let entry = tally.entry(id).or_default();
        match rec.get("event").and_then(Json::as_str).unwrap() {
            "submit" => entry.0 += 1,
            "terminal" => entry.1 += 1,
            _ => {}
        }
    }
    tally
}

#[test]
fn sigkill_mid_campaign_loses_no_accepted_job() {
    let socket = temp_path("kill", "sock");
    let journal = temp_path("kill", "wal");
    let _ = std::fs::remove_file(&journal);
    let mut daemon = start_daemon(&socket, &journal);

    // Submit 8 jobs heavy enough that the 2-worker pool cannot finish
    // them between the last ack and the kill.
    let stream = connect(&socket);
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let total = 8;
    for i in 0..total {
        writeln!(writer, "{}", submit_line(&format!("k{i}"), 24)).unwrap();
    }
    let mut acks = 0;
    while acks < total {
        let seen = read_until(&mut reader, |d| response_type(d) == "ack");
        acks += seen.iter().filter(|d| response_type(d) == "ack").count();
    }

    // SIGKILL: no drain, no flush beyond what fsync=always already
    // guaranteed per accepted record.
    daemon.kill().expect("kill");
    let _ = daemon.wait();

    let before = journal_tally(&journal);
    assert_eq!(before.len(), total, "every acked job must be journaled");
    let finished_before: usize = before.values().filter(|(_, t)| *t > 0).count();
    assert!(
        finished_before < total,
        "kill came too late to exercise recovery (all {total} jobs finished)"
    );

    // Restart on the same journal: the daemon must replay it, report
    // the recovery, and re-run the unfinished jobs.
    let mut daemon = start_daemon(&socket, &journal);
    let stream = connect(&socket);
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(
        writer,
        r#"{{"schema":"htforge.job_request/v1","op":"metrics"}}"#
    )
    .unwrap();
    let seen = read_until(&mut reader, |d| response_type(d) == "metrics");
    let metrics = seen.last().unwrap();
    let jbody = metrics.get("journal").expect("metrics carries journal");
    assert!(matches!(jbody.get("enabled"), Some(Json::Bool(true))));
    let recovered = jbody
        .get("recovered_jobs")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as usize;
    assert_eq!(
        recovered,
        total - finished_before,
        "recovery count must equal accepted-but-unfinished jobs"
    );
    assert!(matches!(
        jbody.get("replay_failed"),
        Some(Json::Bool(false))
    ));

    // The journal converges to exactly one terminal per job.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let tally = journal_tally(&journal);
        if tally.len() == total && tally.values().all(|(_, t)| *t >= 1) {
            for (id, (submits, terminals)) in &tally {
                assert_eq!(*submits, 1, "{id}: duplicate submit records");
                assert_eq!(*terminals, 1, "{id}: expected exactly one terminal");
            }
            break;
        }
        assert!(
            Instant::now() < deadline,
            "recovered jobs never drained: {tally:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Graceful shutdown: drain, exit 0.
    writeln!(
        writer,
        r#"{{"schema":"htforge.job_request/v1","op":"shutdown","mode":"drain"}}"#
    )
    .unwrap();
    let status = daemon.wait().expect("wait");
    assert!(status.success(), "drain exit must be 0, got {status:?}");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn concurrent_clients_see_only_their_own_jobs() {
    let socket = temp_path("routing", "sock");
    let journal = temp_path("routing", "wal");
    let _ = std::fs::remove_file(&journal);
    let mut daemon = start_daemon(&socket, &journal);

    let stream_a = connect(&socket);
    let stream_b = connect(&socket);
    let mut writer_a = stream_a.try_clone().unwrap();
    let mut writer_b = stream_b.try_clone().unwrap();
    let mut reader_a = BufReader::new(stream_a);
    let mut reader_b = BufReader::new(stream_b);

    writeln!(writer_a, "{}", submit_line("mine-a", 1)).unwrap();
    writeln!(writer_b, "{}", submit_line("mine-b", 1)).unwrap();

    let lines_a = read_until(&mut reader_a, |d| response_type(d) == "result");
    let lines_b = read_until(&mut reader_b, |d| response_type(d) == "result");
    for (lines, own, other) in [
        (&lines_a, "mine-a", "mine-b"),
        (&lines_b, "mine-b", "mine-a"),
    ] {
        for doc in lines.iter() {
            if let Some(id) = doc.get("id").and_then(Json::as_str) {
                assert_eq!(id, own, "cross-session leak: {other}'s line arrived");
            }
        }
        assert!(
            lines.iter().any(|d| response_type(d) == "result"
                && d.get("status").and_then(Json::as_str) == Some("done")),
            "{own} never completed"
        );
    }

    writeln!(
        writer_a,
        r#"{{"schema":"htforge.job_request/v1","op":"shutdown","mode":"drain"}}"#
    )
    .unwrap();
    let status = daemon.wait().expect("wait");
    assert!(status.success());
    let _ = std::fs::remove_file(&journal);
}
