//! Property wall for the interned / SoA / hierarchical netlist core.
//!
//! Two guarantees the refactor must not bend:
//!
//! * **Hierarchical round trip.** Any generated multi-module `Design`,
//!   flattened, trojaned (trigger AND over two primary inputs, XOR
//!   payload spliced over a victim gate), written to `.bench` text and
//!   re-parsed, is name-isomorphic to the in-memory netlist: same node
//!   set, same kinds, same fan-in lists, same output markings, same
//!   levelization. Node ids and `Atom` handles are allowed to differ —
//!   they are storage details, not semantics.
//! * **Interned-vs-string differential.** On the real ISCAS circuits
//!   (c17, c2670, c5315) a re-parse — including one from a shuffled
//!   declaration order, which permutes every `NodeId` and `Atom`
//!   assignment — yields byte-identical levelization and SCOAP
//!   (CC0/CC1/CO) values keyed by signal name.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use htforge::netlist::{bench, Design, GateKind, Netlist, NodeKind};
use htforge::scoap::Scoap;

/// Name-keyed structural fingerprint: kind, fan-in names (in order),
/// and the primary-output flag. Two netlists with equal signatures are
/// isomorphic under the identity renaming, whatever their id layout.
fn signature(nl: &Netlist) -> BTreeMap<String, (String, Vec<String>, bool)> {
    nl.node_ids()
        .map(|id| {
            let fanins = nl
                .fanins(id)
                .iter()
                .map(|&f| nl.name_of(f).to_owned())
                .collect();
            (
                nl.name_of(id).to_owned(),
                (format!("{:?}", nl.kind(id)), fanins, nl.is_output(id)),
            )
        })
        .collect()
}

fn levels_by_name(nl: &Netlist) -> BTreeMap<String, u32> {
    let levels = nl.levels().unwrap();
    nl.node_ids()
        .map(|id| (nl.name_of(id).to_owned(), levels[id.index()]))
        .collect()
}

fn scoap_by_name(nl: &Netlist) -> BTreeMap<String, (u32, u32, u32)> {
    let s = Scoap::compute(nl).unwrap();
    nl.node_ids()
        .map(|id| (nl.name_of(id).to_owned(), (s.cc0(id), s.cc1(id), s.co(id))))
        .collect()
}

const KINDS: [GateKind; 7] = [
    GateKind::And,
    GateKind::Nand,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Not,
];

/// One generated leaf gate: kind selector plus two fan-in seeds.
type GateSeed = (u8, u16, u16);

/// Builds a two-level design — `ntiles` instances of one generated
/// leaf module under `top` — and returns the flattened netlist.
fn build_flat(nin: usize, gates: &[GateSeed], ntiles: usize) -> Netlist {
    let mut d = Design::new("prop_design");
    let leaf = d.add_module("leaf").unwrap();
    let mut sigs: Vec<_> = (0..nin)
        .map(|i| {
            let a = d.intern(&format!("i{i}"));
            d.add_port_in(leaf, a);
            a
        })
        .collect();
    for (g, &(kind_sel, s1, s2)) in gates.iter().enumerate() {
        let kind = KINDS[kind_sel as usize % KINDS.len()];
        let a_ix = s1 as usize % sigs.len();
        // Second fan-in is forced distinct from the first; duplicated
        // fan-ins are legal but make the fan-out bookkeeping a less
        // interesting test subject than two real edges.
        let b_ix = (a_ix + 1 + s2 as usize % (sigs.len() - 1)) % sigs.len();
        let fanins = if kind == GateKind::Not {
            vec![sigs[a_ix]]
        } else {
            vec![sigs[a_ix], sigs[b_ix]]
        };
        let out = d.intern(&format!("g{g}"));
        d.add_cell(leaf, out, NodeKind::Gate(kind), fanins).unwrap();
        sigs.push(out);
    }
    let leaf_out = *sigs.last().unwrap();
    d.add_port_out(leaf, leaf_out);

    let top = d.add_module("top").unwrap();
    let pis: Vec<_> = (0..nin)
        .map(|i| {
            let a = d.intern(&format!("p{i}"));
            d.add_port_in(top, a);
            a
        })
        .collect();
    for t in 0..ntiles {
        let inst = d.intern(&format!("u{t}"));
        let inputs = (0..nin).map(|j| pis[(j + t) % nin]).collect();
        let w = d.intern(&format!("w{t}"));
        d.add_instance(top, inst, leaf, inputs, vec![w]).unwrap();
        d.add_port_out(top, w);
    }
    d.flatten(top).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse → flatten → insert trojan → write → re-parse → isomorphic.
    #[test]
    fn hierarchical_round_trip_survives_trojan_insertion(
        nin in 2usize..5,
        gates in proptest::collection::vec((0u8..7, any::<u16>(), any::<u16>()), 1..10),
        ntiles in 1usize..4,
        t_seed in any::<u16>(),
        v_seed in any::<u16>(),
    ) {
        let mut nl = build_flat(nin, &gates, ntiles);
        prop_assert_eq!(nl.gate_count(), gates.len() * ntiles);
        prop_assert_eq!(nl.inputs().len(), nin);

        // Trigger taps are primary inputs (never downstream of the
        // victim, so the splice cannot close a combinational loop);
        // the victim is any flattened gate.
        let x = nl.inputs()[t_seed as usize % nin];
        let y = nl.inputs()[(t_seed as usize + 1) % nin];
        let victims: Vec<_> = nl
            .node_ids()
            .filter(|&id| matches!(nl.kind(id), NodeKind::Gate(_)))
            .collect();
        let victim = victims[v_seed as usize % victims.len()];
        let trigger = nl.add_gate("htf_trigger", GateKind::And, vec![x, y]).unwrap();
        let payload = nl
            .add_gate("htf_payload", GateKind::Xor, vec![victim, trigger])
            .unwrap();
        nl.splice_driver(victim, payload);
        nl.validate().unwrap();

        let text = bench::write(&nl);
        let reparsed = bench::parse(&text, nl.name()).unwrap();
        reparsed.validate().unwrap();
        prop_assert_eq!(signature(&reparsed), signature(&nl));
        prop_assert_eq!(levels_by_name(&reparsed), levels_by_name(&nl));
    }
}

/// The interned core must be a pure storage change: re-parsing a
/// circuit — in declaration order or a shuffled order that permutes
/// every `NodeId` and `Atom` — produces identical levelization and
/// SCOAP values per signal name.
#[test]
fn interned_core_matches_string_semantics_on_iscas_circuits() {
    for name in ["c17", "c2670", "c5315"] {
        let nl = htforge::circuits::load(name).unwrap();
        let text = bench::write(&nl);
        let base_sig = signature(&nl);
        let base_levels = levels_by_name(&nl);
        let base_scoap = scoap_by_name(&nl);

        let mut lines: Vec<&str> = text.lines().collect();
        let mut rng = StdRng::seed_from_u64(0x5EED_1DEA);
        lines.shuffle(&mut rng);
        let shuffled_text = lines.join("\n");

        for (tag, source) in [("reparse", &text), ("shuffle", &shuffled_text)] {
            let other = bench::parse(source, name).unwrap_or_else(|e| panic!("{name}/{tag}: {e}"));
            assert_eq!(signature(&other), base_sig, "{name}/{tag}: structure");
            assert_eq!(levels_by_name(&other), base_levels, "{name}/{tag}: levels");
            assert_eq!(scoap_by_name(&other), base_scoap, "{name}/{tag}: scoap");
        }
    }
}
