//! End-to-end integration tests: the full insertion pipeline on a
//! paper-scale circuit, checked by independent simulation.

use htforge::atpg::PodemConfig;
use htforge::core::{InsertionConfig, InsertionFramework, PayloadStrategy};
use htforge::netlist::bench;
use htforge::sim::simulator::BoundSimulator;
use htforge::sim::PatternSet;

fn insertion_outcome(circuit: &str, q: usize, n: usize) -> htforge::core::InsertionOutcome {
    let nl = htforge::circuits::load(circuit).expect("known circuit");
    InsertionFramework::new(InsertionConfig {
        theta: 0.20,
        num_vectors: 4_000,
        trigger_nodes: q,
        num_instances: n,
        seed: 0xD0C5,
        podem: PodemConfig::justify(),
        payload: PayloadStrategy::MostObservable,
        ..InsertionConfig::default()
    })
    .run(&nl)
    .expect("insertion succeeds on paper benchmarks")
}

#[test]
fn c2670_trojans_activate_on_their_cube_and_stay_quiescent_otherwise() {
    let nl = htforge::circuits::load("c2670").unwrap();
    let outcome = insertion_outcome("c2670", 10, 3);
    assert_eq!(outcome.infected.len(), 3);

    let golden_sim = BoundSimulator::new(&nl).unwrap();
    for design in &outcome.infected {
        let infected_sim = BoundSimulator::new(&design.netlist).unwrap();

        // 1. The merged clique cube fires the trigger (any X fill).
        for fill in [false, true] {
            let v = design.trojan.activation_cube.fill_with(fill);
            let ps = PatternSet::from_vectors(nl.inputs().len(), &[v]);
            let vals = infected_sim.run(&ps);
            assert!(
                vals.value(design.trojan.trigger_output, 0),
                "trigger must fire under its activation cube (fill = {fill})"
            );
        }

        // 2. Functional equivalence whenever the trigger is quiet.
        let ps = PatternSet::random(nl.inputs().len(), 8_192, 0xE0);
        let gv = golden_sim.run(&ps);
        let iv = infected_sim.run(&ps);
        let mut fired = 0usize;
        for p in 0..ps.len() {
            if iv.value(design.trojan.trigger_output, p) {
                fired += 1;
                continue;
            }
            for (&go, &io) in nl.outputs().iter().zip(design.netlist.outputs()) {
                assert_eq!(
                    gv.value(go, p),
                    iv.value(io, p),
                    "outputs must match when the trojan is quiescent"
                );
            }
        }
        // Stealth: random vectors essentially never fire a q=10 trigger.
        // Correlated rare nodes can leave the joint probability above the
        // independence estimate, so allow a sub-0.1% activation rate
        // (the paper's stealth table uses far larger q = 25–125).
        assert!(fired <= 8, "q=10 trigger fired {fired}/8192 random vectors");
    }
}

#[test]
fn infected_netlists_round_trip_through_bench_format() {
    let outcome = insertion_outcome("c3540", 8, 2);
    for design in &outcome.infected {
        let text = bench::write(&design.netlist);
        let reparsed = bench::parse(&text, design.netlist.name()).expect("round-trip");
        assert_eq!(reparsed.node_count(), design.netlist.node_count());
        assert_eq!(reparsed.inputs().len(), design.netlist.inputs().len());
        assert_eq!(reparsed.outputs().len(), design.netlist.outputs().len());
        // The trojan's gates survive serialization by name.
        for &g in &design.trojan.trigger_gates {
            let name = design.netlist.node(g).name();
            assert!(reparsed.find(name).is_some(), "missing {name}");
        }
    }
}

#[test]
fn sequential_circuit_pipeline_is_consistent() {
    let nl = htforge::circuits::load("s1423").unwrap();
    let outcome = insertion_outcome("s1423", 6, 2);
    for design in &outcome.infected {
        assert_eq!(design.netlist.dffs().len(), nl.dffs().len());
        assert!(design.netlist.validate().is_ok());
        // Scan-cut of the infected design still simulates.
        let cut = design.netlist.scan_cut();
        let sim = BoundSimulator::new(&cut).unwrap();
        let ps = PatternSet::random(cut.inputs().len(), 256, 1);
        let vals = sim.run(&ps);
        assert_eq!(vals.len(), 256);
    }
}

#[test]
fn trigger_nodes_are_actual_rare_nodes() {
    let outcome = insertion_outcome("c2670", 10, 2);
    for design in &outcome.infected {
        for &(node, value) in &design.trojan.trigger_inputs {
            let entry = outcome
                .rare_nodes
                .get(node)
                .expect("trigger node must come from the rare-node profile");
            assert_eq!(entry.rare_value, value);
        }
    }
}

#[test]
fn distinct_cliques_across_instances() {
    let outcome = insertion_outcome("c2670", 10, 5);
    let mut sets: Vec<Vec<u32>> = outcome
        .infected
        .iter()
        .map(|d| {
            let mut s: Vec<u32> = d
                .trojan
                .trigger_inputs
                .iter()
                .map(|&(n, _)| n.index() as u32)
                .collect();
            s.sort_unstable();
            s
        })
        .collect();
    let before = sets.len();
    sets.sort();
    sets.dedup();
    assert_eq!(sets.len(), before, "instances must use distinct cliques");
}
