//! Fuzz (proptest): the netlist parser entry points must never panic —
//! on arbitrary byte soup, and on structured mutations of valid
//! netlists (truncation, duplicated outputs, shuffled lines). They
//! either parse or return a diagnostic `Err`; a panic is a bug
//! (`DESIGN.md` §9).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use htforge::netlist::{bench, verilog};

fn c17_bench() -> String {
    bench::write(&htforge::circuits::load("c17").unwrap())
}

fn c17_verilog() -> String {
    verilog::write(&htforge::circuits::load("c17").unwrap())
}

proptest! {
    /// Arbitrary bytes (lossily decoded) through the `.bench` parser.
    #[test]
    fn bench_parse_survives_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = bench::parse(&text, "fuzz");
    }

    /// Arbitrary bytes (lossily decoded) through the Verilog parser.
    #[test]
    fn verilog_parse_survives_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = verilog::parse(&text, "fuzz");
    }

    /// A valid netlist cut off mid-stream (killed download, partial
    /// write) must parse or error, never panic.
    #[test]
    fn bench_parse_survives_truncation(cut in any::<usize>()) {
        let text = c17_bench();
        let _ = bench::parse(&text[..cut % (text.len() + 1)], "fuzz");
    }

    #[test]
    fn verilog_parse_survives_truncation(cut in any::<usize>()) {
        let text = c17_verilog();
        let _ = verilog::parse(&text[..cut % (text.len() + 1)], "fuzz");
    }

    /// Duplicated lines (outputs declared twice, gates redefined) and
    /// shuffled declaration order.
    #[test]
    fn bench_parse_survives_dup_and_shuffle(
        seed in any::<u64>(),
        dup_index in any::<usize>(),
        duplicate in any::<bool>(),
    ) {
        let text = c17_bench();
        let mut lines: Vec<&str> = text.lines().collect();
        if duplicate && !lines.is_empty() {
            lines.push(lines[dup_index % lines.len()]);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        lines.shuffle(&mut rng);
        let _ = bench::parse(&lines.join("\n"), "fuzz");
    }

    #[test]
    fn verilog_parse_survives_dup_and_shuffle(
        seed in any::<u64>(),
        dup_index in any::<usize>(),
        duplicate in any::<bool>(),
    ) {
        let text = c17_verilog();
        let mut lines: Vec<&str> = text.lines().collect();
        if duplicate && !lines.is_empty() {
            lines.push(lines[dup_index % lines.len()]);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        lines.shuffle(&mut rng);
        let _ = verilog::parse(&lines.join("\n"), "fuzz");
    }

    /// Valid netlist with a window overwritten by junk bytes — exercises
    /// tokenizer paths that byte soup rarely reaches (valid prefixes).
    #[test]
    fn bench_parse_survives_splice(
        at in any::<usize>(),
        junk in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let text = c17_bench();
        let at = at % (text.len() + 1);
        let spliced = format!("{}{}{}", &text[..at], String::from_utf8_lossy(&junk), &text[at..]);
        let _ = bench::parse(&spliced, "fuzz");
    }

    /// DFFs whose D input is a forward reference or never declared at
    /// all — the shapes that used to hit `expect("dff declared in pass
    /// 1")` panics in the two-pass parser. The streaming parser must
    /// resolve forward references and turn dangling ones into `Err`.
    #[test]
    fn bench_parse_survives_dff_forward_and_dangling_refs(
        declare_d in any::<bool>(),
        dff_first in any::<bool>(),
        extra_dangling in any::<bool>(),
        name_seed in 0usize..4,
    ) {
        let d_name = ["d", "sig", "q0", "net_9"][name_seed];
        let mut lines = vec!["INPUT(a)".to_owned(), "OUTPUT(q)".to_owned()];
        let dff = format!("q = DFF({d_name})");
        let decl = format!("{d_name} = NOT(a)");
        if dff_first {
            lines.push(dff);
            if declare_d { lines.push(decl); }
        } else {
            if declare_d { lines.push(decl); }
            lines.push(dff);
        }
        if extra_dangling {
            lines.push("r = DFF(ghost)".to_owned());
        }
        let parsed = bench::parse(&lines.join("\n"), "fuzz");
        if declare_d && !extra_dangling {
            // Forward reference to a later-declared gate must resolve.
            prop_assert!(parsed.is_ok(), "{:?}", parsed.err());
        } else if !declare_d || extra_dangling {
            prop_assert!(parsed.is_err(), "dangling DFF input must be a diagnostic");
        }
    }
}
