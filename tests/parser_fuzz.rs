//! Fuzz (proptest): the netlist parser entry points must never panic —
//! on arbitrary byte soup, and on structured mutations of valid
//! netlists (truncation, duplicated outputs, shuffled lines). They
//! either parse or return a diagnostic `Err`; a panic is a bug
//! (`DESIGN.md` §9).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use htforge::netlist::{bench, verilog};

fn c17_bench() -> String {
    bench::write(&htforge::circuits::load("c17").unwrap())
}

fn c17_verilog() -> String {
    verilog::write(&htforge::circuits::load("c17").unwrap())
}

proptest! {
    /// Arbitrary bytes (lossily decoded) through the `.bench` parser.
    #[test]
    fn bench_parse_survives_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = bench::parse(&text, "fuzz");
    }

    /// Arbitrary bytes (lossily decoded) through the Verilog parser.
    #[test]
    fn verilog_parse_survives_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = verilog::parse(&text, "fuzz");
    }

    /// A valid netlist cut off mid-stream (killed download, partial
    /// write) must parse or error, never panic.
    #[test]
    fn bench_parse_survives_truncation(cut in any::<usize>()) {
        let text = c17_bench();
        let _ = bench::parse(&text[..cut % (text.len() + 1)], "fuzz");
    }

    #[test]
    fn verilog_parse_survives_truncation(cut in any::<usize>()) {
        let text = c17_verilog();
        let _ = verilog::parse(&text[..cut % (text.len() + 1)], "fuzz");
    }

    /// Duplicated lines (outputs declared twice, gates redefined) and
    /// shuffled declaration order.
    #[test]
    fn bench_parse_survives_dup_and_shuffle(
        seed in any::<u64>(),
        dup_index in any::<usize>(),
        duplicate in any::<bool>(),
    ) {
        let text = c17_bench();
        let mut lines: Vec<&str> = text.lines().collect();
        if duplicate && !lines.is_empty() {
            lines.push(lines[dup_index % lines.len()]);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        lines.shuffle(&mut rng);
        let _ = bench::parse(&lines.join("\n"), "fuzz");
    }

    #[test]
    fn verilog_parse_survives_dup_and_shuffle(
        seed in any::<u64>(),
        dup_index in any::<usize>(),
        duplicate in any::<bool>(),
    ) {
        let text = c17_verilog();
        let mut lines: Vec<&str> = text.lines().collect();
        if duplicate && !lines.is_empty() {
            lines.push(lines[dup_index % lines.len()]);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        lines.shuffle(&mut rng);
        let _ = verilog::parse(&lines.join("\n"), "fuzz");
    }

    /// Valid netlist with a window overwritten by junk bytes — exercises
    /// tokenizer paths that byte soup rarely reaches (valid prefixes).
    #[test]
    fn bench_parse_survives_splice(
        at in any::<usize>(),
        junk in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let text = c17_bench();
        let at = at % (text.len() + 1);
        let spliced = format!("{}{}{}", &text[..at], String::from_utf8_lossy(&junk), &text[at..]);
        let _ = bench::parse(&spliced, "fuzz");
    }
}
