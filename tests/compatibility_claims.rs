//! Integration tests for the paper's central claim (§III-C): pairwise
//! cube compatibility is enough — the merged cube of any clique drives
//! *every* member to its rare value with **no validation step**.

use htforge::atpg::PodemConfig;
use htforge::core::{clique, CompatGraph};
use htforge::sim::tri::justifies;
use htforge::sim::{PatternSet, RareNodeExtractor};

fn graph_for(circuit: &str) -> (htforge::netlist::Netlist, CompatGraph) {
    let nl = htforge::circuits::load(circuit).expect("known circuit");
    let comb = if nl.dffs().is_empty() {
        nl.clone()
    } else {
        nl.scan_cut()
    };
    let patterns = PatternSet::random(comb.inputs().len(), 4_000, 0xC1A);
    let rare = RareNodeExtractor::new(0.20)
        .extract(&comb, &patterns)
        .expect("valid netlist");
    let graph = CompatGraph::build(&comb, &rare, PodemConfig::justify()).expect("combinational");
    (comb, graph)
}

#[test]
fn every_vertex_cube_justifies_its_event_on_c2670() {
    let (nl, graph) = graph_for("c2670");
    assert!(graph.len() > 100, "c2670 should have a rich graph");
    for event in graph.events() {
        assert!(
            justifies(&nl, event.cube.bits(), event.node, event.rare_value).unwrap(),
            "cube fails for {}",
            nl.node(event.node).name()
        );
    }
}

#[test]
fn merged_clique_cubes_need_no_validation() {
    // The headline theorem: for every enumerated clique, the merged cube
    // simultaneously justifies all members — checked by independent
    // 3-valued simulation on two circuits.
    for circuit in ["c2670", "s1423"] {
        let (nl, graph) = graph_for(circuit);
        let q = clique::max_feasible_size(&graph, 16, 3).max(2);
        let cliques = clique::enumerate_cliques(&graph, q, 50, 3);
        assert!(!cliques.is_empty(), "{circuit} must yield cliques");
        for c in &cliques {
            for &m in &c.members {
                let e = &graph.events()[m];
                assert!(
                    justifies(&nl, c.activation_cube.bits(), e.node, e.rare_value).unwrap(),
                    "{circuit}: merged cube fails to justify {}={}",
                    nl.node(e.node).name(),
                    e.rare_value
                );
            }
        }
    }
}

#[test]
fn incompatible_pairs_really_conflict() {
    let (_, graph) = graph_for("c2670");
    let mut checked = 0;
    'outer: for i in 0..graph.len() {
        for j in i + 1..graph.len() {
            if !graph.compatible(i, j) {
                let a = &graph.events()[i].cube;
                let b = &graph.events()[j].cube;
                assert!(a.merge(b).is_none(), "incompatible pair must not merge");
                checked += 1;
                if checked >= 100 {
                    break 'outer;
                }
            }
        }
    }
    assert!(checked > 0, "expected at least some incompatible pairs");
}

#[test]
fn clique_counts_scale_with_requested_limit() {
    let (_, graph) = graph_for("c2670");
    let q = clique::max_feasible_size(&graph, 12, 0).max(2);
    let few = clique::enumerate_cliques(&graph, q, 10, 0).len();
    let many = clique::enumerate_cliques(&graph, q, 1_000, 0).len();
    assert!(few <= 10);
    assert!(many >= few);
}

#[test]
fn c6288_multiplier_has_sparse_rare_profile() {
    // The real multiplier stands in for c6288; like the original, its
    // near-uniform internal probabilities yield a comparatively thin
    // rare-node population (the reason c6288 is the hardest host in the
    // paper's tables).
    let nl = htforge::circuits::load("c6288").unwrap();
    let patterns = PatternSet::random(nl.inputs().len(), 4_000, 1);
    let rare = RareNodeExtractor::new(0.05)
        .extract(&nl, &patterns)
        .unwrap();
    let fraction = rare.len() as f64 / nl.node_count() as f64;
    assert!(
        fraction < 0.02,
        "multiplier rare fraction {fraction:.3} at θ=5% should be tiny"
    );
}
