//! Differential tests for the compiled simulation kernel.
//!
//! [`SimProgram`] must be bit-identical to a gate-at-a-time scalar
//! reference evaluator — at one thread, at many threads, and through the
//! [`Simulator`] wrapper — on real circuits (c17, a 16×16 array
//! multiplier) and on a population of random synthetic DAGs, including
//! pattern counts that are not multiples of 64 (tail-masking paths).

use htforge_circuits::multiplier::multiplier;
use htforge_circuits::synth::{generate, CircuitProfile};
use htforge_netlist::{Netlist, NodeKind};
use htforge_sim::{KernelStrategy, PatternSet, SimProgram, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ALL_STRATEGIES: [KernelStrategy; 4] = [
    KernelStrategy::Single,
    KernelStrategy::Column,
    KernelStrategy::Level,
    KernelStrategy::Hybrid,
];

/// Gate-at-a-time scalar oracle: evaluates every node over every pattern
/// with `GateKind::eval_bool`, one bool at a time. Non-scan DFF outputs
/// are constant 0, matching the kernel's reset-state convention.
fn scalar_reference(nl: &Netlist, patterns: &PatternSet) -> Vec<Vec<bool>> {
    let order = htforge_netlist::graph::topo_order(nl).expect("acyclic");
    let mut values = vec![vec![false; patterns.len()]; nl.node_count()];
    for (pos, &id) in nl.inputs().iter().enumerate() {
        for (p, v) in values[id.index()].iter_mut().enumerate() {
            *v = patterns.get(pos, p);
        }
    }
    let mut fanin_vals = Vec::new();
    for &id in &order {
        let node = nl.node(id);
        let NodeKind::Gate(kind) = node.kind() else {
            continue;
        };
        let mut out = vec![false; patterns.len()];
        for (p, o) in out.iter_mut().enumerate() {
            fanin_vals.clear();
            fanin_vals.extend(node.fanins().iter().map(|f| values[f.index()][p]));
            *o = kind.eval_bool(&fanin_vals);
        }
        values[id.index()] = out;
    }
    values
}

/// Asserts kernel output equals the scalar oracle for every node and
/// pattern, at 1 thread, 2 threads, the automatic thread count, and via
/// the `Simulator` wrapper.
fn assert_differential(nl: &Netlist, patterns: &PatternSet, label: &str) {
    let expected = scalar_reference(nl, patterns);
    let prog = SimProgram::compile(nl).expect("compiles");
    let auto = prog.default_threads(patterns.len());
    let runs = [
        ("1 thread", prog.run_with_threads(patterns, 1)),
        ("2 threads", prog.run_with_threads(patterns, 2)),
        (
            "7 threads",
            // Deliberately odd: uneven column split exercises the
            // remainder distribution.
            prog.run_with_threads(patterns, 7),
        ),
        ("auto threads", prog.run_with_threads(patterns, auto)),
        (
            "Simulator wrapper",
            Simulator::new(nl).unwrap().run_on(nl, patterns),
        ),
    ];
    for (mode, vals) in &runs {
        assert_eq!(vals.len(), patterns.len(), "{label} [{mode}]: length");
        for id in nl.node_ids() {
            for (p, &exp) in expected[id.index()].iter().enumerate() {
                assert_eq!(
                    vals.value(id, p),
                    exp,
                    "{label} [{mode}]: node {} pattern {p}",
                    nl.node(id).name()
                );
            }
            // Tail bits must be zero so popcounts are exact.
            let ones: u64 = vals
                .words(id)
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum();
            let expected_ones = expected[id.index()].iter().filter(|&&b| b).count() as u64;
            assert_eq!(
                ones,
                expected_ones,
                "{label} [{mode}]: popcount of {}",
                nl.node(id).name()
            );
        }
    }
}

/// Asserts every forced kernel strategy at 1/2/4/8 workers is
/// bit-identical — per node, per packed word — to the scalar oracle.
/// This is the 4-way `scalar ≡ column ≡ level ≡ hybrid` proof: the
/// level-parallel and hybrid paths share a mutable buffer across worker
/// threads, so any aliasing or barrier bug shows up here as a flipped
/// bit or an unmasked tail.
fn assert_strategies_agree(nl: &Netlist, patterns: &PatternSet, label: &str) {
    let expected = scalar_reference(nl, patterns);
    let prog = SimProgram::compile(nl).expect("compiles");
    let words = PatternSet::words_for(patterns.len());
    for threads in [1usize, 2, 4, 8] {
        for strategy in ALL_STRATEGIES {
            let vals = prog.run_with_strategy(patterns, strategy, threads);
            let mode = format!("{}/{threads}t", strategy.name());
            assert_eq!(vals.len(), patterns.len(), "{label} [{mode}]: length");
            for id in nl.node_ids() {
                let col = vals.words(id);
                assert_eq!(col.len(), words, "{label} [{mode}]: column width");
                for (p, &exp) in expected[id.index()].iter().enumerate() {
                    assert_eq!(
                        vals.value(id, p),
                        exp,
                        "{label} [{mode}]: node {} pattern {p}",
                        nl.node(id).name()
                    );
                }
                let ones: u64 = col.iter().map(|w| u64::from(w.count_ones())).sum();
                let expected_ones = expected[id.index()].iter().filter(|&&b| b).count() as u64;
                assert_eq!(
                    ones,
                    expected_ones,
                    "{label} [{mode}]: popcount of {}",
                    nl.node(id).name()
                );
            }
        }
    }
}

#[test]
fn c17_strategy_equivalence() {
    let nl = htforge_circuits::iscas::c17();
    // 32 is exhaustive; 63/65 exercise the tail-mask and multi-word
    // paths under every strategy.
    for len in [32usize, 63, 65] {
        let ps = PatternSet::random(nl.inputs().len(), len, 0x517 + len as u64);
        assert_strategies_agree(&nl, &ps, &format!("c17/{len}"));
    }
}

#[test]
fn multiplier_strategy_equivalence() {
    let nl = multiplier("mul16", 16);
    let ps = PatternSet::random(nl.inputs().len(), 100, 0x5016);
    assert_strategies_agree(&nl, &ps, "mul16/100");
}

#[test]
fn c2670_c5315_strategy_equivalence() {
    for name in ["c2670", "c5315"] {
        let nl = htforge_circuits::load(name).expect("built-in circuit");
        // 63 patterns = the single-word regime where only level
        // parallelism can split; 100 = two words with a partial tail.
        for len in [63usize, 100] {
            let ps = PatternSet::random(nl.inputs().len(), len, 0x5000 + len as u64);
            assert_strategies_agree(&nl, &ps, &format!("{name}/{len}"));
        }
    }
}

#[test]
fn synthetic_dags_strategy_equivalence() {
    // 25 random DAG shapes spanning flat and deep level structures;
    // every 5th is sequential (non-scan DFFs read as constant 0 under
    // every strategy).
    let mut rng = StdRng::seed_from_u64(0x51E7);
    for i in 0..25u64 {
        let outputs = rng.gen_range(1..5usize);
        let profile = CircuitProfile {
            name: format!("lev{i}"),
            inputs: rng.gen_range(3..20usize),
            outputs,
            gates: rng.gen_range(2 * outputs..180),
            dffs: if i % 5 == 0 {
                rng.gen_range(1..6usize)
            } else {
                0
            },
            seed: 0xACE ^ (i * 0x9E37_79B9),
        };
        let nl = generate(&profile);
        let len = [1usize, 63, 64, 65, 130][i as usize % 5];
        let ps = PatternSet::random(nl.inputs().len(), len, i + 0x51);
        assert_strategies_agree(&nl, &ps, &format!("{}/{len}", profile.name));
    }
}

/// Asserts every forced lane width — the narrow one-word plane (W=1)
/// and the wide blocked planes (W=4/8) — is bit-identical per node and
/// per packed word to the scalar oracle and to the planner's unblocked
/// walk, at 1/2/4 threads. This is the `scalar ≡ W=1 ≡ W=4 ≡ W=8`
/// proof: the wide path stitches tiled block-major scratch back into
/// node-major columns, so an off-by-one in tile bounds, a stale scratch
/// word, or a missing per-block tail mask shows up here.
fn assert_lane_widths_agree(nl: &Netlist, patterns: &PatternSet, label: &str) {
    let expected = scalar_reference(nl, patterns);
    let prog = SimProgram::compile(nl).expect("compiles");
    let words = PatternSet::words_for(patterns.len());
    for threads in [1usize, 2, 4] {
        for lanes in [0usize, 1, 4, 8] {
            let vals = prog.run_with_lanes(patterns, lanes, threads);
            let mode = format!("lanes={lanes}/{threads}t");
            assert_eq!(vals.len(), patterns.len(), "{label} [{mode}]: length");
            for id in nl.node_ids() {
                let col = vals.words(id);
                assert_eq!(col.len(), words, "{label} [{mode}]: column width");
                for (p, &exp) in expected[id.index()].iter().enumerate() {
                    assert_eq!(
                        vals.value(id, p),
                        exp,
                        "{label} [{mode}]: node {} pattern {p}",
                        nl.node(id).name()
                    );
                }
                let ones: u64 = col.iter().map(|w| u64::from(w.count_ones())).sum();
                let expected_ones = expected[id.index()].iter().filter(|&&b| b).count() as u64;
                assert_eq!(
                    ones,
                    expected_ones,
                    "{label} [{mode}]: popcount of {}",
                    nl.node(id).name()
                );
            }
        }
    }
}

#[test]
fn c17_wide_lane_equivalence() {
    let nl = htforge_circuits::iscas::c17();
    // 63/65/830 cover the single-word, word+tail, and multi-tile
    // regimes (830 = 13 words: one full 8-lane block, one 4-lane block,
    // one remainder).
    for len in [63usize, 65, 830] {
        let ps = PatternSet::random(nl.inputs().len(), len, 0x1A17 + len as u64);
        assert_lane_widths_agree(&nl, &ps, &format!("c17/{len}"));
    }
}

#[test]
fn multiplier_wide_lane_equivalence() {
    let nl = multiplier("mul16", 16);
    let ps = PatternSet::random(nl.inputs().len(), 321, 0x1A16);
    assert_lane_widths_agree(&nl, &ps, "mul16/321");
}

#[test]
fn c2670_c5315_wide_lane_equivalence() {
    for name in ["c2670", "c5315"] {
        let nl = htforge_circuits::load(name).expect("built-in circuit");
        // 1030 patterns = 17 words per node: big enough that the tiled
        // scratch path takes multiple tiles on these gate counts.
        let ps = PatternSet::random(nl.inputs().len(), 1030, 0x1A00);
        assert_lane_widths_agree(&nl, &ps, &format!("{name}/1030"));
    }
}

#[test]
fn synthetic_dags_wide_lane_equivalence() {
    // Random DAG shapes, including sequential ones (non-scan DFF rows
    // must stay constant 0 in every lane width).
    let mut rng = StdRng::seed_from_u64(0x1A5E);
    for i in 0..8u64 {
        let outputs = rng.gen_range(1..5usize);
        let profile = CircuitProfile {
            name: format!("lane{i}"),
            inputs: rng.gen_range(3..20usize),
            outputs,
            gates: rng.gen_range(2 * outputs..180),
            dffs: if i % 4 == 0 {
                rng.gen_range(1..6usize)
            } else {
                0
            },
            seed: 0x1A0E ^ (i * 0x9E37_79B9),
        };
        let nl = generate(&profile);
        let len = [65usize, 130, 321, 512][i as usize % 4];
        let ps = PatternSet::random(nl.inputs().len(), len, i + 0x1A);
        assert_lane_widths_agree(&nl, &ps, &format!("{}/{len}", profile.name));
    }
}

#[test]
fn c17_differential_all_pattern_counts() {
    let nl = htforge_circuits::iscas::c17();
    // 32 is exhaustive; 1, 63, 65, 100 exercise the tail-mask paths.
    for len in [1usize, 32, 63, 64, 65, 100, 128, 200] {
        let ps = PatternSet::random(nl.inputs().len(), len, 0xC17 + len as u64);
        assert_differential(&nl, &ps, &format!("c17/{len}"));
    }
}

#[test]
fn multiplier_16x16_differential() {
    let nl = multiplier("mul16", 16);
    for len in [100usize, 192, 257] {
        let ps = PatternSet::random(nl.inputs().len(), len, 0x16 * len as u64 + 1);
        assert_differential(&nl, &ps, &format!("mul16/{len}"));
    }
}

#[test]
fn multiplier_kernel_computes_products() {
    // Semantic spot-check on top of the differential one: feed concrete
    // operands and read the product off the output bits.
    let nl = multiplier("mul16", 16);
    let mut rng = StdRng::seed_from_u64(77);
    let cases: Vec<(u64, u64)> = (0..40)
        .map(|_| (rng.gen_range(0..0x10000u64), rng.gen_range(0..0x10000u64)))
        .collect();
    let mut ps = PatternSet::zeros(nl.inputs().len(), cases.len());
    for (p, &(a, b)) in cases.iter().enumerate() {
        for i in 0..16 {
            ps.set(i, p, (a >> i) & 1 == 1);
            ps.set(16 + i, p, (b >> i) & 1 == 1);
        }
    }
    let prog = SimProgram::compile(&nl).unwrap();
    for threads in [1, 4] {
        let vals = prog.run_with_threads(&ps, threads);
        for (p, &(a, b)) in cases.iter().enumerate() {
            let mut product = 0u64;
            for i in 0..32 {
                let o = nl.find(&format!("p{i}")).expect("output bit");
                if vals.value(o, p) {
                    product |= 1 << i;
                }
            }
            assert_eq!(product, a * b, "{a} * {b} at {threads} threads");
        }
    }
}

#[test]
fn synthetic_dags_differential() {
    // 50 random DAG shapes; pattern counts cycle through word-aligned
    // and tail cases. Every 5th profile is sequential (non-scan DFFs
    // must read as constant 0 at every thread count).
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for i in 0..50u64 {
        let outputs = rng.gen_range(1..6usize);
        let profile = CircuitProfile {
            name: format!("synth{i}"),
            inputs: rng.gen_range(3..24usize),
            outputs,
            gates: rng.gen_range(2 * outputs..220),
            dffs: if i % 5 == 0 {
                rng.gen_range(1..8usize)
            } else {
                0
            },
            seed: 0xBEEF ^ (i * 0x9E37_79B9),
        };
        let nl = generate(&profile);
        let len = [1usize, 50, 63, 64, 65, 127, 128, 130, 192, 321][i as usize % 10];
        let ps = PatternSet::random(nl.inputs().len(), len, i + 1);
        assert_differential(&nl, &ps, &format!("{}/{len}", profile.name));
    }
}
