//! Concurrency differential wall for the campaign server.
//!
//! * **Concurrent ≡ sequential.** The same job batch through a
//!   4-worker pool and a 1-worker pool produces byte-identical result
//!   payloads per job (digests included) — scheduling order must never
//!   leak into results.
//! * **Compile-once cache.** N jobs naming the same circuit compile it
//!   exactly once, even when they race from several workers
//!   ([`CacheStats`] pins hits/misses/compiles).
//! * **Cancellation.** Cancelling a queued job and a running job both
//!   yield exactly one terminal `cancelled` response, and the pool
//!   keeps serving afterwards (no poisoning).
//! * **Admission deadlines.** A job whose deadline expires completes as
//!   `timeout`, never hangs, and never goes missing.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use htforge::obs::Json;
use htforge::server::{
    CircuitSource, JobKind, JobParams, JobSpec, ProgramCache, Request, Response, Server,
    ServerConfig, StatsSnapshot,
};

fn spec(id: &str, kind: JobKind, circuit: &str, params: JobParams) -> JobSpec {
    JobSpec {
        tenant: "diff".into(),
        id: id.into(),
        kind,
        circuit: CircuitSource::Builtin(circuit.into()),
        priority: 0,
        deadline_ms: None,
        params,
    }
}

/// A mixed batch covering all four job classes, several circuits and
/// several seeds.
fn batch() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, circuit) in ["c17", "c2670", "c17", "c5315"].iter().enumerate() {
        jobs.push(spec(
            &format!("sim-{i}"),
            JobKind::Simulate,
            circuit,
            JobParams {
                vectors: 1_500,
                seed: i as u64 + 1,
                ..JobParams::default()
            },
        ));
    }
    let light = JobParams {
        vectors: 512,
        theta: 0.3,
        tests: 64,
        ..JobParams::default()
    };
    for i in 0..2 {
        jobs.push(spec(
            &format!("ins-{i}"),
            JobKind::Insert,
            "c17",
            JobParams {
                seed: i + 1,
                ..light.clone()
            },
        ));
        jobs.push(spec(
            &format!("grd-{i}"),
            JobKind::Grade,
            "c17",
            JobParams {
                seed: i + 1,
                ..light.clone()
            },
        ));
        jobs.push(spec(
            &format!("det-{i}"),
            JobKind::Detect,
            "c17",
            JobParams {
                seed: i + 1,
                ..light.clone()
            },
        ));
    }
    jobs
}

/// Runs a batch to completion; returns `(id → (status, compact result
/// payload))`, the final stats, and the cache handed in.
fn run_batch(
    jobs: Vec<JobSpec>,
    workers: usize,
    cache: Arc<ProgramCache>,
) -> (HashMap<String, (String, String)>, StatsSnapshot) {
    let (server, rx) = Server::start_with_cache(
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
        cache,
    );
    let n = jobs.len();
    for job in jobs {
        server.handle(Request::Submit(Box::new(job)));
    }
    let mut results = HashMap::new();
    while results.len() < n {
        match rx.recv().expect("response stream closed early") {
            Response::Result(r) => {
                let payload = r.result.as_ref().map_or(String::new(), Json::compact);
                let dup = results.insert(r.id.clone(), (r.status.as_str().to_owned(), payload));
                assert!(dup.is_none(), "job `{}` answered twice", r.id);
            }
            Response::Error { error, .. } => panic!("unexpected error: {error}"),
            _ => {}
        }
    }
    server.request_shutdown(false);
    let stats = server.join();
    assert_eq!(
        rx.iter()
            .filter(|r| matches!(r, Response::Result(_)))
            .count(),
        0,
        "terminal responses after all jobs were accounted for"
    );
    (results, stats)
}

#[test]
fn concurrent_batch_is_byte_identical_to_sequential() {
    let (sequential, seq_stats) = run_batch(batch(), 1, Arc::new(ProgramCache::new()));
    let (concurrent, conc_stats) = run_batch(batch(), 4, Arc::new(ProgramCache::new()));

    assert_eq!(seq_stats.completed, batch().len() as u64);
    assert_eq!(conc_stats, seq_stats, "lifetime stats must agree");
    assert_eq!(concurrent.len(), sequential.len());
    for (id, (status, payload)) in &sequential {
        let (c_status, c_payload) = &concurrent[id];
        assert_eq!(c_status, status, "status diverged for `{id}`");
        assert_eq!(c_payload, payload, "payload diverged for `{id}`");
        assert_eq!(status, "done");
        assert!(!payload.is_empty(), "done job `{id}` must carry a result");
    }
}

#[test]
fn identical_jobs_share_one_compile_even_under_contention() {
    // 12 identical simulate jobs race onto 4 workers sharing a fresh
    // cache: the circuit must compile exactly once (compilation happens
    // under the cache map lock), every other lookup is a hit.
    let cache = Arc::new(ProgramCache::new());
    let jobs: Vec<JobSpec> = (0..12)
        .map(|i| {
            spec(
                &format!("same-{i}"),
                JobKind::Simulate,
                "c2670",
                JobParams {
                    vectors: 1_024,
                    seed: 7,
                    ..JobParams::default()
                },
            )
        })
        .collect();
    let n = jobs.len() as u64;
    let (results, stats) = run_batch(jobs, 4, Arc::clone(&cache));

    assert_eq!(stats.completed, n);
    let c = cache.stats();
    assert_eq!(c.compiles, 1, "distinct circuit must compile exactly once");
    assert_eq!(c.misses, 1);
    assert_eq!(c.hits, n - 1);
    assert_eq!(cache.entries(), 1);
    // Identical jobs: identical payloads.
    let payloads: Vec<&String> = results.values().map(|(_, p)| p).collect();
    assert!(payloads.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn distinct_circuits_compile_once_each() {
    let cache = Arc::new(ProgramCache::new());
    let mut jobs = Vec::new();
    for round in 0..3 {
        for circuit in ["c17", "c2670", "s1423"] {
            jobs.push(spec(
                &format!("{circuit}-{round}"),
                JobKind::Simulate,
                circuit,
                JobParams {
                    vectors: 256,
                    ..JobParams::default()
                },
            ));
        }
    }
    let (_, stats) = run_batch(jobs, 4, Arc::clone(&cache));
    assert_eq!(stats.completed, 9);
    let c = cache.stats();
    assert_eq!((c.compiles, c.misses, c.hits), (3, 3, 6));
    assert_eq!(cache.entries(), 3);
}

/// Polls `status` responses until `jobs_in_flight` reaches `want`.
fn wait_for_in_flight(
    server: &Server,
    rx: &std::sync::mpsc::Receiver<Response>,
    want: u64,
    spare: &mut Vec<Response>,
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "job never started running");
        server.handle(Request::Status);
        loop {
            match rx
                .recv_timeout(Duration::from_secs(5))
                .expect("status reply")
            {
                Response::Status(body) => {
                    if body.get("jobs_in_flight").and_then(Json::as_u64) == Some(want) {
                        return;
                    }
                    break;
                }
                other => spare.push(other),
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A simulate job big enough to keep a worker busy until cancelled
/// (budget checks run per 4096-vector chunk, so cancellation lands at
/// the next chunk boundary).
fn long_job(id: &str, priority: i64) -> JobSpec {
    JobSpec {
        priority,
        ..spec(
            id,
            JobKind::Simulate,
            "c2670",
            JobParams {
                vectors: 4_096,
                repeat: 1 << 20,
                ..JobParams::default()
            },
        )
    }
}

#[test]
fn cancel_hits_queued_and_running_jobs_without_poisoning_the_pool() {
    let (server, rx) = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut spare = Vec::new();

    // `runner` outranks `queued`, so the single worker always picks it
    // up first and `queued` stays in the heap behind it.
    server.handle(Request::Submit(Box::new(long_job("runner", 1))));
    wait_for_in_flight(&server, &rx, 1, &mut spare);
    server.handle(Request::Submit(Box::new(long_job("queued", 0))));

    // Cancel the queued job from another thread (the cross-thread path
    // the protocol promises): its terminal response comes from the
    // canceller, the worker later discards the tombstoned heap entry.
    let handle = {
        let server = Arc::new(server);
        let s = Arc::clone(&server);
        let h = std::thread::spawn(move || {
            s.handle(Request::Cancel {
                tenant: "diff".into(),
                id: "queued".into(),
            });
            s.handle(Request::Cancel {
                tenant: "diff".into(),
                id: "runner".into(),
            });
        });
        (server, h)
    };
    let (server, canceller) = handle;
    canceller.join().expect("canceller thread");

    // Both must reach a terminal `cancelled` — the queued one
    // immediately, the running one at its next budget check.
    let mut statuses = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while statuses.len() < 2 {
        assert!(Instant::now() < deadline, "cancellation hung: {statuses:?}");
        if let Response::Result(r) = rx.recv_timeout(Duration::from_secs(60)).expect("response") {
            statuses.insert(
                r.id.clone(),
                (r.status.as_str().to_owned(), r.error.clone()),
            );
        }
    }
    for id in ["queued", "runner"] {
        let (status, error) = &statuses[id];
        assert_eq!(status, "cancelled", "`{id}`: {error:?}");
    }

    // The pool is not poisoned: a fresh job completes normally.
    server.handle(Request::Submit(Box::new(spec(
        "after",
        JobKind::Simulate,
        "c17",
        JobParams {
            vectors: 128,
            ..JobParams::default()
        },
    ))));
    loop {
        if let Response::Result(r) = rx.recv_timeout(Duration::from_secs(60)).expect("response") {
            assert_eq!(r.id, "after");
            assert_eq!(r.status.as_str(), "done");
            break;
        }
    }
    server.request_shutdown(false);
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("server still shared"));
    let stats = server.join();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.finished(), stats.submitted);
}

#[test]
fn cancelling_an_unknown_job_is_an_error_not_a_terminal() {
    let (server, rx) = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    server.handle(Request::Cancel {
        tenant: "nobody".into(),
        id: "ghost".into(),
    });
    server.request_shutdown(false);
    server.join();
    let responses: Vec<_> = rx.iter().collect();
    assert!(responses
        .iter()
        .any(|r| matches!(r, Response::Error { stage, .. } if stage == "cancel")));
    assert!(!responses.iter().any(|r| matches!(r, Response::Result(_))));
}

#[test]
fn expired_deadline_completes_as_timeout_not_a_hang() {
    let (server, rx) = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    // The deadline clock starts at submission and the job needs many
    // chunks, so it cannot finish inside 1 ms: some budget check must
    // trip and surface `timeout`.
    server.handle(Request::Submit(Box::new(JobSpec {
        deadline_ms: Some(1),
        ..long_job("doomed", 0)
    })));
    let started = Instant::now();
    loop {
        if let Response::Result(r) = rx.recv_timeout(Duration::from_secs(60)).expect("response") {
            assert_eq!(r.id, "doomed");
            assert_eq!(r.status.as_str(), "timeout");
            break;
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "timeout took {:?}",
        started.elapsed()
    );
    server.request_shutdown(false);
    let stats = server.join();
    assert_eq!(stats.timeout, 1);
    assert_eq!(stats.finished(), 1);
}

// ---------------------------------------------------------------------------
// Admission control: bounded queues and tenant quotas shed load with
// structured rejections — never dropped connections, never lost
// accepted jobs.
// ---------------------------------------------------------------------------

fn medium_job(tenant: &str, id: &str) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        ..spec(
            id,
            JobKind::Simulate,
            "c2670",
            JobParams {
                vectors: 4_096,
                repeat: 16,
                ..JobParams::default()
            },
        )
    }
}

/// Drains responses until `accepted` terminal results have arrived,
/// returning `(result_ids, rejects)` where rejects are
/// `(id, reason, retry_after_ms)`.
fn drain_terminals(
    rx: &std::sync::mpsc::Receiver<Response>,
    accepted: usize,
) -> (Vec<String>, Vec<(String, String, u64)>) {
    let mut results = Vec::new();
    let mut rejects = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    while results.len() < accepted {
        assert!(Instant::now() < deadline, "terminals never drained");
        match rx.recv_timeout(Duration::from_secs(120)).expect("stream") {
            Response::Result(r) => results.push(r.id.clone()),
            Response::Reject {
                id,
                reason,
                retry_after_ms,
                ..
            } => rejects.push((id, reason, retry_after_ms)),
            _ => {}
        }
    }
    (results, rejects)
}

#[test]
fn bounded_queue_sheds_queue_full_but_loses_no_accepted_job() {
    let (server, rx) = Server::start(ServerConfig {
        workers: 1,
        admission: htforge::server::AdmissionConfig {
            max_queue_depth: 1,
            ..htforge::server::AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });

    let total = 5;
    for i in 0..total {
        server.handle(Request::Submit(Box::new(medium_job(
            "flood",
            &format!("f{i}"),
        ))));
    }
    // Count acks/rejects first: every submit got exactly one of them.
    let mut accepted = 0;
    let mut rejected = Vec::new();
    let mut seen = 0;
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut pending = Vec::new();
    while seen < total {
        assert!(Instant::now() < deadline, "submits were dropped");
        match rx.recv_timeout(Duration::from_secs(60)).expect("stream") {
            Response::Ack { .. } => {
                accepted += 1;
                seen += 1;
            }
            Response::Reject {
                id,
                reason,
                retry_after_ms,
                ..
            } => {
                rejected.push((id, reason, retry_after_ms));
                seen += 1;
            }
            other => pending.push(other),
        }
    }
    assert!(
        !rejected.is_empty(),
        "a 1-deep queue must shed a 5-job burst"
    );
    assert_eq!(accepted + rejected.len(), total);
    for (id, reason, retry_after_ms) in &rejected {
        assert_eq!(reason, "queue_full", "{id}");
        assert!(*retry_after_ms > 0, "{id}: retry hint missing");
    }

    // Every accepted job still reaches exactly one terminal response.
    let mut results: Vec<String> = pending
        .iter()
        .filter_map(|r| match r {
            Response::Result(r) => Some(r.id.clone()),
            _ => None,
        })
        .collect();
    let (late, more_rejects) = drain_terminals(&rx, accepted - results.len());
    assert!(more_rejects.is_empty());
    results.extend(late);
    assert_eq!(results.len(), accepted);

    server.request_shutdown(false);
    let stats = server.join();
    assert_eq!(stats.rejected as usize, rejected.len());
    assert_eq!(stats.finished(), accepted as u64);
    assert_eq!(
        stats.finished(),
        stats.submitted,
        "an accepted job vanished"
    );
}

#[test]
fn tenant_quota_isolates_the_noisy_neighbor() {
    let (server, rx) = Server::start(ServerConfig {
        workers: 2,
        admission: htforge::server::AdmissionConfig {
            tenant_max_active: 2,
            ..htforge::server::AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });

    // The flood tenant bursts 4 jobs; its quota admits exactly 2
    // (active = queued + running, counted at accept — deterministic).
    for i in 0..4 {
        server.handle(Request::Submit(Box::new(medium_job(
            "flood",
            &format!("n{i}"),
        ))));
    }
    // The victim tenant's single job rides in despite the flood.
    server.handle(Request::Submit(Box::new(medium_job("victim", "v0"))));

    let (results, rejects) = drain_terminals(&rx, 3);
    assert_eq!(rejects.len(), 2, "quota must shed exactly 2 of the burst");
    for (id, reason, _) in &rejects {
        assert_eq!(reason, "queue_full", "{id}");
        assert!(id.starts_with('n'), "only flood jobs may be shed, not {id}");
    }
    assert!(
        results.iter().any(|id| id == "v0"),
        "the victim's job must complete: {results:?}"
    );

    server.request_shutdown(false);
    let stats = server.join();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.finished(), 3);
}

#[test]
fn rate_limit_rejects_with_a_computed_retry_hint() {
    let (server, rx) = Server::start(ServerConfig {
        workers: 1,
        admission: htforge::server::AdmissionConfig {
            tenant_rate_per_sec: 0.5,
            tenant_burst: 1.0,
            ..htforge::server::AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });

    // The bucket starts with one token: the first submit spends it,
    // the immediate second one is rate-limited with a retry hint
    // derived from the 0.5/s refill (≈ 2 s to a whole token).
    server.handle(Request::Submit(Box::new(medium_job("metered", "ok"))));
    server.handle(Request::Submit(Box::new(medium_job("metered", "fast"))));

    let (results, rejects) = drain_terminals(&rx, 1);
    assert_eq!(results, vec!["ok".to_owned()]);
    assert_eq!(rejects.len(), 1);
    let (id, reason, retry_after_ms) = &rejects[0];
    assert_eq!(id, "fast");
    assert_eq!(reason, "rate_limit");
    assert!(
        (500..=4_000).contains(retry_after_ms),
        "retry hint {retry_after_ms} ms should reflect the 0.5/s refill"
    );

    server.request_shutdown(false);
    let stats = server.join();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn disconnected_session_terminal_is_retrievable_via_pickup() {
    let (server, rx0) = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    // Submit on a socket-style session, then drop the connection
    // before the job can possibly complete.
    let (sid, session_rx) = server.open_session();
    server.handle_for(
        sid,
        Request::Submit(Box::new(medium_job("recon", "orphan-1"))),
    );
    match session_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("ack")
    {
        Response::Ack { id, .. } => assert_eq!(id.as_deref(), Some("orphan-1")),
        other => panic!("expected ack, got {other:?}"),
    }
    drop(session_rx);
    server.close_session(sid);

    // The terminal diverts to the session-0 drain (stays observable)
    // and is parked for pickup.
    let (drained, _) = drain_terminals(&rx0, 1);
    assert_eq!(drained, vec!["orphan-1".to_owned()]);

    // A reconnected session retrieves the full terminal by tenant+id.
    let (sid2, rx2) = server.open_session();
    server.handle_for(
        sid2,
        Request::Pickup {
            tenant: "recon".into(),
            id: "orphan-1".into(),
        },
    );
    match rx2.recv_timeout(Duration::from_secs(30)).expect("pickup") {
        Response::Result(r) => {
            assert_eq!((r.tenant.as_str(), r.id.as_str()), ("recon", "orphan-1"));
            assert_eq!(r.status.as_str(), "done");
            assert!(r.result.is_some(), "pickup returns the full payload");
        }
        other => panic!("expected parked terminal, got {other:?}"),
    }

    // Pickup consumes the parked entry: a second attempt is a
    // structured error, as is picking up a job that was never parked.
    server.handle_for(
        sid2,
        Request::Pickup {
            tenant: "recon".into(),
            id: "orphan-1".into(),
        },
    );
    match rx2.recv_timeout(Duration::from_secs(30)).expect("error") {
        Response::Error { stage, error, .. } => {
            assert_eq!(stage, "pickup");
            assert!(error.contains("orphan-1"), "{error}");
        }
        other => panic!("expected pickup error, got {other:?}"),
    }

    // A terminal delivered to a live session is never parked.
    server.handle_for(sid2, Request::Submit(Box::new(medium_job("recon", "live"))));
    let mut saw_live_result = false;
    let deadline = Instant::now() + Duration::from_secs(120);
    while !saw_live_result {
        assert!(Instant::now() < deadline, "live terminal never arrived");
        if let Response::Result(r) = rx2.recv_timeout(Duration::from_secs(120)).expect("stream") {
            assert_eq!(r.id, "live");
            saw_live_result = true;
        }
    }
    server.handle_for(
        sid2,
        Request::Pickup {
            tenant: "recon".into(),
            id: "live".into(),
        },
    );
    assert!(matches!(
        rx2.recv_timeout(Duration::from_secs(30)).expect("error"),
        Response::Error { .. }
    ));

    server.close_session(sid2);
    server.request_shutdown(false);
    let stats = server.join();
    assert_eq!(stats.completed, 2);
}
