//! End-to-end smoke test: spawn the real `htforge-server` binary, feed
//! it a mixed JSONL batch over stdin, and validate everything it says
//! back — every response line is schema-tagged JSON, every embedded
//! run report validates against `htforge.run_report/v1`, exactly one
//! terminal response per job, and EOF is a clean drain shutdown (last
//! line `type: "shutdown"`, exit code 0).

use std::collections::HashMap;
use std::io::Write;
use std::process::{Command, Stdio};

use htforge::obs::{
    parse_json, validate_job_progress, validate_job_timeline, validate_json,
    validate_metrics_snapshot, Json,
};
use htforge::server::{REQUEST_SCHEMA, RESPONSE_SCHEMA};

fn submit(id: &str, kind: &str, circuit: &str, params: &str) -> String {
    format!(
        r#"{{"schema":"{REQUEST_SCHEMA}","op":"submit","id":"{id}","kind":"{kind}","circuit":"{circuit}","params":{params}}}"#
    )
}

#[test]
fn daemon_serves_a_mixed_batch_over_stdin_and_drains_on_eof() {
    let light = r#"{"vectors":512,"theta":0.3,"tests":64}"#;
    let mut input = String::new();
    // A malformed line mid-batch must not disturb the jobs around it.
    input.push_str(&submit("sim-a", "simulate", "c17", r#"{"vectors":1024}"#));
    input.push('\n');
    input.push_str(&submit("ins-a", "insert", "c17", light));
    input.push('\n');
    input.push_str("this is not json\n");
    input.push_str(&submit("det-a", "detect", "c17", light));
    input.push('\n');
    input.push_str(&submit("grd-a", "grade", "s1423", light));
    input.push('\n');
    input.push_str(r#"{"schema":"htforge.job_request/v1","op":"status"}"#);
    input.push('\n');
    input.push_str(r#"{"schema":"htforge.job_request/v1","op":"metrics"}"#);
    input.push('\n');
    // EOF follows — no explicit shutdown request: the daemon must
    // drain all four jobs and exit cleanly on its own.

    let mut child = Command::new(env!("CARGO_BIN_EXE_htforge-server"))
        .args(["--workers", "2", "--tenant", "smoke"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn htforge-server");
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    // stdin drops here: EOF.
    let out = child.wait_with_output().expect("daemon exit");
    assert!(
        out.status.success(),
        "daemon failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "daemon said nothing");

    let mut terminals: HashMap<String, String> = HashMap::new();
    let mut parse_errors = 0;
    let mut saw_status = false;
    let mut saw_metrics = false;
    let mut reports_validated = 0;
    for line in &lines {
        let doc = parse_json(line).unwrap_or_else(|e| panic!("bad JSONL `{line}`: {e}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(RESPONSE_SCHEMA),
            "{line}"
        );
        match doc.get("type").and_then(Json::as_str).expect("type field") {
            "result" => {
                let id = doc.get("id").and_then(Json::as_str).expect("id").to_owned();
                let status = doc
                    .get("status")
                    .and_then(Json::as_str)
                    .expect("status")
                    .to_owned();
                // The default tenant from the command line sticks.
                assert_eq!(doc.get("tenant").and_then(Json::as_str), Some("smoke"));
                let report = doc
                    .get("report")
                    .expect("terminal response carries a report");
                validate_json(report).unwrap_or_else(|e| panic!("report for `{id}` invalid: {e}"));
                let meta = report.get("meta").expect("report meta");
                assert_eq!(meta.get("job_id").and_then(Json::as_str), Some(id.as_str()));
                assert_eq!(
                    meta.get("status").and_then(Json::as_str),
                    Some(status.as_str())
                );
                // Every terminal response is trace-correlated and
                // carries a schema-valid per-phase timeline, so a
                // campaign reconstructs offline from the JSONL alone.
                let trace = doc.get("trace").and_then(Json::as_str).expect("trace id");
                assert_eq!(trace.len(), 16, "{line}");
                assert_eq!(meta.get("trace").and_then(Json::as_str), Some(trace));
                let timeline = doc.get("timeline").expect("terminal timeline");
                validate_job_timeline(timeline)
                    .unwrap_or_else(|e| panic!("timeline for `{id}` invalid: {e}"));
                assert_eq!(timeline.get("trace").and_then(Json::as_str), Some(trace));
                reports_validated += 1;
                let dup = terminals.insert(id.clone(), status);
                assert!(dup.is_none(), "two terminal responses for `{id}`");
            }
            "error" => parse_errors += 1,
            "status" => {
                saw_status = true;
                assert!(doc.get("queue_depth").is_some(), "{line}");
                assert!(doc.get("cache_hit_rate").is_some(), "{line}");
            }
            "ack" => {}
            "progress" => {
                let frame = doc.get("progress").expect("embedded progress frame");
                validate_job_progress(frame).unwrap_or_else(|e| panic!("{line}: {e}"));
            }
            "metrics" => {
                saw_metrics = true;
                let snapshot = doc.get("snapshot").expect("metrics snapshot");
                validate_metrics_snapshot(snapshot).unwrap_or_else(|e| panic!("{line}: {e}"));
                assert!(doc.get("budget_profiles").is_some(), "{line}");
            }
            "shutdown" => {
                assert_eq!(
                    *line,
                    *lines.last().unwrap(),
                    "shutdown must be the final line"
                );
                assert_eq!(doc.get("mode").and_then(Json::as_str), Some("drain"));
                assert_eq!(doc.get("jobs_completed").and_then(Json::as_u64), Some(4));
            }
            other => panic!("unknown response type `{other}`: {line}"),
        }
    }

    assert_eq!(parse_errors, 1, "the one malformed line answers once");
    assert!(saw_status, "status request went unanswered");
    assert!(saw_metrics, "metrics request went unanswered");
    assert_eq!(reports_validated, 4);
    assert_eq!(terminals.len(), 4, "{terminals:?}");
    for id in ["sim-a", "ins-a", "det-a", "grd-a"] {
        assert_eq!(
            terminals.get(id).map(String::as_str),
            Some("done"),
            "job `{id}`: {terminals:?}"
        );
    }
    // The last line is the shutdown notice (checked above to be the
    // only one); make sure it exists at all.
    let last = parse_json(lines.last().unwrap()).unwrap();
    assert_eq!(last.get("type").and_then(Json::as_str), Some("shutdown"));
}

#[test]
fn explicit_drop_shutdown_cancels_queued_jobs_but_answers_them_all() {
    // One worker, one long-ish job, three queued behind it, then an
    // immediate `drop` shutdown: the queued jobs must come back
    // `cancelled` (dropped at shutdown), and nothing is lost.
    let slow = r#"{"vectors":4096,"repeat":64}"#;
    let mut input = String::new();
    for i in 0..4 {
        input.push_str(&submit(&format!("j{i}"), "simulate", "c2670", slow));
        input.push('\n');
    }
    input.push_str(r#"{"schema":"htforge.job_request/v1","op":"shutdown","mode":"drop"}"#);
    input.push('\n');

    let mut child = Command::new(env!("CARGO_BIN_EXE_htforge-server"))
        .args(["--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn htforge-server");
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon exit");
    assert!(out.status.success());

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let mut statuses: HashMap<String, String> = HashMap::new();
    let mut shutdown_mode = None;
    for line in stdout.lines().filter(|l| !l.trim().is_empty()) {
        let doc = parse_json(line).unwrap_or_else(|e| panic!("bad JSONL `{line}`: {e}"));
        match doc.get("type").and_then(Json::as_str) {
            Some("result") => {
                statuses.insert(
                    doc.get("id").and_then(Json::as_str).unwrap().to_owned(),
                    doc.get("status").and_then(Json::as_str).unwrap().to_owned(),
                );
            }
            Some("shutdown") => {
                shutdown_mode = doc.get("mode").and_then(Json::as_str).map(str::to_owned);
            }
            _ => {}
        }
    }
    assert_eq!(shutdown_mode.as_deref(), Some("drop"));
    // Every accepted job got a terminal response; at least one was
    // dropped from the queue (with one worker and four jobs, at most
    // one can be running when the drop lands — but scheduling is real,
    // so only the invariant is pinned, not the exact split).
    assert_eq!(statuses.len(), 4, "{statuses:?}");
    assert!(
        statuses.values().any(|s| s == "cancelled"),
        "drop shutdown should cancel queued jobs: {statuses:?}"
    );
    assert!(
        statuses.values().all(|s| s == "cancelled" || s == "done"),
        "{statuses:?}"
    );
}

#[test]
fn long_job_streams_progress_frames_before_its_terminal_response() {
    // The acceptance path from ISSUE 8: a long job against the real
    // binary must yield at least one schema-valid job_progress frame
    // before its terminal response, all bound to one trace id.
    let mut input = String::new();
    input.push_str(&submit(
        "long-a",
        "simulate",
        "c2670",
        r#"{"vectors":4096,"repeat":16}"#,
    ));
    input.push('\n');

    let mut child = Command::new(env!("CARGO_BIN_EXE_htforge-server"))
        .args(["--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn htforge-server");
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon exit");
    assert!(out.status.success());

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let docs: Vec<Json> = stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_json(l).unwrap_or_else(|e| panic!("bad JSONL `{l}`: {e}")))
        .collect();
    let type_of = |d: &Json| d.get("type").and_then(Json::as_str).unwrap().to_owned();
    let first_progress = docs
        .iter()
        .position(|d| type_of(d) == "progress")
        .expect("a long job must stream at least one progress frame");
    let result = docs
        .iter()
        .position(|d| type_of(d) == "result")
        .expect("a terminal result");
    assert!(
        first_progress < result,
        "progress (line {first_progress}) must precede the result (line {result})"
    );

    let trace = docs[result].get("trace").and_then(Json::as_str).unwrap();
    assert_eq!(trace.len(), 16);
    for doc in docs.iter().filter(|d| type_of(d) == "progress") {
        let frame = doc.get("progress").expect("embedded frame");
        validate_job_progress(frame).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(doc.get("trace").and_then(Json::as_str), Some(trace));
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("long-a"));
    }
    let timeline = docs[result].get("timeline").expect("timeline");
    validate_job_timeline(timeline).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(timeline.get("trace").and_then(Json::as_str), Some(trace));
    let phases = timeline.get("phases").and_then(Json::as_arr).unwrap();
    assert!(!phases.is_empty(), "timeline must name at least one phase");
}
