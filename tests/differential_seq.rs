//! Differential / property harness for batched sequential simulation.
//!
//! [`BatchedSequentialSimulator`] (64 traces per machine word) must be
//! **bit-identical** to stepping each trace through the scalar
//! [`SequentialSimulator`] oracle — for every node, every trace, every
//! cycle. The harness proves it on:
//!
//! * c17 (a combinational netlist: the zero-DFF degenerate case),
//! * the 16×16 array multiplier with injected DFF pipeline wrappers,
//! * ≥25 random synthetic sequential DAGs,
//! * proptest-driven campaigns over trace counts {1, 63, 64, 65, 200},
//!   cycle counts 1..128, ripple-counter widths, and per-trace reset
//!   states,
//! * sequential-trojan activation: per-trace first-arm latencies from
//!   one batched [`FirstFireMonitor`] pass must equal a scalar replay.

use htforge::circuits::multiplier::multiplier;
use htforge::circuits::synth::{generate, CircuitProfile};
use htforge::netlist::{bench, Netlist};
use htforge::sim::seq_batch::{BatchedSequentialSimulator, FirstFireMonitor};
use htforge::sim::sequential::SequentialSimulator;
use htforge::sim::PatternSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The trace counts the word layout cares about: single trace, one bit
/// short of a word, exactly a word, one bit over, and a multi-word
/// batch.
const TRACE_COUNTS: [usize; 5] = [1, 63, 64, 65, 200];

/// Steps `cycles` of random stimuli through the batched simulator and
/// one scalar oracle per trace, asserting every node of every trace
/// agrees after every cycle (plus the post-edge flop states).
fn assert_seq_differential(nl: &Netlist, traces: usize, cycles: usize, seed: u64, label: &str) {
    let num_inputs = nl.inputs().len();
    let mut batched = BatchedSequentialSimulator::new(nl, traces).expect("batched builds");
    let mut scalars: Vec<SequentialSimulator> = (0..traces)
        .map(|_| SequentialSimulator::new(nl).expect("scalar builds"))
        .collect();
    let probe_nodes: Vec<_> = batched.netlist().node_ids().collect();

    for cycle in 0..cycles {
        let stimulus = PatternSet::random(
            num_inputs,
            traces,
            seed ^ (cycle as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        batched.step(&stimulus);
        for (t, scalar) in scalars.iter_mut().enumerate() {
            scalar.step(&stimulus.pattern(t)).unwrap();
            for &node in &probe_nodes {
                assert_eq!(
                    batched.value(node, t),
                    scalar.value(node),
                    "{label}: node {} diverged (trace {t}, cycle {cycle})",
                    batched.netlist().node(node).name()
                );
            }
            assert_eq!(
                batched.state_of_trace(t),
                scalar.state(),
                "{label}: flop state diverged (trace {t}, cycle {cycle})"
            );
        }
    }
}

#[test]
fn c17_combinational_degenerate_case() {
    let nl = htforge::circuits::load("c17").unwrap();
    assert!(nl.dffs().is_empty());
    for traces in TRACE_COUNTS {
        assert_seq_differential(&nl, traces, 4, 0xC17, &format!("c17/{traces}"));
    }
}

/// Pipelines `count` internal nets of `nl` behind DFFs: each chosen net
/// keeps driving its register's D input, while all its other consumers
/// see the registered value. Deterministic in `seed`.
fn inject_dff_wrappers(nl: &Netlist, count: usize, seed: u64) -> Netlist {
    let mut out = nl.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    // Candidates: gates with at least one fanout (so the register
    // actually cuts a path); skip primary outputs to preserve the
    // combinational output interface for latency-free comparison.
    let candidates: Vec<_> = nl
        .node_ids()
        .filter(|&id| {
            nl.node(id).kind().gate_kind().is_some()
                && !nl.node(id).fanouts().is_empty()
                && !nl.is_output(id)
        })
        .collect();
    assert!(candidates.len() >= count, "not enough wrap candidates");
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < count {
        picked.insert(candidates[rng.gen_range(0..candidates.len())].index());
    }
    for (k, idx) in picked.into_iter().enumerate() {
        let victim = htforge::netlist::netlist::NodeId::from_index(idx);
        let q = out.add_dff(format!("wrap{k}"), victim).expect("fresh name");
        out.splice_driver(victim, q);
    }
    out.validate().expect("wrapped netlist validates");
    out
}

#[test]
fn multiplier16_with_injected_dff_wrappers() {
    let comb = multiplier("c6288", 16);
    let nl = inject_dff_wrappers(&comb, 12, 7);
    assert_eq!(nl.dffs().len(), 12);
    assert_seq_differential(&nl, 65, 6, 0x6288, "mul16+dff");
}

#[test]
fn synthetic_sequential_dags_match_scalar() {
    // ≥25 generated sequential circuits across sizes, DFF counts, trace
    // counts, and cycle counts.
    for seed in 0..26u64 {
        let profile = CircuitProfile {
            name: format!("seqdag{seed}"),
            inputs: 5 + (seed as usize % 7),
            outputs: 1 + (seed as usize % 4),
            gates: 40 + (seed as usize * 3) % 80,
            dffs: 1 + (seed as usize % 8),
            seed: 0xDA6 + seed,
        };
        let nl = generate(&profile);
        let traces = TRACE_COUNTS[seed as usize % TRACE_COUNTS.len()];
        let cycles = 1 + (seed as usize * 5) % 16;
        assert_seq_differential(
            &nl,
            traces,
            cycles,
            seed,
            &format!("synth seed {seed} ({traces} traces, {cycles} cycles)"),
        );
    }
}

/// Builds a `k`-bit ripple counter with an enable input and `q{k-1}` as
/// its observable output — the canonical time-bomb state machine.
fn counter_netlist(bits: usize) -> Netlist {
    let mut src = String::from("INPUT(en)\n");
    src.push_str(&format!("OUTPUT(q{})\n", bits - 1));
    let mut carry = "en".to_owned();
    for b in 0..bits {
        src.push_str(&format!("d{b} = XOR({carry}, q{b})\n"));
        if b + 1 < bits {
            src.push_str(&format!("c{b} = AND({carry}, q{b})\n"));
            carry = format!("c{b}");
        }
        src.push_str(&format!("q{b} = DFF(d{b})\n"));
    }
    bench::parse(&src, &format!("cnt{bits}")).unwrap()
}

/// Counter value of one batched trace, LSB-first flop order.
fn counter_value(sim: &BatchedSequentialSimulator, nl: &Netlist, trace: usize) -> u64 {
    // `dffs()` order is file order q0..q{k-1} = LSB..MSB.
    (0..nl.dffs().len())
        .map(|b| u64::from(sim.state_bit(b, trace)) << b)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched ≡ scalar on random sequential DAGs, across the full
    /// trace-count × cycle-count grid the word layout cares about.
    #[test]
    fn batched_matches_scalar_oracle(
        seed in any::<u64>(),
        trace_idx in 0usize..TRACE_COUNTS.len(),
        cycles in 1usize..32,
        dffs in 1usize..6,
    ) {
        let profile = CircuitProfile {
            name: "prop_seq".into(),
            inputs: 6,
            outputs: 2,
            gates: 50,
            dffs,
            seed,
        };
        let nl = generate(&profile);
        assert_seq_differential(&nl, TRACE_COUNTS[trace_idx], cycles, seed, "proptest");
    }

    /// Counter semantics: for arbitrary widths, per-trace reset states,
    /// and up to 128 cycles of random enables, the batched counter
    /// equals `(reset + #enables) mod 2^k` — and the scalar stepper
    /// lands on the same value.
    #[test]
    fn counter_widths_and_reset_states(
        bits in 1usize..6,
        cycles in 1usize..128,
        seed in any::<u64>(),
    ) {
        let nl = counter_netlist(bits);
        let traces = 65; // multi-word plus a tail
        let mut batched = BatchedSequentialSimulator::new(&nl, traces).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);

        // Random per-trace reset state, mirrored into a scalar oracle
        // and an arithmetic model.
        let mut expected: Vec<u64> = Vec::with_capacity(traces);
        let mut scalars: Vec<SequentialSimulator> = Vec::with_capacity(traces);
        for t in 0..traces {
            let reset: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
            batched.set_state_of_trace(t, &reset);
            let mut scalar = SequentialSimulator::new(&nl).unwrap();
            scalar.set_state(&reset);
            scalars.push(scalar);
            expected.push(reset.iter().enumerate().map(|(b, &v)| u64::from(v) << b).sum());
        }

        let modulus = 1u64 << bits;
        for cycle in 0..cycles {
            let stimulus = PatternSet::random(1, traces, seed ^ ((cycle as u64) << 8));
            batched.step(&stimulus);
            for (t, scalar) in scalars.iter_mut().enumerate() {
                scalar.step(&stimulus.pattern(t)).unwrap();
                if stimulus.get(0, t) {
                    expected[t] = (expected[t] + 1) % modulus;
                }
                let got = counter_value(&batched, &nl, t);
                prop_assert_eq!(got, expected[t], "trace {} cycle {}", t, cycle);
                let scalar_value: u64 = scalar
                    .state()
                    .iter()
                    .enumerate()
                    .map(|(b, &v)| u64::from(v) << b)
                    .sum();
                prop_assert_eq!(got, scalar_value, "scalar divergence, trace {}", t);
            }
        }
    }
}

/// Builds a sequential trojan on the 4-input HOST circuit (the same
/// recipe as `htforge-core`'s unit tests): 2-node trigger, `bits`-bit
/// counter, Flip payload.
fn build_timebomb(bits: usize) -> (Netlist, htforge::core::SequentialInfectedDesign, Vec<bool>) {
    use htforge::atpg::PodemConfig;
    use htforge::core::{
        enumerate_cliques, insert_sequential_trojan, CompatGraph, PayloadKind, PayloadStrategy,
        TriggerPlan,
    };
    use htforge::sim::RareNodeExtractor;

    const HOST: &str = "\
INPUT(a1)
INPUT(a2)
INPUT(b1)
INPUT(b2)
OUTPUT(w)
OUTPUT(x)
OUTPUT(o)
w = AND(a1, a2)
x = AND(b1, b2)
o = XOR(a1, b1)
";
    let nl = bench::parse(HOST, "host").unwrap();
    let ps = PatternSet::random(4, 10_000, 1);
    let rare = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
    let graph = CompatGraph::build(&nl, &rare, PodemConfig::justify()).unwrap();
    let cliques = enumerate_cliques(&graph, 2, 1, 0);
    let clique = &cliques[0];
    let leaves: Vec<_> = clique
        .members
        .iter()
        .map(|&m| {
            let e = &graph.events()[m];
            (e.node, e.rare_value)
        })
        .collect();
    let rare_values: Vec<bool> = leaves.iter().map(|&(_, v)| v).collect();
    let plan = TriggerPlan::synthesize(&rare_values, 4);
    let scoap = htforge::scoap::Scoap::compute(&nl).unwrap();
    let trigger_nodes: Vec<_> = leaves.iter().map(|&(n, _)| n).collect();
    let payload = htforge::core::payload::choose_payload(
        &nl,
        &scoap,
        &trigger_nodes,
        PayloadStrategy::MostObservable,
    )
    .unwrap();
    let (infected, trojan) = insert_sequential_trojan(
        &nl,
        &leaves,
        &plan,
        payload,
        PayloadKind::Flip,
        bits,
        "s0",
        clique.activation_cube.clone(),
    )
    .unwrap();
    let trigger_vec = trojan.combinational.activation_cube.fill_with(false);
    (
        nl,
        htforge::core::SequentialInfectedDesign {
            netlist: infected,
            trojan,
        },
        trigger_vec,
    )
}

/// Per-trace activation latency out of one batched pass must equal a
/// trace-by-trace scalar replay, over a mixed random/forced-trigger
/// stimulus schedule.
#[test]
fn trojan_activation_latency_batched_equals_scalar() {
    let (_, design, trigger_vec) = build_timebomb(2);
    let traces = 64;
    let cycles = 60;
    let armed_node = design.trojan.combinational.trigger_output;

    // Schedule: trace t applies the trigger vector whenever
    // (cycle * 7 + t) % 5 == 0, random stimulus otherwise.
    let stimulus_for = |cycle: usize| -> PatternSet {
        let base = PatternSet::random(4, traces, 0xBEEF ^ cycle as u64);
        let vectors: Vec<Vec<bool>> = (0..traces)
            .map(|t| {
                if (cycle * 7 + t).is_multiple_of(5) {
                    trigger_vec.clone()
                } else {
                    base.pattern(t)
                }
            })
            .collect();
        PatternSet::from_vectors(4, &vectors)
    };

    let mut batched = BatchedSequentialSimulator::new(&design.netlist, traces).unwrap();
    let mut monitor = FirstFireMonitor::new(traces);
    for cycle in 0..cycles {
        batched.step(&stimulus_for(cycle));
        monitor.observe(batched.node_words(armed_node).unwrap());
    }

    let mut scalar_fired = 0usize;
    for t in 0..traces {
        let mut scalar = SequentialSimulator::new(&design.netlist).unwrap();
        let mut first: Option<u32> = None;
        for cycle in 0..cycles {
            scalar.step(&stimulus_for(cycle).pattern(t)).unwrap();
            if first.is_none() && scalar.value(armed_node) == Some(true) {
                first = Some(cycle as u32);
            }
        }
        if first.is_some() {
            scalar_fired += 1;
        }
        assert_eq!(
            monitor.first_fire(t),
            first,
            "activation latency diverged for trace {t}"
        );
    }
    assert_eq!(monitor.fired_count(), scalar_fired);
    assert!(monitor.any_fired(), "schedule must arm some traces");
}

/// Strategy × worker matrix for the sequential stepper: {1, 2, 4}
/// kernel threads × {column, level} forced strategies must all
/// reproduce the scalar oracle cycle for cycle. The level rows are the
/// interesting ones — they route every cycle's feedback frame through
/// the shared-buffer barrier path, so a stale-level read would
/// compound across cycles and diverge loudly here.
#[test]
fn stepper_strategy_thread_matrix_matches_scalar() {
    use htforge::sim::KernelStrategy;

    let profile = CircuitProfile {
        name: "matrix".into(),
        inputs: 6,
        outputs: 2,
        gates: 140,
        dffs: 5,
        seed: 0x3A7,
    };
    let nl = generate(&profile);
    // 63 traces: the single-word regime where only level splits.
    // 130 traces: multi-word with a partial tail, so column splits too.
    for traces in [63usize, 130] {
        let cycles = 4;
        let stimuli: Vec<PatternSet> = (0..cycles)
            .map(|c| PatternSet::random(6, traces, 0xA11 ^ (c as u64) << 3))
            .collect();
        let expected: Vec<Vec<bool>> = (0..traces)
            .map(|t| {
                let mut scalar = SequentialSimulator::new(&nl).unwrap();
                for stim in &stimuli {
                    scalar.step(&stim.pattern(t)).unwrap();
                }
                scalar.state().to_vec()
            })
            .collect();
        for strategy in [KernelStrategy::Column, KernelStrategy::Level] {
            for threads in [1usize, 2, 4] {
                let mut sim = BatchedSequentialSimulator::new(&nl, traces).unwrap();
                sim.set_strategy(Some(strategy));
                sim.set_threads(Some(threads));
                for stim in &stimuli {
                    sim.step(stim);
                }
                for (t, exp) in expected.iter().enumerate() {
                    assert_eq!(
                        &sim.state_of_trace(t),
                        exp,
                        "{traces} traces, {}/{threads}t, trace {t}",
                        strategy.name()
                    );
                }
            }
        }
    }
}

/// The batched stepper's `step_n`-style snapshots (via the scalar
/// convenience API) agree with batched columns — ties the satellite
/// `SequentialSimulator::step_n` into the differential net.
#[test]
fn scalar_step_n_snapshots_match_batched_columns() {
    let nl = counter_netlist(3);
    let cycles = 20;
    let traces = 9;
    let mut batched = BatchedSequentialSimulator::new(&nl, traces).unwrap();
    let stimuli: Vec<PatternSet> = (0..cycles)
        .map(|c| PatternSet::random(1, traces, 0x51AB ^ c as u64))
        .collect();
    for stim in &stimuli {
        batched.step(stim);
    }
    for t in 0..traces {
        let sequence: Vec<Vec<bool>> = stimuli.iter().map(|s| s.pattern(t)).collect();
        let mut scalar = SequentialSimulator::new(&nl).unwrap();
        let snaps = scalar.step_n(&sequence).unwrap();
        assert_eq!(snaps.len(), cycles);
        assert_eq!(snaps.last().unwrap().state, batched.state_of_trace(t));
    }
}
