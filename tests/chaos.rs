//! Chaos suite: armed faultpoints (`DESIGN.md` §9) prove the resilience
//! properties end to end —
//!
//! * a panic anywhere in a circuit's pipeline loses only that circuit
//!   (the campaign records a failure and continues),
//! * a delay that blows past the deadline yields `Timeout`/degradation
//!   notes, never a hang,
//! * a failed checkpoint write degrades resume, not the run,
//! * a panic inside the campaign server's dispatch path loses only that
//!   job (the daemon keeps serving; zero lost jobs),
//! * a fault in the server's response path degrades the response body
//!   but still delivers exactly one terminal line per job.
//!
//! Faultpoint arming is process-global, so every test here serializes on
//! one mutex and disarms on the way out.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use htforge::atpg::PodemConfig;
use htforge::core::{InsertionConfig, InsertionError, InsertionFramework};
use htforge::obs::faultpoint::{arm, disarm_all, Action, CATALOG};
use htforge::obs::{Json, RunBudget};
use htforge_bench::campaign::{Campaign, CircuitOutcome};

static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("htforge_chaos_{tag}_{}", std::process::id()))
}

fn c17_config() -> InsertionConfig {
    InsertionConfig {
        theta: 0.30,
        num_vectors: 2_000,
        trigger_nodes: 2,
        num_instances: 2,
        seed: 42,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    }
}

fn run_c17() -> Result<Json, String> {
    let nl = htforge::circuits::load("c17").unwrap();
    InsertionFramework::new(c17_config())
        .run(&nl)
        .map(|o| Json::Num(o.infected.len() as f64))
        .map_err(|e| e.to_string())
}

#[test]
fn level_worker_panic_is_isolated_and_does_not_hang() {
    use htforge::sim::{KernelStrategy, PatternSet, SimProgram};

    let _gate = lock();
    disarm_all();
    let nl = htforge::circuits::load("c5315").unwrap();
    let prog = SimProgram::compile(&nl).unwrap();
    let ps = PatternSet::random(nl.inputs().len(), 63, 0x5315);
    let clean = prog.run_with_strategy(&ps, KernelStrategy::Level, 4);

    // A worker panics mid-level while three teammates are parked on the
    // same barrier. The poison protocol must wake everyone (no hang)
    // and surface the original payload, not a barrier deadlock.
    arm("sim.level_worker", Action::Panic);
    let started = Instant::now();
    let sabotaged = htforge::obs::isolate("level kernel", || {
        prog.run_with_strategy(&ps, KernelStrategy::Level, 4)
    });
    let elapsed = started.elapsed();
    disarm_all();
    let error = sabotaged.expect_err("armed level worker must fail");
    assert!(error.contains("injected fault"), "got: {error}");
    assert!(error.contains("sim.level_worker"), "got: {error}");
    assert!(
        elapsed < Duration::from_secs(10),
        "barrier hang: {elapsed:?}"
    );

    // Disarmed, the same program reruns bit-identically: the panic
    // poisoned nothing persistent.
    let retry = prog.run_with_strategy(&ps, KernelStrategy::Level, 4);
    for id in nl.node_ids() {
        assert_eq!(clean.words(id), retry.words(id));
    }
}

#[test]
fn delta_propagate_panic_is_isolated_and_session_recovers() {
    use htforge::sim::{PatternSet, SimProgram};

    let _gate = lock();
    disarm_all();
    let nl = htforge::circuits::load("c2670").unwrap();
    let prog = SimProgram::compile(&nl).unwrap();
    let mut sim = prog.delta_sim(PatternSet::random(nl.inputs().len(), 64, 0x2670));

    // The faultpoint fires at the top of propagate, before any session
    // state is mutated: an isolated panic must leave the session
    // reusable, not poisoned half-way through a sweep.
    arm("sim.delta_propagate", Action::Panic);
    let started = Instant::now();
    sim.set_input(3, 7, true);
    let sabotaged = htforge::obs::isolate("delta propagate", || sim.propagate());
    let elapsed = started.elapsed();
    disarm_all();
    let error = sabotaged.expect_err("armed delta propagate must fail");
    assert!(error.contains("injected fault"), "got: {error}");
    assert!(error.contains("sim.delta_propagate"), "got: {error}");
    assert!(elapsed < Duration::from_secs(10), "hang: {elapsed:?}");

    // Disarmed, the same session propagates the staged edit and matches
    // a fresh full run bit for bit.
    sim.propagate();
    let full = prog.run(sim.patterns());
    for id in nl.node_ids() {
        assert_eq!(sim.words(id), full.words(id), "node {}", nl.node(id).name());
    }
    assert!(sim.value(nl.inputs()[3], 7), "edit must have landed");
}

#[test]
fn every_faultpoint_name_arms_and_disarms() {
    let _gate = lock();
    for point in CATALOG {
        arm(point, Action::Delay(Duration::ZERO));
    }
    disarm_all();
}

#[test]
fn campaign_panic_loses_only_that_circuit() {
    let _gate = lock();
    disarm_all();
    let camp = Campaign::new("chaos1", temp_dir("campaign_panic"), true);

    let first = camp.run_circuit("a", run_c17);
    assert!(matches!(first, CircuitOutcome::Done { .. }), "{first:?}");

    arm("campaign.circuit", Action::Panic);
    let sabotaged = camp.run_circuit("b", run_c17);
    disarm_all();
    match sabotaged {
        CircuitOutcome::Failed { error } => {
            assert!(error.contains("injected fault"), "got: {error}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // The campaign is still functional after the panic: the next circuit
    // completes normally.
    let third = camp.run_circuit("c", run_c17);
    assert!(matches!(third, CircuitOutcome::Done { .. }), "{third:?}");
    camp.clear(&["a", "b", "c"]);
}

#[test]
fn deep_pipeline_panic_is_contained_by_the_campaign() {
    let _gate = lock();
    disarm_all();
    let camp = Campaign::new("chaos2", temp_dir("deep_panic"), true);
    // The panic fires inside the insertion phase, several crates below
    // the campaign loop.
    arm("insert.instance", Action::Panic);
    let out = camp.run_circuit("c17", run_c17);
    disarm_all();
    match out {
        CircuitOutcome::Failed { error } => {
            assert!(error.contains("insert.instance"), "got: {error}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert!(!camp.checkpoint_path("c17").exists());
    // Disarmed, the same circuit succeeds — the process is undamaged.
    let retry = camp.run_circuit("c17", run_c17);
    assert!(matches!(retry, CircuitOutcome::Done { .. }), "{retry:?}");
    camp.clear(&["c17"]);
}

#[test]
fn delay_past_deadline_times_out_instead_of_hanging() {
    let _gate = lock();
    disarm_all();
    // Every profiling chunk stalls 40 ms against a 10 ms deadline: the
    // rare-extraction phase must cut itself short and report Timeout.
    arm(
        "rare.extract_chunk",
        Action::Delay(Duration::from_millis(40)),
    );
    let nl = htforge::circuits::load("c17").unwrap();
    let started = Instant::now();
    let result = InsertionFramework::new(c17_config())
        .run_with_budget(&nl, &RunBudget::with_deadline(Duration::from_millis(10)));
    let elapsed = started.elapsed();
    disarm_all();
    // Which phase reports the timeout depends on where the budget dies:
    // c17's 2 000 vectors fit one profiling chunk, so the stalled chunk
    // may complete and leave the next phase to notice the spent budget.
    match result {
        Err(InsertionError::Timeout { phase }) => {
            assert!(
                [
                    "rare_extraction",
                    "compat_graph",
                    "clique_enumeration",
                    "insertion"
                ]
                .contains(&phase.as_str()),
                "unknown phase `{phase}`"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    // One stalled chunk is unavoidable (the delay is in-flight when the
    // deadline passes); what must not happen is sleeping through all of
    // them or hanging.
    assert!(elapsed < Duration::from_secs(2), "took {elapsed:?}");
}

#[test]
fn insertion_delay_degrades_to_fewer_instances() {
    let _gate = lock();
    disarm_all();
    // The earlier phases run free; each insertion stalls 60 ms. With a
    // generous-but-finite deadline the run finishes what it can and
    // reports the shortfall instead of hanging.
    let nl = htforge::circuits::load("c17").unwrap();
    let unhindered = InsertionFramework::new(InsertionConfig {
        num_instances: 8,
        ..c17_config()
    })
    .run(&nl)
    .expect("c17 insertion works");
    let attempted = unhindered.infected.len();

    arm("insert.instance", Action::Delay(Duration::from_millis(60)));
    let started = Instant::now();
    let result = InsertionFramework::new(InsertionConfig {
        num_instances: 8,
        ..c17_config()
    })
    .run_with_budget(&nl, &RunBudget::with_deadline(Duration::from_millis(400)));
    let elapsed = started.elapsed();
    disarm_all();
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
    match result {
        Ok(outcome) => {
            // Partial success must be explained by a degradation note.
            assert!(
                outcome
                    .degradations
                    .iter()
                    .any(|n| n.action == "fewer_instances")
                    || outcome.infected.len() == attempted,
                "unexplained shortfall: {:?}",
                outcome.degradations
            );
        }
        Err(InsertionError::Timeout { .. }) => {} // all budget gone pre-insertion
        Err(other) => panic!("unexpected error {other}"),
    }
}

#[test]
fn checkpoint_write_failure_degrades_resume_not_the_run() {
    let _gate = lock();
    disarm_all();
    let camp = Campaign::new("chaos3", temp_dir("ckpt_err"), true);
    arm("checkpoint.write", Action::Err);
    let out = camp.run_circuit("c17", || Ok(Json::Num(1.0)));
    disarm_all();
    // The circuit still completed...
    assert!(
        matches!(out, CircuitOutcome::Done { resumed: false, .. }),
        "{out:?}"
    );
    // ...but no checkpoint exists, so a resumed run recomputes.
    assert!(!camp.checkpoint_path("c17").exists());
    let camp2 = Campaign::new("chaos3", temp_dir("ckpt_err"), false);
    let rerun = camp2.run_circuit("c17", || Ok(Json::Num(2.0)));
    assert_eq!(
        rerun,
        CircuitOutcome::Done {
            payload: Json::Num(2.0),
            resumed: false
        }
    );
    camp2.clear(&["c17"]);
}

mod server_chaos {
    //! Faultpoints inside the campaign server (`server.dispatch`,
    //! `server.respond`, `server.progress`): the exactly-one-terminal-
    //! response-per-job invariant must hold through injected panics,
    //! response faults and progress-emission faults.

    use super::{lock, Action, Duration, Instant};
    use htforge::obs::faultpoint::{arm, disarm_all};
    use htforge::server::{
        CircuitSource, JobKind, JobParams, JobSpec, Request, Response, Server, ServerConfig,
    };

    fn sim_spec(id: &str) -> JobSpec {
        JobSpec {
            tenant: "chaos".into(),
            id: id.into(),
            kind: JobKind::Simulate,
            circuit: CircuitSource::Builtin("c17".into()),
            priority: 0,
            deadline_ms: None,
            params: JobParams {
                vectors: 256,
                ..JobParams::default()
            },
        }
    }

    fn next_result(rx: &std::sync::mpsc::Receiver<Response>) -> htforge::server::JobResult {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            assert!(Instant::now() < deadline, "no terminal response");
            if let Response::Result(r) = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("response stream")
            {
                return *r;
            }
        }
    }

    #[test]
    fn dispatch_panic_loses_only_that_job() {
        let _gate = lock();
        disarm_all();
        let (server, rx) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });

        // Armed: the job's dispatch panics inside the worker. `isolate`
        // turns it into a `failed` terminal response; the worker thread
        // survives to serve the next job.
        arm("server.dispatch", Action::Panic);
        server.handle(Request::Submit(Box::new(sim_spec("doomed"))));
        let doomed = next_result(&rx);
        disarm_all();
        assert_eq!(doomed.id, "doomed");
        assert_eq!(doomed.status.as_str(), "failed");
        let error = doomed.error.expect("failure must be explained");
        assert!(error.contains("injected fault"), "got: {error}");
        assert!(error.contains("server.dispatch"), "got: {error}");

        // Disarmed, the same (sole) worker completes jobs normally: the
        // panic poisoned neither the pool nor the cache.
        for id in ["after-1", "after-2"] {
            server.handle(Request::Submit(Box::new(sim_spec(id))));
            let r = next_result(&rx);
            assert_eq!(r.id, id);
            assert_eq!(r.status.as_str(), "done", "{:?}", r.error);
        }
        server.request_shutdown(false);
        let stats = server.join();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.finished(), stats.submitted, "a job went missing");
    }

    #[test]
    fn respond_fault_degrades_the_body_but_loses_no_job() {
        let _gate = lock();
        disarm_all();
        let (server, rx) = Server::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });

        // Every terminal response path faults. The fallback still
        // delivers one terminal line per job — same identity and
        // status, payload stripped, the degradation named.
        arm("server.respond", Action::Err);
        for id in ["a", "b", "c"] {
            server.handle(Request::Submit(Box::new(sim_spec(id))));
        }
        let mut degraded = 0;
        for _ in 0..3 {
            let r = next_result(&rx);
            assert_eq!(r.status.as_str(), "done");
            assert!(r.result.is_none(), "degraded response must strip payload");
            assert!(r.report.is_none());
            let error = r.error.expect("degradation must be named");
            assert!(error.contains("response degraded"), "got: {error}");
            degraded += 1;
        }
        disarm_all();
        assert_eq!(degraded, 3);

        // Even a *panic* inside the respond faultpoint is contained by
        // the fallback path.
        arm("server.respond", Action::Panic);
        server.handle(Request::Submit(Box::new(sim_spec("d"))));
        let r = next_result(&rx);
        disarm_all();
        assert_eq!(r.id, "d");
        assert!(r.error.expect("named").contains("response degraded"));

        // Disarmed, responses come back whole.
        server.handle(Request::Submit(Box::new(sim_spec("e"))));
        let r = next_result(&rx);
        assert_eq!(r.id, "e");
        assert!(r.result.is_some(), "healthy response must carry a payload");
        assert!(r.report.is_some());

        server.request_shutdown(false);
        let stats = server.join();
        assert_eq!(stats.degraded_responses, 4);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.finished(), stats.submitted, "a job went missing");
    }

    #[test]
    fn progress_fault_drops_frames_but_every_job_stays_terminal() {
        let _gate = lock();
        disarm_all();
        let (server, rx) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });

        // Every progress emission faults. Streaming is best-effort:
        // the frames vanish, but the exactly-one-terminal-response
        // invariant is untouchable — each long job still answers once.
        arm("server.progress", Action::Err);
        let long = |id: &str| {
            let mut spec = sim_spec(id);
            spec.params.vectors = 4_096;
            spec.params.repeat = 4;
            spec
        };
        for id in ["p1", "p2"] {
            server.handle(Request::Submit(Box::new(long(id))));
        }
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        while seen.len() < 2 {
            assert!(Instant::now() < deadline, "no terminal response");
            match rx
                .recv_timeout(Duration::from_secs(60))
                .expect("response stream")
            {
                Response::Result(r) => seen.push(*r),
                Response::Progress(p) => {
                    panic!("armed progress fault must drop frames, got {:?}", p.frame)
                }
                _ => {}
            }
        }
        disarm_all();
        for r in &seen {
            assert_eq!(r.status.as_str(), "done", "{:?}", r.error);
            // Offline reconstruction survives the dropped stream: the
            // terminal line still carries its trace and timeline.
            assert_eq!(r.trace.len(), 16);
            assert!(r.timeline.is_some());
        }

        // A panic inside the emission path is likewise contained.
        arm("server.progress", Action::Panic);
        server.handle(Request::Submit(Box::new(long("p3"))));
        let r = next_result(&rx);
        disarm_all();
        assert_eq!(r.id, "p3");
        assert_eq!(r.status.as_str(), "done", "{:?}", r.error);

        server.request_shutdown(false);
        let stats = server.join();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.finished(), stats.submitted, "a job went missing");
    }

    fn journal_config(tag: &str) -> htforge::server::JournalConfig {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "htforge_chaos_journal_{tag}_{}_{}.wal",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&path);
        htforge::server::JournalConfig::new(path)
    }

    #[test]
    fn journal_append_fault_keeps_every_job_terminal() {
        let _gate = lock();
        disarm_all();
        let jc = journal_config("append_err");
        let errors = htforge::obs::counter("server.journal_append_errors");
        let before = errors.get();
        let (server, rx) = Server::start(ServerConfig {
            workers: 1,
            journal: Some(jc.clone()),
            ..ServerConfig::default()
        });

        // Every journal append faults. Durability degrades (the crash
        // guarantee is gone until the fault clears) but the live path
        // must not: jobs are accepted, run, and answer exactly once.
        arm("server.journal_append", Action::Err);
        for id in ["j1", "j2", "j3"] {
            server.handle(Request::Submit(Box::new(sim_spec(id))));
        }
        let mut done = 0;
        for _ in 0..3 {
            let r = next_result(&rx);
            assert_eq!(r.status.as_str(), "done", "{:?}", r.error);
            done += 1;
        }
        disarm_all();
        assert_eq!(done, 3);
        assert!(
            errors.get() > before,
            "failed appends must be counted, not silent"
        );

        server.request_shutdown(false);
        let stats = server.join();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.finished(), stats.submitted, "a job went missing");
        let _ = std::fs::remove_file(&jc.path);
    }

    #[test]
    fn journal_replay_panic_restarts_on_a_fresh_segment() {
        let _gate = lock();
        disarm_all();
        let jc = journal_config("replay_panic");
        // Seed a real segment with an accepted-but-unfinished job, the
        // shape a crashed daemon leaves behind.
        {
            let (mut journal, _) = htforge::server::Journal::open(jc.clone()).unwrap();
            journal
                .append(&htforge::server::JournalEvent::Submit(Box::new(sim_spec(
                    "orphan",
                ))))
                .unwrap();
        }

        // Replay panics. Availability wins: the daemon starts on a
        // fresh segment, flags the failure, and still serves jobs.
        arm("server.journal_replay", Action::Panic);
        let (server, rx) = Server::start(ServerConfig {
            workers: 1,
            journal: Some(jc.clone()),
            ..ServerConfig::default()
        });
        disarm_all();
        let recovery = server.recovery();
        assert!(recovery.enabled);
        assert!(recovery.replay_failed, "injected panic must be flagged");
        assert_eq!(recovery.recovered_jobs, 0);

        server.handle(Request::Submit(Box::new(sim_spec("alive"))));
        let r = next_result(&rx);
        assert_eq!(r.id, "alive");
        assert_eq!(r.status.as_str(), "done", "{:?}", r.error);

        server.request_shutdown(false);
        let stats = server.join();
        assert_eq!(stats.completed, 1);
        let _ = std::fs::remove_file(&jc.path);
    }

    #[test]
    fn accept_fault_sheds_with_a_structured_rejection() {
        let _gate = lock();
        disarm_all();
        let (server, rx) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });

        // The accept path faults: the submit is shed with a structured
        // rejection — never a dropped connection, never a ghost job.
        arm("server.accept", Action::Err);
        server.handle(Request::Submit(Box::new(sim_spec("shed"))));
        let resp = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("response stream");
        disarm_all();
        match resp {
            Response::Reject {
                id, reason, error, ..
            } => {
                assert_eq!(id, "shed");
                assert_eq!(reason, "accept_fault");
                assert!(error.contains("injected"), "got: {error}");
            }
            other => panic!("expected a reject line, got {other:?}"),
        }

        // Disarmed, the same id is accepted — a rejected submit left
        // no tombstone behind.
        server.handle(Request::Submit(Box::new(sim_spec("shed"))));
        let r = next_result(&rx);
        assert_eq!(r.id, "shed");
        assert_eq!(r.status.as_str(), "done", "{:?}", r.error);

        server.request_shutdown(false);
        let stats = server.join();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.submitted, 1, "rejected submits must not count");
    }
}

#[test]
fn detect_campaign_survives_an_injected_grading_panic() {
    let _gate = lock();
    disarm_all();
    let nl = htforge::circuits::load("c17").unwrap();
    let outcome = InsertionFramework::new(c17_config())
        .run(&nl)
        .expect("c17 insertion works");
    let tests = htforge::sim::PatternSet::random(nl.inputs().len(), 256, 9);
    arm("detect.design", Action::Panic);
    let report = htforge::detect::evaluate_designs(&nl, &outcome.infected, &tests);
    disarm_all();
    // Every design's grading panicked; each is isolated to a negative
    // verdict rather than killing the evaluation.
    let report = report.expect("evaluation must survive");
    assert_eq!(report.total(), outcome.infected.len());
    assert_eq!(report.triggered(), 0);
    assert_eq!(report.detected(), 0);
}
