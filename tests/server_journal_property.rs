//! Property wall for the campaign server's write-ahead job journal.
//!
//! The journal is the durability backbone: whatever bytes a crash
//! leaves behind, replay must (a) never panic, (b) recover exactly the
//! valid prefix, and (c) never invent a job that was not submitted.
//!
//! * **Round trip.** Any event sequence appended through the API
//!   replays to exactly the accepted-but-not-terminal job set, in
//!   submit order.
//! * **Arbitrary truncation.** Cutting the segment at any byte — a
//!   torn write — recovers a prefix of the appended events; a second
//!   open of the repaired segment is clean (truncation converges).
//! * **Byte flips.** Corrupting any single byte is either harmless
//!   (the flip lands in the already-invalid tail) or detected by the
//!   frame checksum; recovered jobs are always a subset of submitted
//!   jobs, and the repaired segment accepts fresh appends.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use htforge::server::{
    archive_path, read_records, read_records_with_archive, CircuitSource, FsyncPolicy, JobKind,
    JobParams, JobSpec, JobStatus, Journal, JournalConfig, JournalEvent,
};

fn temp_journal(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "htforge_journal_prop_{tag}_{}_{}.wal",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn config(path: PathBuf) -> JournalConfig {
    JournalConfig {
        fsync: FsyncPolicy::Never, // property runs hammer the disk; durability is not under test here
        rotate_bytes: 0,
        ..JournalConfig::new(path)
    }
}

fn spec(tenant: &str, id: &str, vectors: usize) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        id: id.into(),
        kind: JobKind::Simulate,
        circuit: CircuitSource::Builtin("c17".into()),
        priority: 0,
        deadline_ms: None,
        params: JobParams {
            vectors: vectors.max(1),
            ..JobParams::default()
        },
    }
}

/// One job's journal life: submitted, maybe started, maybe terminal.
#[derive(Debug, Clone)]
struct JobScript {
    tenant_ix: u8,
    vectors: usize,
    started: bool,
    terminal: Option<u8>,
}

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];
const STATUSES: [&str; 4] = ["done", "failed", "cancelled", "timeout"];

fn job_script() -> impl Strategy<Value = JobScript> {
    (1usize..5_000, any::<bool>(), 0u8..8, 0u8..3).prop_map(
        |(vectors, started, terminal, tenant_ix)| JobScript {
            tenant_ix,
            vectors,
            started,
            // Half the jobs stay pending; the rest spread over the
            // four terminal statuses.
            terminal: (terminal < 4).then_some(terminal),
        },
    )
}

/// Appends the scripted events and returns the expected pending keys
/// (submit order) plus every submitted key.
fn write_script(journal: &mut Journal, script: &[JobScript]) -> (Vec<String>, Vec<String>) {
    let mut pending = Vec::new();
    let mut submitted = Vec::new();
    for (i, job) in script.iter().enumerate() {
        let tenant = TENANTS[job.tenant_ix as usize];
        let id = format!("job-{i}");
        let key = format!("{tenant}/{id}");
        journal
            .append(&JournalEvent::Submit(Box::new(spec(
                tenant,
                &id,
                job.vectors,
            ))))
            .unwrap();
        submitted.push(key.clone());
        if job.started {
            journal
                .append(&JournalEvent::Start {
                    tenant: tenant.into(),
                    id: id.clone(),
                })
                .unwrap();
        }
        match job.terminal {
            Some(s) => journal
                .append(&JournalEvent::Terminal {
                    tenant: tenant.into(),
                    id,
                    status: JobStatus::parse(STATUSES[s as usize]).unwrap(),
                })
                .unwrap(),
            None => pending.push(key),
        }
    }
    (pending, submitted)
}

fn keys(pending: &[JobSpec]) -> Vec<String> {
    pending
        .iter()
        .map(|s| format!("{}/{}", s.tenant, s.id))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replay_round_trips_the_pending_set(
        script in proptest::collection::vec(job_script(), 1..20),
    ) {
        let path = temp_journal("roundtrip");
        let expected = {
            let (mut journal, fresh) = Journal::open(config(path.clone())).unwrap();
            prop_assert_eq!(fresh.replayed_records, 0);
            write_script(&mut journal, &script).0
        };

        let (journal, recovery) = Journal::open(config(path.clone())).unwrap();
        prop_assert_eq!(recovery.truncated_bytes, 0);
        prop_assert_eq!(keys(&recovery.pending), expected);
        prop_assert_eq!(journal.pending(), recovery.pending.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn arbitrary_truncation_recovers_a_valid_prefix(
        script in proptest::collection::vec(job_script(), 1..16),
        cut_seed in 0usize..1_000_000,
    ) {
        let path = temp_journal("truncate");
        let submitted = {
            let (mut journal, _) = Journal::open(config(path.clone())).unwrap();
            write_script(&mut journal, &script).1
        };

        // Tear the file at an arbitrary byte, as a crash mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut_seed % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (_, recovery) = Journal::open(config(path.clone())).unwrap();
        // Prefix property: every recovered job was genuinely submitted,
        // in order.
        let got = keys(&recovery.pending);
        prop_assert!(got.iter().all(|k| submitted.contains(k)),
            "phantom job in {:?}", got);
        let mut last = None;
        for k in &got {
            let ix = submitted.iter().position(|s| s == k).unwrap();
            prop_assert!(last.is_none_or(|l| ix > l), "order broken: {:?}", got);
            last = Some(ix);
        }

        // Truncation converges: the repaired segment replays cleanly.
        let (_, second) = Journal::open(config(path.clone())).unwrap();
        prop_assert_eq!(second.truncated_bytes, 0, "repair must be stable");
        prop_assert_eq!(keys(&second.pending), got);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn byte_flips_never_panic_and_never_invent_jobs(
        script in proptest::collection::vec(job_script(), 1..12),
        victim_seed in 0usize..1_000_000,
        flip in 1u16..256,
    ) {
        let path = temp_journal("flip");
        let submitted = {
            let (mut journal, _) = Journal::open(config(path.clone())).unwrap();
            write_script(&mut journal, &script).1
        };

        let mut bytes = std::fs::read(&path).unwrap();
        let ix = victim_seed % bytes.len();
        bytes[ix] ^= u8::try_from(flip).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        let (mut journal, recovery) = Journal::open(config(path.clone())).unwrap();
        prop_assert!(
            keys(&recovery.pending).iter().all(|k| submitted.contains(k)),
            "corruption invented a job: {:?}", keys(&recovery.pending)
        );

        // The repaired segment is append-ready: a fresh submit lands
        // and survives the next replay.
        journal
            .append(&JournalEvent::Submit(Box::new(spec("post", "crash", 64))))
            .unwrap();
        drop(journal);
        let (_, after) = Journal::open(config(path.clone())).unwrap();
        prop_assert!(
            keys(&after.pending).contains(&"post/crash".to_owned()),
            "segment not writable after repair"
        );
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Compaction discards terminal records from the live segment; the
    // `.1` archive must preserve them so a dump reconstructs the
    // campaign. After exactly one rotation the archive is the complete
    // pre-compaction segment, so the combined dump carries a terminal
    // record for *every* scripted terminal; in general the live
    // records are a suffix of the combined dump and every record
    // validates against the journal schema.
    #[test]
    fn rotation_archives_the_discarded_terminal_history(
        script in proptest::collection::vec(job_script(), 8..40),
    ) {
        let path = temp_journal("archive");
        let mut cfg = config(path.clone());
        cfg.rotate_bytes = 6_000;
        let (mut journal, _) = Journal::open(cfg).unwrap();
        let (_, submitted) = write_script(&mut journal, &script);
        let rotations = journal.stats().rotations;
        drop(journal);

        let (live, torn_live) = read_records(&path).unwrap();
        let (all, torn_all) = read_records_with_archive(&path).unwrap();
        prop_assert_eq!(torn_live, 0);
        prop_assert_eq!(torn_all, 0);
        if rotations == 0 {
            prop_assert!(!archive_path(&path).exists());
        } else {
            prop_assert!(archive_path(&path).exists());
        }

        // Live records are a suffix of the combined dump.
        prop_assert!(all.len() >= live.len());
        let tail = &all[all.len() - live.len()..];
        for (a, l) in tail.iter().zip(&live) {
            prop_assert_eq!(a.compact(), l.compact());
        }

        // Every record (archived included) validates, and no submit
        // names a job that was never scripted.
        let mut dumped_terminals = Vec::new();
        for doc in &all {
            htforge::obs::validate_server_journal(doc).unwrap();
            let event = doc.get("event").and_then(|e| e.as_str()).unwrap();
            let tenant = doc.get("tenant").and_then(|t| t.as_str()).unwrap();
            let id = doc.get("id").and_then(|i| i.as_str()).unwrap();
            let key = format!("{tenant}/{id}");
            prop_assert!(submitted.contains(&key), "invented job `{key}`");
            if event == "terminal" {
                dumped_terminals.push(key);
            }
        }

        // One rotation: the archive is the entire pre-compaction
        // segment, so no terminal is lost to the compaction.
        if rotations == 1 {
            let mut expected: Vec<String> = script
                .iter()
                .enumerate()
                .filter(|(_, job)| job.terminal.is_some())
                .map(|(i, job)| format!("{}/job-{i}", TENANTS[job.tenant_ix as usize]))
                .collect();
            expected.sort();
            dumped_terminals.sort();
            prop_assert_eq!(dumped_terminals, expected);
        }

        let _ = std::fs::remove_file(archive_path(&path));
        let _ = std::fs::remove_file(&path);
    }
}
