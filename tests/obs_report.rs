//! End-to-end observability: run the insertion pipeline with the global
//! recorder enabled and check the resulting `RunReport` artifact — the
//! schema contract the CI `obs_validate` step and the benchmark binaries
//! rely on.

use htforge::atpg::PodemConfig;
use htforge::core::{InsertionConfig, InsertionFramework};
use htforge::obs::{self, Json, RunReport};

/// The pipeline phases the report must expose as spans (`DESIGN.md` §8).
const PHASES: [&str; 7] = [
    "insertion_pipeline",
    "rare_extraction",
    "podem",
    "compat_graph",
    "clique_enumeration",
    "insertion",
    "validation",
];

#[test]
fn pipeline_run_report_has_phases_and_podem_counters() {
    obs::global().enable();
    obs::global().reset();

    let golden = htforge::circuits::load("c17").unwrap();
    let outcome = InsertionFramework::new(InsertionConfig {
        theta: 0.30,
        num_vectors: 2_000,
        trigger_nodes: 2,
        num_instances: 1,
        seed: 7,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    })
    .run(&golden)
    .unwrap();
    assert!(!outcome.infected.is_empty());

    let report = RunReport::from_recorder("pipeline_c17", obs::global())
        .with_meta("circuit", Json::Str("c17".into()));

    let names = report.span_names();
    for phase in PHASES {
        assert!(
            names.contains(&phase),
            "missing span `{phase}` in {names:?}"
        );
    }

    // Phase spans nest under the pipeline root.
    let root = report
        .spans
        .iter()
        .find(|s| s.name == "insertion_pipeline")
        .unwrap();
    let rare = report
        .spans
        .iter()
        .find(|s| s.name == "rare_extraction")
        .unwrap();
    assert_eq!(rare.parent, Some(root.id));

    // PODEM search counters ride along (c17 may need zero backtracks, so
    // assert presence via faults and the handle's existence, not size).
    assert!(report.counter("podem.faults").unwrap_or(0) > 0);
    let _ = report.counter("podem.backtracks"); // zero counters are elided
    assert!(report.counter("rare.nodes").unwrap_or(0) > 0);
    assert!(report.counter("insertion.instances").unwrap_or(0) > 0);
    assert!(report.counter("sim.kernel_words").unwrap_or(0) > 0);

    // PhaseTimings is a view over the same spans: totals must agree in
    // spirit (every phase runs, so every duration is measured).
    assert!(outcome.timings.total().as_nanos() > 0);

    // The serialized artifact validates against the v1 schema.
    htforge::obs::validate_str(&report.pretty()).unwrap();
}
