//! `htforge` — facade crate for the Compatibility-Graph Assisted
//! Automatic Hardware Trojan Insertion Framework (DATE 2025
//! reproduction).
//!
//! This crate re-exports the whole toolkit under one roof:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`netlist`] | `htforge-netlist` | gate-level netlists, `.bench` I/O, area model |
//! | [`circuits`] | `htforge-circuits` | ISCAS-85/89 benchmark substitutes |
//! | [`sim`] | `htforge-sim` | bit-parallel simulation, rare nodes (Alg. 1) |
//! | [`atpg`] | `htforge-atpg` | PODEM, test cubes |
//! | [`scoap`] | `htforge-scoap` | SCOAP testability metrics |
//! | [`core`] | `htforge-core` | compatibility graph, cliques, insertion (Alg. 2–3) |
//! | [`baselines`] | `htforge-baselines` | random / RL / Trust-Hub-style inserters |
//! | [`detect`] | `htforge-detect` | Random / MERO / ND-ATPG detection, TC/DC |
//! | [`server`] | `htforge-server` | multi-tenant JSONL campaign daemon |
//! | [`obs`] | `htforge-obs` | spans, metrics, run reports (`HTFORGE_OBS`) |
//!
//! # Examples
//!
//! Insert a trojan into c17 and write the infected netlist:
//!
//! ```
//! use htforge::core::{InsertionConfig, InsertionFramework};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let golden = htforge::circuits::load("c17")?;
//! let config = InsertionConfig {
//!     theta: 0.30,
//!     num_vectors: 2_000,
//!     trigger_nodes: 2,
//!     num_instances: 1,
//!     podem: htforge::atpg::PodemConfig::justify(),
//!     ..InsertionConfig::default()
//! };
//! let outcome = InsertionFramework::new(config).run(&golden)?;
//! let infected = &outcome.infected[0];
//! let bench_text = htforge::netlist::bench::write(&infected.netlist);
//! assert!(bench_text.contains("ht0_payload"));
//! # Ok(())
//! # }
//! ```

pub use htforge_atpg as atpg;
pub use htforge_baselines as baselines;
pub use htforge_circuits as circuits;
pub use htforge_core as core;
pub use htforge_detect as detect;
pub use htforge_netlist as netlist;
pub use htforge_obs as obs;
pub use htforge_scoap as scoap;
pub use htforge_server as server;
pub use htforge_sim as sim;
