//! `htforge` — command-line front end to the toolkit.
//!
//! ```text
//! htforge stats  <netlist>                      structural statistics
//! htforge rare   <netlist> [--theta F] [--vectors N]
//! htforge insert <netlist> [--q N] [--n N] [--theta F] [--vectors N]
//!                [--payload flip|force0|force1] [--combined] [--out DIR]
//! htforge grade  <netlist> [--scheme random|mero|ndatpg] [--n N]
//! htforge detect <golden> --infected FILE[,FILE…]
//!                [--scheme random|mero|ndatpg] [--n N]
//! ```
//!
//! `<netlist>` is a `.bench` or `.v` file, or the name of a built-in
//! benchmark circuit (`c17`, `c2670`, …).

use std::error::Error;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use htforge::atpg::{all_faults, fault_simulate, PodemConfig};
use htforge::core::{InsertionConfig, InsertionFramework, PayloadKind};
use htforge::detect::{DetectionScheme, MeroDetection, NdAtpgDetection, RandomDetection};
use htforge::netlist::{bench, verilog, AreaModel, Netlist};
use htforge::obs::RunBudget;
use htforge::sim::{PatternSet, RareNodeExtractor};

const USAGE: &str = "\
usage: htforge <command> [options]

commands:
  stats  <netlist>                      structural statistics
  rare   <netlist> [--theta F] [--vectors N]
  insert <netlist> [--q N] [--n N] [--theta F] [--vectors N]
                   [--payload flip|force0|force1] [--combined] [--out DIR]
                   [--deadline SECS]
  grade  <netlist> [--scheme random|mero|ndatpg] [--n N]
  detect <golden> --infected FILE[,FILE...]
                  [--scheme random|mero|ndatpg] [--n N]

<netlist> is a .bench or .v file, or a built-in circuit name (c17, c2670,
c3540, c5315, c6288, s1423, s13207, s15850, s35932).

--deadline bounds the insert pipeline's wall clock; when it expires the
run returns whatever it finished (printing the degradations) instead of
hanging (see DESIGN.md §9).
";

struct Options {
    flags: Vec<(String, Option<String>)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it.next_if(|v| !v.starts_with("--")).map(ToOwned::to_owned);
                flags.push((name.to_owned(), value));
            } else {
                return Err(format!("unexpected positional argument `{arg}`"));
            }
        }
        Ok(Options { flags })
    }

    /// Rejects flags outside `allowed` — each subcommand validates its
    /// own vocabulary so a typo is a diagnostic, not silence.
    fn ensure_known(&self, allowed: &[&str]) -> Result<(), String> {
        for (name, _) in &self.flags {
            if !allowed.contains(&name.as_str()) {
                return Err(format!(
                    "unknown flag `--{name}` (supported: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("invalid value for --{name}: {e}")),
        }
    }
}

fn load_netlist(spec: &str) -> Result<Netlist, Box<dyn Error>> {
    let path = Path::new(spec);
    if path.exists() {
        let source = fs::read_to_string(path)?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("design")
            .to_owned();
        let nl = match path.extension().and_then(|e| e.to_str()) {
            Some("v") | Some("sv") => verilog::parse(&source, &stem)?,
            _ => bench::parse(&source, &stem)?,
        };
        Ok(nl)
    } else {
        Ok(htforge::circuits::load(spec)?)
    }
}

fn cmd_stats(spec: &str) -> Result<(), Box<dyn Error>> {
    let nl = load_netlist(spec)?;
    let stats = bench::stats(&nl);
    println!("{nl}");
    println!("  nodes: {}", stats.nodes);
    println!("  depth: {}", htforge::netlist::graph::depth(&nl)?);
    let hist = htforge::netlist::graph::gate_histogram(&nl);
    let mut mix = String::new();
    for (kind, count) in htforge::netlist::GateKind::ALL.iter().zip(hist) {
        if count > 0 {
            let _ = write!(mix, "{kind}:{count} ");
        }
    }
    println!("  gate mix: {mix}");
    println!(
        "  cell area (Nangate-45nm model): {:.1} µm²",
        AreaModel::nangate45().netlist_area(&nl)
    );
    Ok(())
}

fn cmd_rare(spec: &str, opts: &Options) -> Result<(), Box<dyn Error>> {
    let theta: f64 = opts.number("theta", 0.20)?;
    let vectors: usize = opts.number("vectors", 10_000)?;
    let nl = load_netlist(spec)?;
    let comb = if nl.dffs().is_empty() {
        nl.clone()
    } else {
        nl.scan_cut()
    };
    let patterns = PatternSet::random(comb.inputs().len(), vectors, 1);
    let rare = RareNodeExtractor::new(theta).extract(&comb, &patterns)?;
    println!(
        "{}: {} rare nodes of {} (θ = {theta}, |V| = {vectors})",
        nl.name(),
        rare.len(),
        comb.node_count()
    );
    let mut sorted: Vec<_> = rare.iter().collect();
    sorted.sort_by_key(|r| r.count);
    for r in sorted.iter().take(20) {
        println!(
            "  {} = {}  (p ≈ {:.4})",
            comb.node(r.node).name(),
            u8::from(r.rare_value),
            r.probability(rare.samples())
        );
    }
    if sorted.len() > 20 {
        println!("  … and {} more", sorted.len() - 20);
    }
    Ok(())
}

fn cmd_insert(spec: &str, opts: &Options) -> Result<(), Box<dyn Error>> {
    let q: usize = opts.number("q", 8)?;
    let n: usize = opts.number("n", 1)?;
    let theta: f64 = opts.number("theta", 0.20)?;
    let vectors: usize = opts.number("vectors", 10_000)?;
    let out_dir: PathBuf = opts.get("out").unwrap_or("htforge-out").into();
    let payload_kind = match opts.get("payload").unwrap_or("flip") {
        "flip" => PayloadKind::Flip,
        "force0" => PayloadKind::ForceZero,
        "force1" => PayloadKind::ForceOne,
        other => return Err(format!("unknown payload kind `{other}`").into()),
    };
    let budget = match opts.get("deadline") {
        None => RunBudget::unlimited(),
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|e| format!("invalid value for --deadline: {e}"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err("--deadline must be a non-negative number of seconds".into());
            }
            RunBudget::with_deadline(std::time::Duration::from_secs_f64(secs))
        }
    };

    let nl = load_netlist(spec)?;
    let framework = InsertionFramework::new(InsertionConfig {
        theta,
        num_vectors: vectors,
        trigger_nodes: q,
        num_instances: n,
        payload_kind,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    });

    fs::create_dir_all(&out_dir)?;
    if opts.has("combined") {
        let (combined, instances, degradations) =
            framework.run_combined_with_budget(&nl, &budget)?;
        for note in &degradations {
            println!("degraded {note}");
        }
        let path = out_dir.join(format!("{}_multi.bench", nl.name()));
        fs::write(&path, bench::write(&combined))?;
        println!(
            "wrote {} ({} trojans, {} added gates)",
            path.display(),
            instances.len(),
            combined.node_count() - nl.node_count()
        );
    } else {
        let outcome = framework.run_with_budget(&nl, &budget)?;
        for note in &outcome.degradations {
            println!("degraded {note}");
        }
        println!(
            "rare: {}, graph: {}v/{}e, time: {:?}",
            outcome.rare_nodes.len(),
            outcome.graph_stats.vertices,
            outcome.graph_stats.edges,
            outcome.timings.total()
        );
        for (i, design) in outcome.infected.iter().enumerate() {
            let path = out_dir.join(format!("{}_ht{i}.bench", nl.name()));
            fs::write(&path, bench::write(&design.netlist))?;
            println!(
                "wrote {} (q = {}, payload = {})",
                path.display(),
                design.trojan.trigger_node_count(),
                design.netlist.node(design.trojan.payload_net).name()
            );
        }
    }
    Ok(())
}

fn cmd_grade(spec: &str, opts: &Options) -> Result<(), Box<dyn Error>> {
    let n: usize = opts.number("n", 5)?;
    let nl = load_netlist(spec)?;
    let comb = if nl.dffs().is_empty() {
        nl.clone()
    } else {
        nl.scan_cut()
    };
    let patterns = PatternSet::random(comb.inputs().len(), 10_000, 1);
    let rare = RareNodeExtractor::new(0.20).extract(&comb, &patterns)?;

    let scheme: Box<dyn DetectionScheme> = match opts.get("scheme").unwrap_or("random") {
        "random" => Box::new(RandomDetection::new(10_000, 7)),
        "mero" => Box::new(MeroDetection::new(n, 2_500, 7)),
        "ndatpg" => Box::new(NdAtpgDetection::new(n, 7)),
        other => return Err(format!("unknown scheme `{other}`").into()),
    };
    let tests = scheme.generate_tests(&comb, &rare)?;
    let faults = all_faults(&comb);
    let report = fault_simulate(&comb, &faults, &tests)?;
    println!(
        "{}: {} tests from {} → stuck-at coverage {:.1}% ({}/{})",
        scheme.name(),
        tests.len(),
        nl.name(),
        report.coverage(),
        report.detected(),
        report.total()
    );
    Ok(())
}

fn cmd_detect(spec: &str, opts: &Options) -> Result<(), Box<dyn Error>> {
    use htforge::core::insert::TrojanInstance;
    use htforge::detect::evaluate_designs;

    let infected_list = opts
        .get("infected")
        .ok_or("detect requires --infected FILE[,FILE...]")?;
    let n: usize = opts.number("n", 5)?;
    let golden = load_netlist(spec)?;
    let comb = if golden.dffs().is_empty() {
        golden.clone()
    } else {
        golden.scan_cut()
    };
    let patterns = PatternSet::random(comb.inputs().len(), 10_000, 1);
    let rare = RareNodeExtractor::new(0.20).extract(&comb, &patterns)?;

    // Reconstruct minimal trojan metadata from the netlists: every
    // htforge-inserted payload gate is named `ht…_payload`; its trigger
    // output is the non-victim fan-in (last fan-in by construction).
    let mut designs = Vec::new();
    for path in infected_list.split(',') {
        let nl = load_netlist(path.trim())?;
        let payload_gates: Vec<_> = nl
            .iter()
            .filter(|(_, node)| node.name().starts_with("ht") && node.name().ends_with("_payload"))
            .map(|(id, _)| id)
            .collect();
        if payload_gates.is_empty() {
            return Err(format!(
                "{path}: no `ht*_payload` gate found — not an htforge-infected netlist"
            )
            .into());
        }
        for &pg in &payload_gates {
            let fanins = nl.node(pg).fanins();
            let [victim, .., trigger_output] = *fanins else {
                return Err(format!(
                    "{path}: payload gate `{}` has {} fan-in(s), expected victim + trigger",
                    nl.node(pg).name(),
                    fanins.len()
                )
                .into());
            };
            designs.push(htforge::core::InfectedDesign {
                netlist: nl.clone(),
                trojan: TrojanInstance {
                    trigger_inputs: Vec::new(),
                    trigger_gates: Vec::new(),
                    trigger_output,
                    payload_net: victim,
                    payload_kind: htforge::core::PayloadKind::Flip,
                    payload_gate: pg,
                    activation_cube: htforge::atpg::Cube::all_x(comb.inputs().len()),
                },
            });
        }
    }

    let schemes: Vec<Box<dyn DetectionScheme>> = match opts.get("scheme") {
        Some("random") => vec![Box::new(RandomDetection::new(10_000, 7))],
        Some("mero") => vec![Box::new(MeroDetection::new(n, 2_500, 7))],
        Some("ndatpg") => vec![Box::new(NdAtpgDetection::new(n, 7))],
        Some(other) => return Err(format!("unknown scheme `{other}`").into()),
        None => vec![
            Box::new(RandomDetection::new(10_000, 7)),
            Box::new(MeroDetection::new(n, 2_500, 7)),
            Box::new(NdAtpgDetection::new(n, 7)),
        ],
    };
    println!(
        "{} trojan instance(s) across the given netlists",
        designs.len()
    );
    for scheme in &schemes {
        let tests = scheme.generate_tests(&comb, &rare)?;
        let report = evaluate_designs(&golden, &designs, &tests)?;
        println!(
            "{:>8}: {} tests, TC {}/{} ({:.1}%), DC {}/{} ({:.1}%)",
            scheme.name(),
            tests.len(),
            report.triggered(),
            report.total(),
            report.trigger_coverage(),
            report.detected(),
            report.total(),
            report.detection_coverage(),
        );
    }
    Ok(())
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return Err("missing command".into());
        }
    };
    let (spec, flag_args) = match rest.split_first() {
        Some((s, flags)) if !s.starts_with("--") => (s.as_str(), flags),
        _ => {
            eprint!("{USAGE}");
            return Err("missing netlist argument".into());
        }
    };
    let opts = Options::parse(flag_args)?;
    match command {
        "stats" => {
            opts.ensure_known(&[])?;
            cmd_stats(spec)
        }
        "rare" => {
            opts.ensure_known(&["theta", "vectors"])?;
            cmd_rare(spec, &opts)
        }
        "insert" => {
            opts.ensure_known(&[
                "q", "n", "theta", "vectors", "payload", "combined", "out", "deadline",
            ])?;
            cmd_insert(spec, &opts)
        }
        "grade" => {
            opts.ensure_known(&["scheme", "n"])?;
            cmd_grade(spec, &opts)
        }
        "detect" => {
            opts.ensure_known(&["infected", "scheme", "n"])?;
            cmd_detect(spec, &opts)
        }
        other => {
            eprint!("{USAGE}");
            Err(format!("unknown command `{other}`").into())
        }
    }
}

fn main() -> ExitCode {
    // `HTFORGE_OBS=jsonl,summary,progress` lights up the recorder for
    // any subcommand (DESIGN.md §8); the guard flushes sinks on exit.
    let _obs = htforge::obs::init_from_env();
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
