//! `htforge-server` — the long-running campaign daemon (DESIGN.md §10).
//!
//! ```text
//! htforge-server [--workers N] [--tenant NAME]            stdio mode
//! htforge-server --socket PATH [--workers N] [--tenant NAME]
//! ```
//!
//! Stdio mode speaks the `htforge.job_request/v1` JSONL protocol on
//! stdin and streams `htforge.job_response/v1` lines on stdout; EOF is
//! a graceful drain shutdown. Socket mode binds a Unix socket and
//! serves connections one at a time over a shared compiled-circuit
//! cache; a client `shutdown` request also stops the daemon.

use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use htforge::server::{serve, serve_unix_socket, ProgramCache, ServerConfig};

const USAGE: &str = "\
usage: htforge-server [options]

options:
  --workers N     worker threads (default: one per core, max 8)
  --tenant NAME   tenant for requests that name none (default: default)
  --socket PATH   serve a Unix socket instead of stdin/stdout
  --no-progress   do not stream htforge.job_progress/v1 frames

Running jobs stream progress frames before their terminal response;
`status` and `metrics` requests introspect the live daemon. The
protocol is one JSON object per line; see DESIGN.md \u{a7}10 and the
README quickstart for a copy-pasteable session.
";

fn run() -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match arg.as_str() {
            "--workers" => {
                config.workers = value("workers")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
            }
            "--tenant" => config.default_tenant = value("tenant")?,
            "--socket" => socket = Some(PathBuf::from(value("socket")?)),
            "--no-progress" => config.progress = false,
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    match socket {
        Some(path) => serve_unix_socket(&path, &config).map_err(|e| e.to_string()),
        None => {
            let stdin = io::stdin();
            serve(
                BufReader::new(stdin.lock()),
                io::stdout(),
                config,
                Arc::new(ProgramCache::new()),
            )
            .map(|_| ())
            .map_err(|e| e.to_string())
        }
    }
}

fn main() -> ExitCode {
    let _obs = htforge::obs::init_from_env();
    // Bounded event ring: sinks and the `metrics` op can tail recent
    // events without ever blocking a worker's hot path.
    let _ = htforge::obs::global().install_ring(4096);
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
