//! `htforge-server` — the long-running campaign daemon (DESIGN.md §10).
//!
//! ```text
//! htforge-server [--workers N] [--tenant NAME]            stdio mode
//! htforge-server --socket PATH [--journal PATH] [--fsync always|batch:N|never]
//! htforge-server --dump-journal PATH                      inspect a segment
//! ```
//!
//! Stdio mode speaks the `htforge.job_request/v1` JSONL protocol on
//! stdin and streams `htforge.job_response/v1` lines on stdout; EOF is
//! a graceful drain shutdown. Socket mode binds a Unix socket and
//! serves **concurrent** connections over one shared scheduler and
//! compiled-circuit cache; a client `shutdown` request stops the
//! daemon.
//!
//! With `--journal` every accepted job is written ahead to an
//! append-only segment; after a crash the next start replays it and
//! re-runs accepted-but-unfinished jobs (at-least-once, deduplicated).
//! `SIGTERM`/`SIGINT` trigger a graceful drain: accepted jobs finish,
//! terminal responses flush, the final statistics are logged, and the
//! process exits 0.

use std::io::{self, BufReader};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use htforge::server::{
    read_records_with_archive, serve_cancellable, serve_unix_socket_with, FsyncPolicy,
    JournalConfig, ProgramCache, ServerConfig, StatsSnapshot,
};

const USAGE: &str = "\
usage: htforge-server [options]

options:
  --workers N         worker threads (default: one per core, max 8)
  --tenant NAME       tenant for requests that name none (default: default)
  --socket PATH       serve a Unix socket instead of stdin/stdout
  --no-progress       do not stream htforge.job_progress/v1 frames

durability:
  --journal PATH      write-ahead job journal; replayed on restart so
                      accepted jobs survive a crash
  --fsync POLICY      journal fsync policy: always, never, batch:N
                      (default batch:64)
  --dump-journal PATH print a segment's records as JSONL and exit
                      (each line is an htforge.server_journal/v1 doc;
                      a .1 pre-compaction archive is included, so the
                      dump covers the full campaign across rotations)

admission control (0 = unlimited):
  --max-queue N       bound on queued jobs; excess submits are shed
                      with a structured queue_full rejection
  --tenant-active N   per-tenant cap on queued+running jobs
  --tenant-rate R     per-tenant submit rate (jobs/sec token bucket)
  --tenant-burst N    token-bucket burst size (default: max(rate, 1))

Running jobs stream progress frames before their terminal response;
`status` and `metrics` requests introspect the live daemon (the
`metrics` body includes journal replay/recovery statistics). SIGTERM
and SIGINT drain gracefully. The protocol is one JSON object per line;
see DESIGN.md \u{a7}10 and the README quickstart for a copy-pasteable
session.
";

/// Flipped by the SIGTERM/SIGINT handler; every serve loop polls it.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGTERM (15) and SIGINT (2) via the libc
/// `signal` symbol the Rust runtime already links — no new dependency.
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    for sig in [2, 15] {
        unsafe {
            signal(sig, on_signal as *const () as usize);
        }
    }
}

fn dump_journal(path: &Path) -> Result<(), String> {
    let (records, _) =
        read_records_with_archive(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for doc in &records {
        println!("{}", doc.compact());
    }
    eprintln!(
        "[htforge-server] {}: {} valid record{}",
        path.display(),
        records.len(),
        if records.len() == 1 { "" } else { "s" }
    );
    Ok(())
}

fn log_outcome(mode: &str, stats: &StatsSnapshot) {
    eprintln!(
        "[htforge-server] {mode}: drained {} job{} (completed {}, failed {}, \
         cancelled {}, timeout {}), rejected {}",
        stats.finished(),
        if stats.finished() == 1 { "" } else { "s" },
        stats.completed,
        stats.failed,
        stats.cancelled,
        stats.timeout,
        stats.rejected,
    );
}

fn run() -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match arg.as_str() {
            "--workers" => {
                config.workers = value("workers")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
            }
            "--tenant" => config.default_tenant = value("tenant")?,
            "--socket" => socket = Some(PathBuf::from(value("socket")?)),
            "--no-progress" => config.progress = false,
            "--journal" => journal_path = Some(PathBuf::from(value("journal")?)),
            "--fsync" => {
                fsync = Some(
                    FsyncPolicy::parse(&value("fsync")?)
                        .map_err(|e| format!("invalid --fsync: {e}"))?,
                );
            }
            "--dump-journal" => return dump_journal(&PathBuf::from(value("dump-journal")?)),
            "--max-queue" => {
                config.admission.max_queue_depth = value("max-queue")?
                    .parse()
                    .map_err(|e| format!("invalid --max-queue: {e}"))?;
            }
            "--tenant-active" => {
                config.admission.tenant_max_active = value("tenant-active")?
                    .parse()
                    .map_err(|e| format!("invalid --tenant-active: {e}"))?;
            }
            "--tenant-rate" => {
                config.admission.tenant_rate_per_sec = value("tenant-rate")?
                    .parse()
                    .map_err(|e| format!("invalid --tenant-rate: {e}"))?;
            }
            "--tenant-burst" => {
                config.admission.tenant_burst = value("tenant-burst")?
                    .parse()
                    .map_err(|e| format!("invalid --tenant-burst: {e}"))?;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if let Some(path) = journal_path {
        let mut jc = JournalConfig::new(path);
        if let Some(policy) = fsync {
            jc.fsync = policy;
        }
        config.journal = Some(jc);
    } else if fsync.is_some() {
        return Err("--fsync requires --journal".into());
    }

    install_signal_handlers();
    let stop = Arc::new(AtomicBool::new(false));
    // Bridge the process-wide signal flag into the serve loops' flag
    // (they poll every ~50 ms anyway, so a tiny relay thread is the
    // simplest std-only wiring).
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            if STOP.load(Ordering::Relaxed) {
                stop.store(true, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    match socket {
        Some(path) => {
            let stats = serve_unix_socket_with(&path, &config, Arc::new(ProgramCache::new()), stop)
                .map_err(|e| e.to_string())?;
            log_outcome("socket daemon", &stats);
            Ok(())
        }
        None => {
            let summary = serve_cancellable(
                BufReader::new(io::stdin()),
                io::stdout(),
                config,
                Arc::new(ProgramCache::new()),
                stop,
            )
            .map_err(|e| e.to_string())?;
            log_outcome("stdio session", &summary.stats);
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let _obs = htforge::obs::init_from_env();
    // Bounded event ring: sinks and the `metrics` op can tail recent
    // events without ever blocking a worker's hot path.
    let _ = htforge::obs::global().install_ring(4096);
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
