//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the (small) slice of the `rand` 0.8 API that htforge
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the repo only relies on
//! *reproducibility* (same seed ⇒ same stream, on every platform) and on
//! statistical uniformity, both of which hold here.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types that support uniform sampling from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64, far below anything the
                // simulation statistics can resolve.
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// ChaCha12-based `StdRng`; same reproducibility guarantees, not the
    /// same stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices (the `shuffle`/`choose` subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
        for _ in 0..100 {
            let v = rng.gen_range(5i32..8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn uniform_words_are_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let ones: u32 = (0..64).map(|_| rng.gen::<u64>().count_ones()).sum();
        // 4096 bits, expect ~2048 ones.
        assert!((1_800..2_300).contains(&ones), "ones = {ones}");
    }
}
