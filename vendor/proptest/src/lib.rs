//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of the proptest 1.x API the htforge test suites
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, `any::<T>()`,
//! `Just`, integer-range strategies, [`collection::vec`], the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` family.
//!
//! Semantics: each property runs for `ProptestConfig::cases` randomly
//! generated inputs, seeded deterministically from the test name, so runs
//! are reproducible. There is **no shrinking** — a failing case reports
//! the case number and assertion message only.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};

pub mod test_runner {
    //! Runner configuration and error types.

    use std::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by a `prop_assert!` inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

use test_runner::ProptestConfig;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy box.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

trait DynStrategy {
    type Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn new_value_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut StdRng) -> V {
        self.0.new_value_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy producing a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Marker for types `any::<T>()` can generate (uniform sampling).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform strategy over every value of `T`.
#[must_use]
pub fn any<T: Standard>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

// Tuples of strategies are strategies over tuples of values, drawn
// left to right (mirrors proptest 1.x).
macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut StdRng) -> V {
        let k = rng.gen_range(0..self.options.len());
        self.options[k].new_value(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Range, Rng, StdRng, Strategy};

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG: seeded from the test's module path and
/// name so every property has an independent, reproducible stream.
#[must_use]
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Runs `body` for `config.cases` generated cases (used by the
/// [`proptest!`] expansion; not part of the public proptest API).
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng, u32) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = rng_for_test(name);
    for case in 0..config.cases {
        if let Err(e) = body(&mut rng, case) {
            panic!(
                "property `{name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Declares property tests: each `fn` runs its body over many generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($config); $($rest)* }
    };
    (@run ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng, _case| {
                        $(let $arg = ($strategy).new_value(rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @run ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Asserts a condition inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        #[allow(unused_imports)]
        use $crate::Strategy as _;
        $crate::Union::new(vec![$(($strategy).boxed()),+])
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn ranges_and_any_generate_in_bounds() {
        let mut rng = super::rng_for_test("self_test");
        for _ in 0..100 {
            let v = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let _: u64 = any::<u64>().new_value(&mut rng);
            let b: bool = any::<bool>().new_value(&mut rng);
            let _ = b;
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = super::rng_for_test("vec_test");
        for _ in 0..50 {
            let v = super::collection::vec(any::<u8>(), 5..12).new_value(&mut rng);
            assert!((5..12).contains(&v.len()));
            let exact = super::collection::vec(any::<bool>(), 7usize).new_value(&mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated values satisfy their strategies.
        #[test]
        fn macro_round_trip(x in 0usize..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn oneof_picks_arms(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        super::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng, _case| Err(TestCaseError::fail("boom")),
        );
    }
}
