//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the subset of the Criterion 0.5 API the `htforge-bench`
//! benches use — `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple but honest
//! wall-clock measurement loop: warm-up, then timed batches, reporting
//! median time per iteration and derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark (elements or bytes per
/// iteration); turns per-iteration time into a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of the parameter display alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measures one closure: passed to the closures given to
/// [`BenchmarkGroup::bench_function`] and friends.
pub struct Bencher {
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    sample: f64,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes a
        // measurable slice of time.
        let mut iters: u64 = 1;
        let calibration_floor = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }

        // Measurement: `sample_size` batches, bounded by the group's
        // measurement budget.
        let deadline = Instant::now() + self.measurement_time;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(3) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
            if Instant::now() > deadline && samples.len() >= 3 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.sample = samples[samples.len() / 2];
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn format_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.3} G{unit}/s", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.3} M{unit}/s", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.3} K{unit}/s", per_second / 1e3)
    } else {
        format!("{per_second:.1} {unit}/s")
    }
}

/// A named group of related benchmarks sharing throughput/sample
/// configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            sample: f64::NAN,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let time = bencher.sample;
        let mut line = format!("{}/{id}: {}", self.name, format_time(time));
        match self.throughput {
            Some(Throughput::Elements(n)) if time > 0.0 => {
                line += &format!(" ({})", format_rate(n as f64 / time, "elem"));
            }
            Some(Throughput::Bytes(n)) if time > 0.0 => {
                line += &format!(" ({})", format_rate(n as f64 / time, "B"));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored, so
    /// `cargo bench -- <filter>` does not error).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let group = self.benchmark_group("bench");
        let mut bencher = Bencher {
            sample: f64::NAN,
            sample_size: group.sample_size,
            measurement_time: group.measurement_time,
        };
        f(&mut bencher);
        println!("{id}: {}", format_time(bencher.sample));
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
