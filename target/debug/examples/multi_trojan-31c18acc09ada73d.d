/root/repo/target/debug/examples/multi_trojan-31c18acc09ada73d.d: examples/multi_trojan.rs

/root/repo/target/debug/examples/multi_trojan-31c18acc09ada73d: examples/multi_trojan.rs

examples/multi_trojan.rs:
