/root/repo/target/debug/examples/quickstart-fb0bdbe99e452637.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fb0bdbe99e452637: examples/quickstart.rs

examples/quickstart.rs:
