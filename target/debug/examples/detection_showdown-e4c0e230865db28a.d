/root/repo/target/debug/examples/detection_showdown-e4c0e230865db28a.d: examples/detection_showdown.rs

/root/repo/target/debug/examples/detection_showdown-e4c0e230865db28a: examples/detection_showdown.rs

examples/detection_showdown.rs:
