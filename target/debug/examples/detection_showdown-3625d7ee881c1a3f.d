/root/repo/target/debug/examples/detection_showdown-3625d7ee881c1a3f.d: examples/detection_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libdetection_showdown-3625d7ee881c1a3f.rmeta: examples/detection_showdown.rs Cargo.toml

examples/detection_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
