/root/repo/target/debug/examples/benchmark_campaign-11b45e12e1f2038a.d: examples/benchmark_campaign.rs

/root/repo/target/debug/examples/benchmark_campaign-11b45e12e1f2038a: examples/benchmark_campaign.rs

examples/benchmark_campaign.rs:
