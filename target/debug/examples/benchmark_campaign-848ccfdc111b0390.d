/root/repo/target/debug/examples/benchmark_campaign-848ccfdc111b0390.d: examples/benchmark_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libbenchmark_campaign-848ccfdc111b0390.rmeta: examples/benchmark_campaign.rs Cargo.toml

examples/benchmark_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
