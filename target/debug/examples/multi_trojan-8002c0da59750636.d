/root/repo/target/debug/examples/multi_trojan-8002c0da59750636.d: examples/multi_trojan.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_trojan-8002c0da59750636.rmeta: examples/multi_trojan.rs Cargo.toml

examples/multi_trojan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
