/root/repo/target/debug/deps/htforge-27802c28b9853e3e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge-27802c28b9853e3e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
