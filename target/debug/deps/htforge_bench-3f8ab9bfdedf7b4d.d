/root/repo/target/debug/deps/htforge_bench-3f8ab9bfdedf7b4d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/htforge_bench-3f8ab9bfdedf7b4d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
