/root/repo/target/debug/deps/htforge_baselines-d2cf0107bfd450f8.d: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_baselines-d2cf0107bfd450f8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/random.rs:
crates/baselines/src/rl.rs:
crates/baselines/src/trusthub.rs:
crates/baselines/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
