/root/repo/target/debug/deps/clique_enum-a38ef6becf380a62.d: crates/bench/benches/clique_enum.rs Cargo.toml

/root/repo/target/debug/deps/libclique_enum-a38ef6becf380a62.rmeta: crates/bench/benches/clique_enum.rs Cargo.toml

crates/bench/benches/clique_enum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
