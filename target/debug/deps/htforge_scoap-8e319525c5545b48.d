/root/repo/target/debug/deps/htforge_scoap-8e319525c5545b48.d: crates/scoap/src/lib.rs

/root/repo/target/debug/deps/libhtforge_scoap-8e319525c5545b48.rlib: crates/scoap/src/lib.rs

/root/repo/target/debug/deps/libhtforge_scoap-8e319525c5545b48.rmeta: crates/scoap/src/lib.rs

crates/scoap/src/lib.rs:
