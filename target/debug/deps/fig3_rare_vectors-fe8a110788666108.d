/root/repo/target/debug/deps/fig3_rare_vectors-fe8a110788666108.d: crates/bench/src/bin/fig3_rare_vectors.rs

/root/repo/target/debug/deps/fig3_rare_vectors-fe8a110788666108: crates/bench/src/bin/fig3_rare_vectors.rs

crates/bench/src/bin/fig3_rare_vectors.rs:
