/root/repo/target/debug/deps/htforge_sim-97006b73c074895b.d: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

/root/repo/target/debug/deps/htforge_sim-97006b73c074895b: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

crates/sim/src/lib.rs:
crates/sim/src/patterns.rs:
crates/sim/src/prob.rs:
crates/sim/src/program.rs:
crates/sim/src/rare.rs:
crates/sim/src/sequential.rs:
crates/sim/src/simulator.rs:
crates/sim/src/tri.rs:
