/root/repo/target/debug/deps/fig3_rare_vectors-80a87cc40e01734d.d: crates/bench/src/bin/fig3_rare_vectors.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_rare_vectors-80a87cc40e01734d.rmeta: crates/bench/src/bin/fig3_rare_vectors.rs Cargo.toml

crates/bench/src/bin/fig3_rare_vectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
