/root/repo/target/debug/deps/htforge_circuits-1c89d55f7520783f.d: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

/root/repo/target/debug/deps/htforge_circuits-1c89d55f7520783f: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

crates/circuits/src/lib.rs:
crates/circuits/src/iscas.rs:
crates/circuits/src/multiplier.rs:
crates/circuits/src/synth.rs:
