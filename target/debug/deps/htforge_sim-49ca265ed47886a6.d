/root/repo/target/debug/deps/htforge_sim-49ca265ed47886a6.d: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_sim-49ca265ed47886a6.rmeta: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/patterns.rs:
crates/sim/src/prob.rs:
crates/sim/src/program.rs:
crates/sim/src/rare.rs:
crates/sim/src/sequential.rs:
crates/sim/src/simulator.rs:
crates/sim/src/tri.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
