/root/repo/target/debug/deps/htforge_core-9a5b06a831db043c.d: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

/root/repo/target/debug/deps/htforge_core-9a5b06a831db043c: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

crates/core/src/lib.rs:
crates/core/src/clique.rs:
crates/core/src/compat.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/insert.rs:
crates/core/src/payload.rs:
crates/core/src/sequential_trigger.rs:
crates/core/src/trigger.rs:
