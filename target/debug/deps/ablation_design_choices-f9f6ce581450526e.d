/root/repo/target/debug/deps/ablation_design_choices-f9f6ce581450526e.d: crates/bench/src/bin/ablation_design_choices.rs Cargo.toml

/root/repo/target/debug/deps/libablation_design_choices-f9f6ce581450526e.rmeta: crates/bench/src/bin/ablation_design_choices.rs Cargo.toml

crates/bench/src/bin/ablation_design_choices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
