/root/repo/target/debug/deps/rand-b160d8432418965a.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b160d8432418965a.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b160d8432418965a.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
