/root/repo/target/debug/deps/table2_detection-0d7be5005642b16d.d: crates/bench/src/bin/table2_detection.rs

/root/repo/target/debug/deps/table2_detection-0d7be5005642b16d: crates/bench/src/bin/table2_detection.rs

crates/bench/src/bin/table2_detection.rs:
