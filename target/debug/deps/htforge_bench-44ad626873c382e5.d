/root/repo/target/debug/deps/htforge_bench-44ad626873c382e5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhtforge_bench-44ad626873c382e5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhtforge_bench-44ad626873c382e5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
