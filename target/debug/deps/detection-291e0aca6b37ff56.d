/root/repo/target/debug/deps/detection-291e0aca6b37ff56.d: crates/bench/benches/detection.rs Cargo.toml

/root/repo/target/debug/deps/libdetection-291e0aca6b37ff56.rmeta: crates/bench/benches/detection.rs Cargo.toml

crates/bench/benches/detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
