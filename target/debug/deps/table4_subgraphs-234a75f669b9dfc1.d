/root/repo/target/debug/deps/table4_subgraphs-234a75f669b9dfc1.d: crates/bench/src/bin/table4_subgraphs.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_subgraphs-234a75f669b9dfc1.rmeta: crates/bench/src/bin/table4_subgraphs.rs Cargo.toml

crates/bench/src/bin/table4_subgraphs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
