/root/repo/target/debug/deps/htforge_baselines-aafadb21a8fe14fe.d: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

/root/repo/target/debug/deps/libhtforge_baselines-aafadb21a8fe14fe.rlib: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

/root/repo/target/debug/deps/libhtforge_baselines-aafadb21a8fe14fe.rmeta: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

crates/baselines/src/lib.rs:
crates/baselines/src/random.rs:
crates/baselines/src/rl.rs:
crates/baselines/src/trusthub.rs:
crates/baselines/src/validate.rs:
