/root/repo/target/debug/deps/table3_insertion_time-475345a1a5e01d8e.d: crates/bench/src/bin/table3_insertion_time.rs

/root/repo/target/debug/deps/table3_insertion_time-475345a1a5e01d8e: crates/bench/src/bin/table3_insertion_time.rs

crates/bench/src/bin/table3_insertion_time.rs:
