/root/repo/target/debug/deps/proptest-3fb83e4f67ff90f0.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-3fb83e4f67ff90f0: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
