/root/repo/target/debug/deps/table5_area-d9e79a67eb6a1353.d: crates/bench/src/bin/table5_area.rs

/root/repo/target/debug/deps/table5_area-d9e79a67eb6a1353: crates/bench/src/bin/table5_area.rs

crates/bench/src/bin/table5_area.rs:
