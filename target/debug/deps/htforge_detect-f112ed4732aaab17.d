/root/repo/target/debug/deps/htforge_detect-f112ed4732aaab17.d: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

/root/repo/target/debug/deps/htforge_detect-f112ed4732aaab17: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

crates/detect/src/lib.rs:
crates/detect/src/coverage.rs:
crates/detect/src/mero.rs:
crates/detect/src/ndatpg.rs:
crates/detect/src/random.rs:
crates/detect/src/scheme.rs:
