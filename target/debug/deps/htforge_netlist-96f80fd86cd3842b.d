/root/repo/target/debug/deps/htforge_netlist-96f80fd86cd3842b.d: crates/netlist/src/lib.rs crates/netlist/src/area.rs crates/netlist/src/bench.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/opt.rs crates/netlist/src/verilog.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_netlist-96f80fd86cd3842b.rmeta: crates/netlist/src/lib.rs crates/netlist/src/area.rs crates/netlist/src/bench.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/opt.rs crates/netlist/src/verilog.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/area.rs:
crates/netlist/src/bench.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/opt.rs:
crates/netlist/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
