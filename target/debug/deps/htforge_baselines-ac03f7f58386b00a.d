/root/repo/target/debug/deps/htforge_baselines-ac03f7f58386b00a.d: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

/root/repo/target/debug/deps/htforge_baselines-ac03f7f58386b00a: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

crates/baselines/src/lib.rs:
crates/baselines/src/random.rs:
crates/baselines/src/rl.rs:
crates/baselines/src/trusthub.rs:
crates/baselines/src/validate.rs:
