/root/repo/target/debug/deps/htforge_netlist-bd2332da92a9f421.d: crates/netlist/src/lib.rs crates/netlist/src/area.rs crates/netlist/src/bench.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/opt.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/htforge_netlist-bd2332da92a9f421: crates/netlist/src/lib.rs crates/netlist/src/area.rs crates/netlist/src/bench.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/opt.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/area.rs:
crates/netlist/src/bench.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/opt.rs:
crates/netlist/src/verilog.rs:
