/root/repo/target/debug/deps/table2_detection-cd15770d49ddd9e3.d: crates/bench/src/bin/table2_detection.rs

/root/repo/target/debug/deps/table2_detection-cd15770d49ddd9e3: crates/bench/src/bin/table2_detection.rs

crates/bench/src/bin/table2_detection.rs:
