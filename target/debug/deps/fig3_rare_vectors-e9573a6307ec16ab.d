/root/repo/target/debug/deps/fig3_rare_vectors-e9573a6307ec16ab.d: crates/bench/src/bin/fig3_rare_vectors.rs

/root/repo/target/debug/deps/fig3_rare_vectors-e9573a6307ec16ab: crates/bench/src/bin/fig3_rare_vectors.rs

crates/bench/src/bin/fig3_rare_vectors.rs:
