/root/repo/target/debug/deps/podem_oracle-ab979fe8c164dc43.d: crates/atpg/tests/podem_oracle.rs

/root/repo/target/debug/deps/podem_oracle-ab979fe8c164dc43: crates/atpg/tests/podem_oracle.rs

crates/atpg/tests/podem_oracle.rs:
