/root/repo/target/debug/deps/htforge-3035c556a1ab20d9.d: src/lib.rs

/root/repo/target/debug/deps/htforge-3035c556a1ab20d9: src/lib.rs

src/lib.rs:
