/root/repo/target/debug/deps/table5_area-2adfae46fc562c16.d: crates/bench/src/bin/table5_area.rs

/root/repo/target/debug/deps/table5_area-2adfae46fc562c16: crates/bench/src/bin/table5_area.rs

crates/bench/src/bin/table5_area.rs:
