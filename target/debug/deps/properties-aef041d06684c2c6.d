/root/repo/target/debug/deps/properties-aef041d06684c2c6.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-aef041d06684c2c6.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
