/root/repo/target/debug/deps/rand-6b6799c6c3383a88.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-6b6799c6c3383a88: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
