/root/repo/target/debug/deps/properties-b3676781edceda77.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b3676781edceda77: tests/properties.rs

tests/properties.rs:
