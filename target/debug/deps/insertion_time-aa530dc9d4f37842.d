/root/repo/target/debug/deps/insertion_time-aa530dc9d4f37842.d: crates/bench/benches/insertion_time.rs Cargo.toml

/root/repo/target/debug/deps/libinsertion_time-aa530dc9d4f37842.rmeta: crates/bench/benches/insertion_time.rs Cargo.toml

crates/bench/benches/insertion_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
