/root/repo/target/debug/deps/htforge_atpg-bb2ae4c5b869e8ba.d: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

/root/repo/target/debug/deps/libhtforge_atpg-bb2ae4c5b869e8ba.rlib: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

/root/repo/target/debug/deps/libhtforge_atpg-bb2ae4c5b869e8ba.rmeta: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

crates/atpg/src/lib.rs:
crates/atpg/src/cube.rs:
crates/atpg/src/fault.rs:
crates/atpg/src/fault_sim.rs:
crates/atpg/src/ndetect.rs:
crates/atpg/src/podem.rs:
