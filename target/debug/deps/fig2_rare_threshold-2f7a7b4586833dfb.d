/root/repo/target/debug/deps/fig2_rare_threshold-2f7a7b4586833dfb.d: crates/bench/src/bin/fig2_rare_threshold.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_rare_threshold-2f7a7b4586833dfb.rmeta: crates/bench/src/bin/fig2_rare_threshold.rs Cargo.toml

crates/bench/src/bin/fig2_rare_threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
