/root/repo/target/debug/deps/htforge_core-8349e50bcbeaf181.d: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

/root/repo/target/debug/deps/libhtforge_core-8349e50bcbeaf181.rlib: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

/root/repo/target/debug/deps/libhtforge_core-8349e50bcbeaf181.rmeta: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

crates/core/src/lib.rs:
crates/core/src/clique.rs:
crates/core/src/compat.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/insert.rs:
crates/core/src/payload.rs:
crates/core/src/sequential_trigger.rs:
crates/core/src/trigger.rs:
