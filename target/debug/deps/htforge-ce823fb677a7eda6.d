/root/repo/target/debug/deps/htforge-ce823fb677a7eda6.d: src/bin/htforge.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge-ce823fb677a7eda6.rmeta: src/bin/htforge.rs Cargo.toml

src/bin/htforge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
