/root/repo/target/debug/deps/differential_sim-e4a24cdc4f27f047.d: tests/differential_sim.rs

/root/repo/target/debug/deps/differential_sim-e4a24cdc4f27f047: tests/differential_sim.rs

tests/differential_sim.rs:
