/root/repo/target/debug/deps/sim_oracle-de4d9e0b92d0250c.d: crates/sim/tests/sim_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libsim_oracle-de4d9e0b92d0250c.rmeta: crates/sim/tests/sim_oracle.rs Cargo.toml

crates/sim/tests/sim_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
