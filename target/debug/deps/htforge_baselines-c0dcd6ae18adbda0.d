/root/repo/target/debug/deps/htforge_baselines-c0dcd6ae18adbda0.d: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_baselines-c0dcd6ae18adbda0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/random.rs:
crates/baselines/src/rl.rs:
crates/baselines/src/trusthub.rs:
crates/baselines/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
