/root/repo/target/debug/deps/proptest-344090cd6a0e3c1c.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-344090cd6a0e3c1c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-344090cd6a0e3c1c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
