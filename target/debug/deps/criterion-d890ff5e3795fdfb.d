/root/repo/target/debug/deps/criterion-d890ff5e3795fdfb.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-d890ff5e3795fdfb.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
