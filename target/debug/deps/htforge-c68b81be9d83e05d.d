/root/repo/target/debug/deps/htforge-c68b81be9d83e05d.d: src/bin/htforge.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge-c68b81be9d83e05d.rmeta: src/bin/htforge.rs Cargo.toml

src/bin/htforge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
