/root/repo/target/debug/deps/compatibility_claims-6ca9414a2504d6af.d: tests/compatibility_claims.rs

/root/repo/target/debug/deps/compatibility_claims-6ca9414a2504d6af: tests/compatibility_claims.rs

tests/compatibility_claims.rs:
