/root/repo/target/debug/deps/podem_oracle-ea5ee1c47b6a1539.d: crates/atpg/tests/podem_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libpodem_oracle-ea5ee1c47b6a1539.rmeta: crates/atpg/tests/podem_oracle.rs Cargo.toml

crates/atpg/tests/podem_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
