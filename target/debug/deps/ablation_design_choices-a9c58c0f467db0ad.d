/root/repo/target/debug/deps/ablation_design_choices-a9c58c0f467db0ad.d: crates/bench/src/bin/ablation_design_choices.rs

/root/repo/target/debug/deps/ablation_design_choices-a9c58c0f467db0ad: crates/bench/src/bin/ablation_design_choices.rs

crates/bench/src/bin/ablation_design_choices.rs:
