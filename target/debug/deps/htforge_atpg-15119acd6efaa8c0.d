/root/repo/target/debug/deps/htforge_atpg-15119acd6efaa8c0.d: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

/root/repo/target/debug/deps/htforge_atpg-15119acd6efaa8c0: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

crates/atpg/src/lib.rs:
crates/atpg/src/cube.rs:
crates/atpg/src/fault.rs:
crates/atpg/src/fault_sim.rs:
crates/atpg/src/ndetect.rs:
crates/atpg/src/podem.rs:
