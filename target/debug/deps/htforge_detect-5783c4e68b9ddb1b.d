/root/repo/target/debug/deps/htforge_detect-5783c4e68b9ddb1b.d: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_detect-5783c4e68b9ddb1b.rmeta: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs Cargo.toml

crates/detect/src/lib.rs:
crates/detect/src/coverage.rs:
crates/detect/src/mero.rs:
crates/detect/src/ndatpg.rs:
crates/detect/src/random.rs:
crates/detect/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
