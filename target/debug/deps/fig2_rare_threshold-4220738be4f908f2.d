/root/repo/target/debug/deps/fig2_rare_threshold-4220738be4f908f2.d: crates/bench/src/bin/fig2_rare_threshold.rs

/root/repo/target/debug/deps/fig2_rare_threshold-4220738be4f908f2: crates/bench/src/bin/fig2_rare_threshold.rs

crates/bench/src/bin/fig2_rare_threshold.rs:
