/root/repo/target/debug/deps/podem-127fc80e9ca21f8c.d: crates/bench/benches/podem.rs Cargo.toml

/root/repo/target/debug/deps/libpodem-127fc80e9ca21f8c.rmeta: crates/bench/benches/podem.rs Cargo.toml

crates/bench/benches/podem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
