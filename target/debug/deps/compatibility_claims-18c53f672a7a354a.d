/root/repo/target/debug/deps/compatibility_claims-18c53f672a7a354a.d: tests/compatibility_claims.rs Cargo.toml

/root/repo/target/debug/deps/libcompatibility_claims-18c53f672a7a354a.rmeta: tests/compatibility_claims.rs Cargo.toml

tests/compatibility_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
