/root/repo/target/debug/deps/htforge_bench-9ea18bf601167a99.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_bench-9ea18bf601167a99.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
