/root/repo/target/debug/deps/htforge_circuits-c723770e3151d1a7.d: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

/root/repo/target/debug/deps/libhtforge_circuits-c723770e3151d1a7.rlib: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

/root/repo/target/debug/deps/libhtforge_circuits-c723770e3151d1a7.rmeta: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

crates/circuits/src/lib.rs:
crates/circuits/src/iscas.rs:
crates/circuits/src/multiplier.rs:
crates/circuits/src/synth.rs:
