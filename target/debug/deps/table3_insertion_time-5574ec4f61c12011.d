/root/repo/target/debug/deps/table3_insertion_time-5574ec4f61c12011.d: crates/bench/src/bin/table3_insertion_time.rs

/root/repo/target/debug/deps/table3_insertion_time-5574ec4f61c12011: crates/bench/src/bin/table3_insertion_time.rs

crates/bench/src/bin/table3_insertion_time.rs:
