/root/repo/target/debug/deps/htforge_detect-5e391ca1c7e0dbca.d: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

/root/repo/target/debug/deps/libhtforge_detect-5e391ca1c7e0dbca.rlib: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

/root/repo/target/debug/deps/libhtforge_detect-5e391ca1c7e0dbca.rmeta: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

crates/detect/src/lib.rs:
crates/detect/src/coverage.rs:
crates/detect/src/mero.rs:
crates/detect/src/ndatpg.rs:
crates/detect/src/random.rs:
crates/detect/src/scheme.rs:
