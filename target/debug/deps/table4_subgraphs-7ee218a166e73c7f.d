/root/repo/target/debug/deps/table4_subgraphs-7ee218a166e73c7f.d: crates/bench/src/bin/table4_subgraphs.rs

/root/repo/target/debug/deps/table4_subgraphs-7ee218a166e73c7f: crates/bench/src/bin/table4_subgraphs.rs

crates/bench/src/bin/table4_subgraphs.rs:
