/root/repo/target/debug/deps/sim_oracle-d36273899c6552d8.d: crates/sim/tests/sim_oracle.rs

/root/repo/target/debug/deps/sim_oracle-d36273899c6552d8: crates/sim/tests/sim_oracle.rs

crates/sim/tests/sim_oracle.rs:
