/root/repo/target/debug/deps/pipeline-f426b2bca84ec91a.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-f426b2bca84ec91a: tests/pipeline.rs

tests/pipeline.rs:
