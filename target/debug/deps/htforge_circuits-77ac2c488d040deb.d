/root/repo/target/debug/deps/htforge_circuits-77ac2c488d040deb.d: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_circuits-77ac2c488d040deb.rmeta: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/iscas.rs:
crates/circuits/src/multiplier.rs:
crates/circuits/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
