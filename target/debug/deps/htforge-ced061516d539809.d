/root/repo/target/debug/deps/htforge-ced061516d539809.d: src/bin/htforge.rs

/root/repo/target/debug/deps/htforge-ced061516d539809: src/bin/htforge.rs

src/bin/htforge.rs:
