/root/repo/target/debug/deps/table2_detection-b1c88deb817dd691.d: crates/bench/src/bin/table2_detection.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_detection-b1c88deb817dd691.rmeta: crates/bench/src/bin/table2_detection.rs Cargo.toml

crates/bench/src/bin/table2_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
