/root/repo/target/debug/deps/table4_subgraphs-df47d0689074fe62.d: crates/bench/src/bin/table4_subgraphs.rs

/root/repo/target/debug/deps/table4_subgraphs-df47d0689074fe62: crates/bench/src/bin/table4_subgraphs.rs

crates/bench/src/bin/table4_subgraphs.rs:
