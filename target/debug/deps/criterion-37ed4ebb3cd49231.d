/root/repo/target/debug/deps/criterion-37ed4ebb3cd49231.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-37ed4ebb3cd49231: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
