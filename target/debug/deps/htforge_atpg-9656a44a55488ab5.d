/root/repo/target/debug/deps/htforge_atpg-9656a44a55488ab5.d: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_atpg-9656a44a55488ab5.rmeta: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs Cargo.toml

crates/atpg/src/lib.rs:
crates/atpg/src/cube.rs:
crates/atpg/src/fault.rs:
crates/atpg/src/fault_sim.rs:
crates/atpg/src/ndetect.rs:
crates/atpg/src/podem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
