/root/repo/target/debug/deps/htforge_scoap-24732b6fd792ba90.d: crates/scoap/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_scoap-24732b6fd792ba90.rmeta: crates/scoap/src/lib.rs Cargo.toml

crates/scoap/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
