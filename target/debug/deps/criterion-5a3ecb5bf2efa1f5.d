/root/repo/target/debug/deps/criterion-5a3ecb5bf2efa1f5.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5a3ecb5bf2efa1f5.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5a3ecb5bf2efa1f5.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
