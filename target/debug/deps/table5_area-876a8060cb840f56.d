/root/repo/target/debug/deps/table5_area-876a8060cb840f56.d: crates/bench/src/bin/table5_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_area-876a8060cb840f56.rmeta: crates/bench/src/bin/table5_area.rs Cargo.toml

crates/bench/src/bin/table5_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
