/root/repo/target/debug/deps/ablation_design_choices-1ba826a70eaa7965.d: crates/bench/src/bin/ablation_design_choices.rs

/root/repo/target/debug/deps/ablation_design_choices-1ba826a70eaa7965: crates/bench/src/bin/ablation_design_choices.rs

crates/bench/src/bin/ablation_design_choices.rs:
