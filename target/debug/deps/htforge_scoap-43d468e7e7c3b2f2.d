/root/repo/target/debug/deps/htforge_scoap-43d468e7e7c3b2f2.d: crates/scoap/src/lib.rs

/root/repo/target/debug/deps/htforge_scoap-43d468e7e7c3b2f2: crates/scoap/src/lib.rs

crates/scoap/src/lib.rs:
