/root/repo/target/debug/deps/htforge-34a7ee65d252953d.d: src/bin/htforge.rs

/root/repo/target/debug/deps/htforge-34a7ee65d252953d: src/bin/htforge.rs

src/bin/htforge.rs:
