/root/repo/target/debug/deps/table3_insertion_time-86cfd2a714cded72.d: crates/bench/src/bin/table3_insertion_time.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_insertion_time-86cfd2a714cded72.rmeta: crates/bench/src/bin/table3_insertion_time.rs Cargo.toml

crates/bench/src/bin/table3_insertion_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
