/root/repo/target/debug/deps/simulation-1d0d946d5c78e399.d: crates/bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-1d0d946d5c78e399.rmeta: crates/bench/benches/simulation.rs Cargo.toml

crates/bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
