/root/repo/target/debug/deps/bench_sim-c299a1cb3a96ef24.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/debug/deps/bench_sim-c299a1cb3a96ef24: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
