/root/repo/target/debug/deps/htforge-28b92f2ef1a5601f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge-28b92f2ef1a5601f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
