/root/repo/target/debug/deps/fig2_rare_threshold-83a2cad49408e119.d: crates/bench/src/bin/fig2_rare_threshold.rs

/root/repo/target/debug/deps/fig2_rare_threshold-83a2cad49408e119: crates/bench/src/bin/fig2_rare_threshold.rs

crates/bench/src/bin/fig2_rare_threshold.rs:
