/root/repo/target/debug/deps/htforge-3d4665ce7cac9180.d: src/lib.rs

/root/repo/target/debug/deps/libhtforge-3d4665ce7cac9180.rlib: src/lib.rs

/root/repo/target/debug/deps/libhtforge-3d4665ce7cac9180.rmeta: src/lib.rs

src/lib.rs:
