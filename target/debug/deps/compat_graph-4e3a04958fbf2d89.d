/root/repo/target/debug/deps/compat_graph-4e3a04958fbf2d89.d: crates/bench/benches/compat_graph.rs Cargo.toml

/root/repo/target/debug/deps/libcompat_graph-4e3a04958fbf2d89.rmeta: crates/bench/benches/compat_graph.rs Cargo.toml

crates/bench/benches/compat_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
