/root/repo/target/debug/deps/bench_sim-e92dcb598b53058f.d: crates/bench/src/bin/bench_sim.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sim-e92dcb598b53058f.rmeta: crates/bench/src/bin/bench_sim.rs Cargo.toml

crates/bench/src/bin/bench_sim.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
