/root/repo/target/debug/deps/htforge_bench-62c217df5f2b0129.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_bench-62c217df5f2b0129.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
