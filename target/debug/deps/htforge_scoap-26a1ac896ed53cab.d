/root/repo/target/debug/deps/htforge_scoap-26a1ac896ed53cab.d: crates/scoap/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_scoap-26a1ac896ed53cab.rmeta: crates/scoap/src/lib.rs Cargo.toml

crates/scoap/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
