/root/repo/target/debug/deps/htforge_core-3488531860e83951.d: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs Cargo.toml

/root/repo/target/debug/deps/libhtforge_core-3488531860e83951.rmeta: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/clique.rs:
crates/core/src/compat.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/insert.rs:
crates/core/src/payload.rs:
crates/core/src/sequential_trigger.rs:
crates/core/src/trigger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
