/root/repo/target/debug/deps/rare_extraction-b0c67ec462f15f8e.d: crates/bench/benches/rare_extraction.rs Cargo.toml

/root/repo/target/debug/deps/librare_extraction-b0c67ec462f15f8e.rmeta: crates/bench/benches/rare_extraction.rs Cargo.toml

crates/bench/benches/rare_extraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
