/root/repo/target/debug/deps/criterion-28579943ce822933.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-28579943ce822933.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
