/root/repo/target/debug/deps/htforge_sim-388c8dcd1aa80367.d: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

/root/repo/target/debug/deps/libhtforge_sim-388c8dcd1aa80367.rlib: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

/root/repo/target/debug/deps/libhtforge_sim-388c8dcd1aa80367.rmeta: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

crates/sim/src/lib.rs:
crates/sim/src/patterns.rs:
crates/sim/src/prob.rs:
crates/sim/src/program.rs:
crates/sim/src/rare.rs:
crates/sim/src/sequential.rs:
crates/sim/src/simulator.rs:
crates/sim/src/tri.rs:
