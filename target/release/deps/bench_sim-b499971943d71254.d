/root/repo/target/release/deps/bench_sim-b499971943d71254.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/release/deps/bench_sim-b499971943d71254: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
