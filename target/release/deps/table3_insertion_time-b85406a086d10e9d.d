/root/repo/target/release/deps/table3_insertion_time-b85406a086d10e9d.d: crates/bench/src/bin/table3_insertion_time.rs

/root/repo/target/release/deps/table3_insertion_time-b85406a086d10e9d: crates/bench/src/bin/table3_insertion_time.rs

crates/bench/src/bin/table3_insertion_time.rs:
