/root/repo/target/release/deps/htforge_netlist-6ad616ea4c087ab5.d: crates/netlist/src/lib.rs crates/netlist/src/area.rs crates/netlist/src/bench.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/opt.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libhtforge_netlist-6ad616ea4c087ab5.rlib: crates/netlist/src/lib.rs crates/netlist/src/area.rs crates/netlist/src/bench.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/opt.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libhtforge_netlist-6ad616ea4c087ab5.rmeta: crates/netlist/src/lib.rs crates/netlist/src/area.rs crates/netlist/src/bench.rs crates/netlist/src/error.rs crates/netlist/src/gate.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/opt.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/area.rs:
crates/netlist/src/bench.rs:
crates/netlist/src/error.rs:
crates/netlist/src/gate.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/opt.rs:
crates/netlist/src/verilog.rs:
