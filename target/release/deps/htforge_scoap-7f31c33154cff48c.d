/root/repo/target/release/deps/htforge_scoap-7f31c33154cff48c.d: crates/scoap/src/lib.rs

/root/repo/target/release/deps/libhtforge_scoap-7f31c33154cff48c.rlib: crates/scoap/src/lib.rs

/root/repo/target/release/deps/libhtforge_scoap-7f31c33154cff48c.rmeta: crates/scoap/src/lib.rs

crates/scoap/src/lib.rs:
