/root/repo/target/release/deps/htforge_atpg-444967d44722a86e.d: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

/root/repo/target/release/deps/libhtforge_atpg-444967d44722a86e.rlib: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

/root/repo/target/release/deps/libhtforge_atpg-444967d44722a86e.rmeta: crates/atpg/src/lib.rs crates/atpg/src/cube.rs crates/atpg/src/fault.rs crates/atpg/src/fault_sim.rs crates/atpg/src/ndetect.rs crates/atpg/src/podem.rs

crates/atpg/src/lib.rs:
crates/atpg/src/cube.rs:
crates/atpg/src/fault.rs:
crates/atpg/src/fault_sim.rs:
crates/atpg/src/ndetect.rs:
crates/atpg/src/podem.rs:
