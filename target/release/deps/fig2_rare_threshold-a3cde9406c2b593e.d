/root/repo/target/release/deps/fig2_rare_threshold-a3cde9406c2b593e.d: crates/bench/src/bin/fig2_rare_threshold.rs

/root/repo/target/release/deps/fig2_rare_threshold-a3cde9406c2b593e: crates/bench/src/bin/fig2_rare_threshold.rs

crates/bench/src/bin/fig2_rare_threshold.rs:
