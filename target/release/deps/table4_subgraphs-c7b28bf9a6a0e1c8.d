/root/repo/target/release/deps/table4_subgraphs-c7b28bf9a6a0e1c8.d: crates/bench/src/bin/table4_subgraphs.rs

/root/repo/target/release/deps/table4_subgraphs-c7b28bf9a6a0e1c8: crates/bench/src/bin/table4_subgraphs.rs

crates/bench/src/bin/table4_subgraphs.rs:
