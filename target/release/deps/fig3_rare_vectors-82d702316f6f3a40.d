/root/repo/target/release/deps/fig3_rare_vectors-82d702316f6f3a40.d: crates/bench/src/bin/fig3_rare_vectors.rs

/root/repo/target/release/deps/fig3_rare_vectors-82d702316f6f3a40: crates/bench/src/bin/fig3_rare_vectors.rs

crates/bench/src/bin/fig3_rare_vectors.rs:
