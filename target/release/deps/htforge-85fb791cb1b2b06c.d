/root/repo/target/release/deps/htforge-85fb791cb1b2b06c.d: src/bin/htforge.rs

/root/repo/target/release/deps/htforge-85fb791cb1b2b06c: src/bin/htforge.rs

src/bin/htforge.rs:
