/root/repo/target/release/deps/htforge_detect-4702208f27f7c3cb.d: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

/root/repo/target/release/deps/libhtforge_detect-4702208f27f7c3cb.rlib: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

/root/repo/target/release/deps/libhtforge_detect-4702208f27f7c3cb.rmeta: crates/detect/src/lib.rs crates/detect/src/coverage.rs crates/detect/src/mero.rs crates/detect/src/ndatpg.rs crates/detect/src/random.rs crates/detect/src/scheme.rs

crates/detect/src/lib.rs:
crates/detect/src/coverage.rs:
crates/detect/src/mero.rs:
crates/detect/src/ndatpg.rs:
crates/detect/src/random.rs:
crates/detect/src/scheme.rs:
