/root/repo/target/release/deps/htforge_sim-7c6b539f224e52ef.d: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

/root/repo/target/release/deps/libhtforge_sim-7c6b539f224e52ef.rlib: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

/root/repo/target/release/deps/libhtforge_sim-7c6b539f224e52ef.rmeta: crates/sim/src/lib.rs crates/sim/src/patterns.rs crates/sim/src/prob.rs crates/sim/src/program.rs crates/sim/src/rare.rs crates/sim/src/sequential.rs crates/sim/src/simulator.rs crates/sim/src/tri.rs

crates/sim/src/lib.rs:
crates/sim/src/patterns.rs:
crates/sim/src/prob.rs:
crates/sim/src/program.rs:
crates/sim/src/rare.rs:
crates/sim/src/sequential.rs:
crates/sim/src/simulator.rs:
crates/sim/src/tri.rs:
