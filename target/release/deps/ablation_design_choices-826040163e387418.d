/root/repo/target/release/deps/ablation_design_choices-826040163e387418.d: crates/bench/src/bin/ablation_design_choices.rs

/root/repo/target/release/deps/ablation_design_choices-826040163e387418: crates/bench/src/bin/ablation_design_choices.rs

crates/bench/src/bin/ablation_design_choices.rs:
