/root/repo/target/release/deps/table5_area-09586896f2205662.d: crates/bench/src/bin/table5_area.rs

/root/repo/target/release/deps/table5_area-09586896f2205662: crates/bench/src/bin/table5_area.rs

crates/bench/src/bin/table5_area.rs:
