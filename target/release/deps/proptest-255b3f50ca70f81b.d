/root/repo/target/release/deps/proptest-255b3f50ca70f81b.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-255b3f50ca70f81b.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-255b3f50ca70f81b.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
