/root/repo/target/release/deps/htforge-39618b61db58f812.d: src/lib.rs

/root/repo/target/release/deps/libhtforge-39618b61db58f812.rlib: src/lib.rs

/root/repo/target/release/deps/libhtforge-39618b61db58f812.rmeta: src/lib.rs

src/lib.rs:
