/root/repo/target/release/deps/htforge_bench-75182b2c46a3ca98.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhtforge_bench-75182b2c46a3ca98.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhtforge_bench-75182b2c46a3ca98.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
