/root/repo/target/release/deps/rand-7f663003cf40133c.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7f663003cf40133c.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-7f663003cf40133c.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
