/root/repo/target/release/deps/htforge_circuits-9d1f30f22ec2b8df.d: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

/root/repo/target/release/deps/libhtforge_circuits-9d1f30f22ec2b8df.rlib: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

/root/repo/target/release/deps/libhtforge_circuits-9d1f30f22ec2b8df.rmeta: crates/circuits/src/lib.rs crates/circuits/src/iscas.rs crates/circuits/src/multiplier.rs crates/circuits/src/synth.rs

crates/circuits/src/lib.rs:
crates/circuits/src/iscas.rs:
crates/circuits/src/multiplier.rs:
crates/circuits/src/synth.rs:
