/root/repo/target/release/deps/htforge_baselines-a174772d5b636e2c.d: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

/root/repo/target/release/deps/libhtforge_baselines-a174772d5b636e2c.rlib: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

/root/repo/target/release/deps/libhtforge_baselines-a174772d5b636e2c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/random.rs crates/baselines/src/rl.rs crates/baselines/src/trusthub.rs crates/baselines/src/validate.rs

crates/baselines/src/lib.rs:
crates/baselines/src/random.rs:
crates/baselines/src/rl.rs:
crates/baselines/src/trusthub.rs:
crates/baselines/src/validate.rs:
