/root/repo/target/release/deps/htforge_core-4b5958256eed2c7a.d: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

/root/repo/target/release/deps/libhtforge_core-4b5958256eed2c7a.rlib: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

/root/repo/target/release/deps/libhtforge_core-4b5958256eed2c7a.rmeta: crates/core/src/lib.rs crates/core/src/clique.rs crates/core/src/compat.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/insert.rs crates/core/src/payload.rs crates/core/src/sequential_trigger.rs crates/core/src/trigger.rs

crates/core/src/lib.rs:
crates/core/src/clique.rs:
crates/core/src/compat.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/insert.rs:
crates/core/src/payload.rs:
crates/core/src/sequential_trigger.rs:
crates/core/src/trigger.rs:
