/root/repo/target/release/deps/table2_detection-c95ab3bf18a250db.d: crates/bench/src/bin/table2_detection.rs

/root/repo/target/release/deps/table2_detection-c95ab3bf18a250db: crates/bench/src/bin/table2_detection.rs

crates/bench/src/bin/table2_detection.rs:
