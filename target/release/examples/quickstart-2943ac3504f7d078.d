/root/repo/target/release/examples/quickstart-2943ac3504f7d078.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2943ac3504f7d078: examples/quickstart.rs

examples/quickstart.rs:
