//! Shared harness utilities for the per-table/figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §2 for the index). All binaries accept:
//!
//! * `--full` — paper-scale parameters (10 000 profiling vectors, all
//!   eight circuits, full instance counts). The default is a scaled-down
//!   configuration that completes in seconds.
//! * `--circuits a,b,c` — restrict to a subset of circuits.
//!
//! The Criterion benches under `benches/` time the individual pipeline
//! phases on fixed configurations.

/// Re-exported from [`htforge_obs`] so the table binaries render their
/// terminal reports and JSON table dumps through the same code path as
/// the observability summary sink.
pub use htforge_obs::Table;

pub mod campaign;

const USAGE: &str = "supported flags: --full, --circuits a,b,c, --fresh";

/// Parsed command-line options shared by the table binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Paper-scale parameters when set (`--full`).
    pub full: bool,
    /// Circuits to run on (defaults chosen by each binary).
    pub circuits: Option<Vec<String>>,
    /// Ignore campaign checkpoints and recompute everything (`--fresh`).
    pub fresh: bool,
}

impl HarnessOpts {
    /// Parses `std::env::args`; on a malformed command line prints a
    /// one-line diagnostic plus usage to stderr and exits with status 2
    /// (it never panics).
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument iterator (what [`HarnessOpts::from_env`] feeds
    /// from the real command line).
    ///
    /// # Errors
    ///
    /// Returns a one-line diagnostic for unknown flags or a missing
    /// `--circuits` value.
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Result<Self, String> {
        let mut opts = HarnessOpts {
            full: false,
            circuits: None,
            fresh: false,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--fresh" => opts.fresh = true,
                "--circuits" => {
                    let list = args
                        .next()
                        .ok_or("--circuits requires a comma-separated list")?;
                    opts.circuits = Some(list.split(',').map(|s| s.trim().to_owned()).collect());
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The circuit list to use, defaulting to `default` (scaled mode) or
    /// all eight paper benchmarks (`--full`).
    #[must_use]
    pub fn circuits_or(&self, default: &[&str]) -> Vec<String> {
        match &self.circuits {
            Some(list) => list.clone(),
            None if self.full => htforge_circuits::paper_benchmarks()
                .into_iter()
                .map(str::to_owned)
                .collect(),
            None => default.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

/// Formats a `Duration` in minutes with the paper's precision.
#[must_use]
pub fn minutes(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() / 60.0)
}

pub mod scalar {
    //! Reference gate-at-a-time interpreter.
    //!
    //! This is the pre-kernel `Simulator::run_on` loop, preserved here as
    //! the *baseline* the compiled [`htforge_sim::SimProgram`] is
    //! benchmarked against (`benches/simulation.rs`, `bin/bench_sim.rs`).
    //! It re-dispatches on the gate kind and re-fills a scratch `Vec` for
    //! every gate × word visit — exactly the overhead the instruction
    //! tape eliminates — but its output is bit-identical to the kernel's.

    use htforge_netlist::{Netlist, NodeKind};
    use htforge_sim::PatternSet;

    /// Simulates `patterns` gate-at-a-time; returns node-major packed
    /// words (`words[node * words_per_node + w]`), tails masked.
    ///
    /// # Panics
    ///
    /// Panics if `nl` is cyclic or the pattern width does not match.
    #[must_use]
    pub fn simulate(nl: &Netlist, patterns: &PatternSet) -> Vec<u64> {
        assert_eq!(patterns.num_inputs(), nl.inputs().len());
        let order = htforge_netlist::graph::topo_order(nl).expect("acyclic netlist");
        let words_per_node = PatternSet::words_for(patterns.len());
        let tail_mask = PatternSet::tail_mask(patterns.len());
        let mut words = vec![0u64; nl.node_count() * words_per_node];

        for (pos, &node) in nl.inputs().iter().enumerate() {
            let base = node.index() * words_per_node;
            words[base..base + words_per_node].copy_from_slice(patterns.input_words(pos));
        }

        let mut scratch: Vec<u64> = Vec::new();
        for &id in &order {
            let node = nl.node(id);
            let kind = match node.kind() {
                NodeKind::Gate(k) => k,
                NodeKind::Input | NodeKind::Dff => continue,
            };
            let fanins = node.fanins();
            for w in 0..words_per_node {
                scratch.clear();
                for &f in fanins {
                    scratch.push(words[f.index() * words_per_node + w]);
                }
                let mut v = kind.eval_bits(&scratch);
                if w + 1 == words_per_node {
                    v &= tail_mask;
                }
                words[id.index() * words_per_node + w] = v;
            }
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minutes_formatting() {
        assert_eq!(minutes(std::time::Duration::from_secs(60)), "1.000");
        assert_eq!(minutes(std::time::Duration::from_millis(10980)), "0.183");
    }

    #[test]
    fn circuits_or_default_and_full() {
        let opts = HarnessOpts {
            full: false,
            circuits: None,
            fresh: false,
        };
        assert_eq!(opts.circuits_or(&["c17"]), vec!["c17".to_owned()]);
        let full = HarnessOpts {
            full: true,
            circuits: None,
            fresh: false,
        };
        assert_eq!(full.circuits_or(&["c17"]).len(), 8);
        let explicit = HarnessOpts {
            full: false,
            circuits: Some(vec!["c2670".into()]),
            fresh: false,
        };
        assert_eq!(explicit.circuits_or(&["c17"]), vec!["c2670".to_owned()]);
    }

    #[test]
    fn parse_accepts_known_flags_and_rejects_unknown() {
        let ok = HarnessOpts::parse(
            ["--full", "--fresh", "--circuits", "c17, c2670"]
                .iter()
                .map(ToString::to_string),
        )
        .unwrap();
        assert!(ok.full && ok.fresh);
        assert_eq!(
            ok.circuits,
            Some(vec!["c17".to_owned(), "c2670".to_owned()])
        );

        let unknown = HarnessOpts::parse(["--wat"].iter().map(ToString::to_string)).unwrap_err();
        assert!(unknown.contains("--wat"));

        let missing =
            HarnessOpts::parse(["--circuits"].iter().map(ToString::to_string)).unwrap_err();
        assert!(missing.contains("--circuits"));
    }
}
