//! Batched sequential-stepping throughput baseline: writes
//! `BENCH_seq.json` at the repository root.
//!
//! Measures trace-cycles/second of a 64-trace, 1000-cycle random
//! functional campaign over a sequential-trojan-infected circuit, two
//! ways: looping the scalar [`SequentialSimulator`] one trace at a
//! time, and one [`BatchedSequentialSimulator`] pass (64 traces per
//! machine word). The acceptance bar for the batched stepper is ≥10×.
//!
//! Run with `cargo run --release -p htforge-bench --bin bench_seq`.

use std::fmt::Write as _;
use std::time::Instant;

use htforge_atpg::PodemConfig;
use htforge_core::{
    enumerate_cliques, insert_sequential_trojan, CompatGraph, PayloadKind, PayloadStrategy,
    SequentialInfectedDesign, TriggerPlan,
};
use htforge_detect::SequentialCampaign;
use htforge_netlist::Netlist;
use htforge_sim::seq_batch::{BatchedSequentialSimulator, FirstFireMonitor};
use htforge_sim::sequential::SequentialSimulator;
use htforge_sim::{PatternSet, RareNodeExtractor};

const TRACES: usize = 64;
const CYCLES: usize = 1000;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_seq.json");

/// Inserts a 2-node-trigger, 4-bit-counter sequential trojan into a
/// named benchmark circuit (the htforge-core test recipe at
/// campaign scale).
fn infect(name: &str) -> SequentialInfectedDesign {
    let nl = htforge_circuits::load(name).expect("known circuit");
    let comb = if nl.dffs().is_empty() {
        nl.clone()
    } else {
        nl.scan_cut()
    };
    let ps = PatternSet::random(comb.inputs().len(), 10_000, 1);
    let rare = RareNodeExtractor::new(0.30)
        .extract(&comb, &ps)
        .expect("rare extraction");
    let graph = CompatGraph::build(&comb, &rare, PodemConfig::justify()).expect("compat graph");
    let cliques = enumerate_cliques(&graph, 2, 1, 0);
    let clique = cliques.first().expect("at least one 2-clique");
    let leaves: Vec<_> = clique
        .members
        .iter()
        .map(|&m| {
            let e = &graph.events()[m];
            (e.node, e.rare_value)
        })
        .collect();
    let rare_values: Vec<bool> = leaves.iter().map(|&(_, v)| v).collect();
    let plan = TriggerPlan::synthesize(&rare_values, 4);
    let scoap = htforge_scoap::Scoap::compute(&comb).expect("scoap");
    let trigger_nodes: Vec<_> = leaves.iter().map(|&(n, _)| n).collect();
    let payload = htforge_core::payload::choose_payload(
        &comb,
        &scoap,
        &trigger_nodes,
        PayloadStrategy::MostObservable,
    )
    .expect("payload");
    let (infected, trojan) = insert_sequential_trojan(
        &comb,
        &leaves,
        &plan,
        payload,
        PayloadKind::Flip,
        4,
        "b0",
        clique.activation_cube.clone(),
    )
    .expect("insertion");
    SequentialInfectedDesign {
        netlist: infected,
        trojan,
    }
}

/// Median seconds per run over `runs` timed repetitions (after one
/// untimed warm-up).
fn time_median<F: FnMut() -> usize>(runs: usize, mut f: F) -> f64 {
    let _ = f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            let sink = f();
            let dt = t.elapsed().as_secs_f64();
            assert!(sink < usize::MAX);
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // Opt-in only (`HTFORGE_OBS=...`): enabling the recorder here would
    // perturb the timings this baseline exists to pin down.
    let _obs = htforge_obs::init_from_env();
    let mut rows = Vec::new();
    for name in ["c2670", "c5315"] {
        let design = infect(name);
        let nl: &Netlist = &design.netlist;
        let armed = design.trojan.combinational.trigger_output;
        let num_inputs = nl.inputs().len();
        let campaign = SequentialCampaign::new(TRACES, CYCLES, 9);
        // Pre-generate the stimuli so both steppers time pure stepping.
        let stimuli: Vec<PatternSet> = (0..CYCLES)
            .map(|c| campaign.stimulus(num_inputs, c))
            .collect();
        let per_trace: Vec<Vec<Vec<bool>>> = (0..TRACES)
            .map(|t| stimuli.iter().map(|s| s.pattern(t)).collect())
            .collect();

        let scalar_runs = 3;
        let scalar_sec = time_median(scalar_runs, || {
            let mut fired = 0usize;
            for seq in &per_trace {
                let mut sim = SequentialSimulator::new(nl).expect("scalar builds");
                for inputs in seq {
                    sim.step(inputs).expect("step");
                    if sim.value(armed) == Some(true) {
                        fired += 1;
                    }
                }
            }
            fired
        });

        let batched_sec = time_median(5, || {
            let mut sim = BatchedSequentialSimulator::new(nl, TRACES).expect("batched builds");
            let mut monitor = FirstFireMonitor::new(TRACES);
            for stim in &stimuli {
                sim.step(stim);
                monitor.observe(sim.node_words(armed).expect("stepped"));
            }
            monitor.fired_count()
        });

        let trace_cycles = (TRACES * CYCLES) as f64;
        let scalar_tps = trace_cycles / scalar_sec;
        let batched_tps = trace_cycles / batched_sec;
        let speedup = scalar_sec / batched_sec;
        eprintln!(
            "{name}: {} gates, {} dffs | scalar {scalar_tps:.2e} trace-cycles/s | batched {batched_tps:.2e} | {speedup:.1}x",
            nl.gate_count(),
            nl.dffs().len(),
        );

        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\n      \"circuit\": \"{name}\",\n      \"gates\": {},\n      \"dffs\": {},\n      \"traces\": {TRACES},\n      \"cycles\": {CYCLES},\n      \"trace_cycles_per_sec\": {{\n        \"scalar_loop\": {:.1},\n        \"batched\": {:.1}\n      }},\n      \"speedup_batched_vs_scalar\": {:.2}\n    }}",
            nl.gate_count(),
            nl.dffs().len(),
            scalar_tps,
            batched_tps,
            speedup,
        );
        rows.push(row);
    }

    let json = format!(
        "{{\n  \"bench\": \"batched-sequential-stepping\",\n  \"command\": \"cargo run --release -p htforge-bench --bin bench_seq\",\n  \"campaign\": \"random functional stimuli over a sequential-trojan-infected circuit\",\n  \"acceptance_bar\": \"batched >= 10x scalar loop trace-cycles/sec\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(OUT_PATH, &json).expect("write BENCH_seq.json");
    eprintln!("wrote {OUT_PATH}");
}
