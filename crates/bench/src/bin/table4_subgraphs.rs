//! **Table IV** — number of complete subgraphs and their generation time.
//!
//! The paper reports thousands-to-tens-of-thousands of complete subgraphs
//! (cliques of the compatibility graph) per circuit, generated in under a
//! few minutes — the scalability claim behind "numerous unique trojan
//! instances".
//!
//! ```sh
//! cargo run --release -p htforge-bench --bin table4_subgraphs [--full]
//! ```

use std::time::Instant;

use htforge_atpg::PodemConfig;
use htforge_bench::{HarnessOpts, Table};
use htforge_core::{clique, CompatGraph};
use htforge_sim::{PatternSet, RareNodeExtractor};

/// The paper's reported subgraph counts, used as the per-circuit caps
/// (Table IV caps enumeration, it does not exhaust the graph).
fn paper_cap(name: &str) -> usize {
    match name {
        "c2670" => 2_000,
        "c3540" => 20_042,
        "c5315" => 10_000,
        "c6288" => 1_000,
        "s1423" => 22_093,
        "s13207" => 15_000,
        "s15850" => 10_000,
        "s35932" => 5_000,
        _ => 2_000,
    }
}

fn main() {
    let opts = HarnessOpts::from_env();
    let circuits = opts.circuits_or(&["c2670", "c3540", "s1423"]);
    let vectors = if opts.full { 10_000 } else { 4_000 };

    println!("Table IV: number of complete subgraphs and generation time\n");
    let mut table = Table::new(vec![
        "circuit",
        "rare",
        "vertices",
        "edges",
        "q",
        "subgraphs",
        "time (s)",
    ]);

    for name in &circuits {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let start = Instant::now();
        let patterns = PatternSet::random(comb.inputs().len(), vectors, 0x7AB4);
        let rare = RareNodeExtractor::new(0.20)
            .extract(&comb, &patterns)
            .expect("valid netlist");
        let graph = CompatGraph::build(&comb, &rare, PodemConfig::justify())
            .expect("combinational netlist");
        // Pick a trigger count the graph actually supports, probing down
        // from an ambitious q (the paper's per-circuit q varies widely).
        let q = clique::max_feasible_size(&graph, 24, 1).max(1);
        let cap = if opts.full { paper_cap(name) } else { 2_000 };
        let cliques = clique::enumerate_cliques(&graph, q, cap, 1);
        let elapsed = start.elapsed();
        table.row(vec![
            name.clone(),
            rare.len().to_string(),
            graph.len().to_string(),
            graph.edge_count().to_string(),
            q.to_string(),
            cliques.len().to_string(),
            format!("{:.1}", elapsed.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper Table IV): each circuit yields thousands of");
    println!("complete subgraphs within seconds-to-minutes, scaling with size.");
}
