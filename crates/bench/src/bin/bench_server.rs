//! Campaign-server load generator: writes `BENCH_server.json` at the
//! repository root.
//!
//! Drives one in-process [`htforge_server::Server`] through hundreds of
//! mixed jobs — `simulate`, `insert`, `grade` and `detect`, across
//! several tenants, circuits and priorities — submitted up front so the
//! queue is deep and the scheduler, cache and worker pool all see
//! contention. Records, per job class: terminal-status counts and
//! exact p50/p95/p99 submit-to-completion latency percentiles (computed
//! from the full latency vector, not a histogram sketch), plus overall
//! throughput, cache statistics and — the number the chaos CI entry
//! greps for — `lost_jobs`: submitted minus terminal responses, which
//! must be zero even with `HTFORGE_FAULT` armed.
//!
//! Two robustness sections ride along, each on its own `Server`
//! instance so the main run's pinned counts stay grep-stable:
//!
//! * **`durability`** — journal off vs `batch:64` vs `always` fsync
//!   throughput A/B, plus cold-replay time against 100/1k/10k-job
//!   backlogs.
//! * **`overload`** — a flood tenant bursts far past its admission
//!   quota while a victim tenant stays inside its own; the flood is
//!   shed with structured `queue_full` rejections, the victim sees
//!   zero rejections and a bounded p95.
//!
//! Every row records `host_threads` (the CI runner is single-core; see
//! ROADMAP) and the worker count. When `HTFORGE_OBS` is set, a run
//! report with the `server.*` counters/gauges goes to
//! `results/report_bench_server.json`.
//!
//! Run with `cargo run --release -p htforge-bench --bin bench_server`
//! (`--quick` trims the job mix for CI; still ≥ 100 jobs).

use std::collections::HashMap;
use std::time::Instant;

use htforge_obs::{Json, RunReport};
use htforge_server::{
    AdmissionConfig, CircuitSource, FsyncPolicy, JobKind, JobParams, JobSpec, Journal,
    JournalConfig, JournalEvent, Request, Response, Server, ServerConfig,
};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");

/// Exact nearest-rank percentile of a sorted latency vector.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn spec(i: usize, kind: JobKind, circuit: &str, params: JobParams) -> JobSpec {
    JobSpec {
        // Three tenants round-robin; priorities cycle so the scheduler
        // actually reorders the deep queue.
        tenant: format!("tenant{}", i % 3),
        id: format!("{}-{i}", kind.as_str()),
        kind,
        circuit: CircuitSource::Builtin(circuit.to_owned()),
        priority: (i % 5) as i64 - 2,
        deadline_ms: None,
        params,
    }
}

fn job_mix(quick: bool) -> Vec<JobSpec> {
    let (n_sim, n_pipeline) = if quick { (60, 20) } else { (240, 60) };
    let mut jobs = Vec::new();
    let sim_circuits = ["c17", "c2670", "c5315"];
    for i in 0..n_sim {
        jobs.push(spec(
            i,
            JobKind::Simulate,
            sim_circuits[i % sim_circuits.len()],
            JobParams {
                vectors: if quick { 2_048 } else { 8_192 },
                seed: i as u64 + 1,
                ..JobParams::default()
            },
        ));
    }
    let light = JobParams {
        vectors: 512,
        theta: 0.3,
        tests: 64,
        ..JobParams::default()
    };
    let pipeline_circuits = ["c17", "s1423"];
    for i in 0..n_pipeline {
        let circuit = pipeline_circuits[i % pipeline_circuits.len()];
        for kind in [JobKind::Insert, JobKind::Grade, JobKind::Detect] {
            jobs.push(spec(
                i,
                kind,
                circuit,
                JobParams {
                    seed: i as u64 + 1,
                    ..light.clone()
                },
            ));
        }
    }
    jobs
}

/// One simulate-only sub-run for the progress-streaming A/B: submits
/// `jobs` small jobs with progress frames on or off and returns the
/// terminal-response throughput in jobs/sec. Deliberately reports no
/// status counts — the chaos CI greps pin the main run's exact
/// `failed`/`degraded_responses` totals and must not match here.
fn progress_ab_run(workers: usize, jobs: usize, progress: bool) -> f64 {
    let (server, rx) = Server::start(ServerConfig {
        workers,
        progress,
        ..ServerConfig::default()
    });
    let t0 = Instant::now();
    for i in 0..jobs {
        server.handle(Request::Submit(Box::new(spec(
            i,
            JobKind::Simulate,
            "c2670",
            JobParams {
                vectors: 4_096,
                repeat: 16,
                seed: i as u64 + 1,
                ..JobParams::default()
            },
        ))));
    }
    let mut terminal = 0usize;
    while terminal < jobs {
        let resp = rx.recv().expect("A/B response stream closed early");
        if matches!(resp, Response::Result(_)) {
            terminal += 1;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    server.request_shutdown(false);
    server.join();
    jobs as f64 / wall.max(1e-9)
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "htforge_bench_journal_{tag}_{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// One simulate-only sub-run for the durability A/B: identical load
/// with the journal off / batched / fsync-per-record, returning
/// terminal throughput in jobs/sec. Separate `Server` instances so the
/// main run's exact status counts (pinned by the chaos CI greps) are
/// untouched.
fn durability_ab_run(workers: usize, jobs: usize, journal: Option<JournalConfig>) -> f64 {
    let (server, rx) = Server::start(ServerConfig {
        workers,
        progress: false,
        journal,
        ..ServerConfig::default()
    });
    let t0 = Instant::now();
    for i in 0..jobs {
        server.handle(Request::Submit(Box::new(spec(
            i,
            JobKind::Simulate,
            "c17",
            JobParams {
                vectors: 1_024,
                seed: i as u64 + 1,
                ..JobParams::default()
            },
        ))));
    }
    let mut terminal = 0usize;
    while terminal < jobs {
        if matches!(
            rx.recv().expect("durability A/B stream closed early"),
            Response::Result(_)
        ) {
            terminal += 1;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    server.request_shutdown(false);
    server.join();
    jobs as f64 / wall.max(1e-9)
}

/// Replay cost: journal `backlog` accepted-but-unfinished jobs, then
/// measure a cold `Journal::open` replay of the segment.
fn replay_ms_for_backlog(backlog: usize) -> f64 {
    let path = temp_journal(&format!("replay_{backlog}"));
    let cfg = JournalConfig {
        fsync: FsyncPolicy::Never,
        rotate_bytes: 0,
        ..JournalConfig::new(path.clone())
    };
    {
        let (mut journal, _) = Journal::open(cfg.clone()).expect("fresh journal");
        for i in 0..backlog {
            journal
                .append(&JournalEvent::Submit(Box::new(spec(
                    i,
                    JobKind::Simulate,
                    "c17",
                    JobParams {
                        vectors: 256,
                        ..JobParams::default()
                    },
                ))))
                .expect("append");
        }
        journal.sync().expect("sync");
    }
    let (_, recovery) = Journal::open(cfg).expect("replay");
    assert_eq!(recovery.pending.len(), backlog, "replay lost jobs");
    let _ = std::fs::remove_file(&path);
    recovery.recovery_ms
}

/// Two-tenant overload: a flood tenant bursts far past its quota while
/// a victim tenant submits a small batch. Admission must shed the
/// flood with structured `queue_full` rejections, keep the victim's
/// p95 bounded, and lose no accepted job. Returns the report row.
fn overload_run(workers: usize, quick: bool) -> Json {
    let flood_jobs = if quick { 120 } else { 300 };
    // The victim stays inside its quota (8 active): a well-behaved
    // tenant must see zero rejections no matter how hard the flood
    // tenant pushes.
    let victim_jobs = 8;
    let (server, rx) = Server::start(ServerConfig {
        workers,
        progress: false,
        admission: AdmissionConfig {
            max_queue_depth: 24,
            tenant_max_active: 8,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    });
    let medium = JobParams {
        vectors: 2_048,
        repeat: 4,
        ..JobParams::default()
    };
    let submit = |tenant: &str, id: String| {
        server.handle(Request::Submit(Box::new(JobSpec {
            tenant: tenant.to_owned(),
            id,
            kind: JobKind::Simulate,
            circuit: CircuitSource::Builtin("c2670".to_owned()),
            priority: 0,
            deadline_ms: None,
            params: medium.clone(),
        })));
    };
    // Interleave so the victim competes with the flood the whole way.
    let mut f = 0;
    for v in 0..victim_jobs {
        let burst = flood_jobs / victim_jobs;
        for _ in 0..burst {
            submit("flood", format!("f{f}"));
            f += 1;
        }
        submit("victim", format!("v{v}"));
    }
    while f < flood_jobs {
        submit("flood", format!("f{f}"));
        f += 1;
    }

    let total = flood_jobs + victim_jobs;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut queue_full = 0usize;
    let mut victim_rejected = 0usize;
    let mut victim_latencies: Vec<f64> = Vec::new();
    let mut terminal = 0usize;
    let mut resolved = 0usize;
    while resolved < total || terminal < accepted {
        match rx.recv().expect("overload stream closed early") {
            Response::Ack { .. } => {
                accepted += 1;
                resolved += 1;
            }
            Response::Reject { tenant, reason, .. } => {
                rejected += 1;
                resolved += 1;
                if reason == "queue_full" {
                    queue_full += 1;
                }
                if tenant == "victim" {
                    victim_rejected += 1;
                }
            }
            Response::Result(r) => {
                terminal += 1;
                if r.tenant == "victim" {
                    victim_latencies.push(r.latency_ms);
                }
            }
            _ => {}
        }
    }
    server.request_shutdown(false);
    let stats = server.join();

    // Invariants that must hold even with chaos faults armed: every
    // submit resolves to ack or reject, every accepted job reaches a
    // terminal response, and the quota actually shed flood load.
    assert_eq!(accepted + rejected, total, "a submit vanished");
    assert_eq!(
        stats.finished() as usize,
        accepted,
        "an accepted job never answered"
    );
    assert!(rejected > 0, "the flood must overflow the quota");
    assert_eq!(queue_full, rejected, "rejections must be structured");
    assert_eq!(
        victim_rejected, 0,
        "a tenant inside its quota must never be shed"
    );
    assert_eq!(
        victim_latencies.len(),
        victim_jobs,
        "every victim job must reach a terminal response"
    );

    victim_latencies.sort_by(f64::total_cmp);
    let victim_done = victim_latencies.len();
    let p50 = percentile(&victim_latencies, 50.0);
    let p95 = percentile(&victim_latencies, 95.0);
    eprintln!(
        "overload: {accepted}/{total} accepted, {rejected} shed (queue_full) | \
         victim {victim_done}/{victim_jobs} done, p50 {p50:.1} ms p95 {p95:.1} ms"
    );
    Json::obj(vec![
        ("flood_submitted", Json::Num(flood_jobs as f64)),
        ("victim_submitted", Json::Num(victim_jobs as f64)),
        ("accepted", Json::Num(accepted as f64)),
        ("rejected_queue_full", Json::Num(queue_full as f64)),
        ("victim_rejected", Json::Num(victim_rejected as f64)),
        ("victim_terminal", Json::Num(victim_done as f64)),
        (
            "victim_latency_ms",
            Json::obj(vec![
                ("p50", Json::Num(p50)),
                ("p95", Json::Num(p95)),
                (
                    "max",
                    Json::Num(victim_latencies.last().copied().unwrap_or(0.0)),
                ),
            ]),
        ),
    ])
}

#[derive(Default)]
struct ClassRow {
    jobs: u64,
    done: u64,
    failed: u64,
    cancelled: u64,
    timeout: u64,
    degraded: u64,
    latencies_ms: Vec<f64>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Enable the recorder up front: unlike the kernel microbenches,
    // the server's own span/counter overhead is part of the system
    // under test, and the report needs the `server.*` metrics.
    let _obs = htforge_obs::init_from_env();

    let jobs = job_mix(quick);
    let submitted = jobs.len();
    let workers = host_threads.min(8);
    let (server, rx) = Server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    });

    let t0 = Instant::now();
    for job in jobs {
        server.handle(Request::Submit(Box::new(job)));
    }
    let mut classes: HashMap<&'static str, ClassRow> = HashMap::new();
    let mut terminal = 0usize;
    while terminal < submitted {
        let resp = rx.recv().expect("response stream closed early");
        let Response::Result(r) = resp else { continue };
        terminal += 1;
        let row = classes.entry(r.kind.as_str()).or_default();
        row.jobs += 1;
        row.latencies_ms.push(r.latency_ms);
        match r.status.as_str() {
            "done" => row.done += 1,
            "failed" => row.failed += 1,
            "cancelled" => row.cancelled += 1,
            _ => row.timeout += 1,
        }
        if r.error.as_deref().is_some_and(|e| e.contains("degraded")) {
            row.degraded += 1;
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    let cache = server.cache().stats();
    let cache_entries = server.cache().entries();
    let cache_hit_rate = server.cache().hit_rate();
    server.request_shutdown(false);
    let stats = server.join();
    // Drain the channel tail (shutdown line) to be sure nothing is
    // stuck, then account for losses.
    let trailing = rx
        .iter()
        .filter(|r| matches!(r, Response::Result(_)))
        .count();
    let lost = submitted as i64 - terminal as i64 - trailing as i64;

    let mut class_rows: Vec<Json> = Vec::new();
    let mut class_names: Vec<&&str> = classes.keys().collect::<Vec<_>>();
    class_names.sort();
    for name in class_names {
        let row = &classes[*name];
        let mut lat = row.latencies_ms.clone();
        lat.sort_by(f64::total_cmp);
        let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
        eprintln!(
            "{name:>8}: {} jobs | done {} failed {} cancelled {} timeout {} | p50 {:.1} ms p95 {:.1} ms p99 {:.1} ms",
            row.jobs,
            row.done,
            row.failed,
            row.cancelled,
            row.timeout,
            percentile(&lat, 50.0),
            percentile(&lat, 95.0),
            percentile(&lat, 99.0),
        );
        class_rows.push(Json::obj(vec![
            ("kind", Json::Str((*name).to_owned())),
            ("host_threads", Json::Num(host_threads as f64)),
            ("jobs", Json::Num(row.jobs as f64)),
            ("done", Json::Num(row.done as f64)),
            ("failed", Json::Num(row.failed as f64)),
            ("cancelled", Json::Num(row.cancelled as f64)),
            ("timeout", Json::Num(row.timeout as f64)),
            ("degraded_responses", Json::Num(row.degraded as f64)),
            ("throughput_jobs_per_sec", Json::Num(row.jobs as f64 / wall)),
            (
                "latency_ms",
                Json::obj(vec![
                    ("mean", Json::Num(mean)),
                    ("p50", Json::Num(percentile(&lat, 50.0))),
                    ("p95", Json::Num(percentile(&lat, 95.0))),
                    ("p99", Json::Num(percentile(&lat, 99.0))),
                    ("max", Json::Num(lat.last().copied().unwrap_or(0.0))),
                ]),
            ),
        ]));
    }

    // Progress-streaming overhead A/B: identical simulate-only loads
    // with frames on vs off, run as back-to-back pairs so machine
    // drift cancels within a round, summarized by the median per-round
    // on/off ratio (robust to a stray slow round on a shared runner).
    // The bar is < 2% overhead, but the report just records the
    // measurement — single-core CI runners are too noisy to gate on.
    let ab_jobs = if quick { 60 } else { 120 };
    let mut ratios = Vec::new();
    let (mut on_jps, mut off_jps) = (0.0f64, 0.0f64);
    // Round 0 is a warm-up for both arms (cache hot, pool spun up).
    for round in 0..6 {
        let on = progress_ab_run(workers, ab_jobs, true);
        let off = progress_ab_run(workers, ab_jobs, false);
        if round > 0 {
            ratios.push(on / off.max(1e-9));
            on_jps = on_jps.max(on);
            off_jps = off_jps.max(off);
        }
    }
    ratios.sort_by(f64::total_cmp);
    let overhead_pct = (1.0 - ratios[ratios.len() / 2]) * 100.0;
    eprintln!(
        "progress A/B: on {on_jps:.1} jobs/s | off {off_jps:.1} jobs/s | overhead {overhead_pct:.2}%"
    );

    // Durability A/B: identical simulate loads with the write-ahead
    // journal off, batched, and fsync-per-record, plus cold-replay
    // time against growing backlogs. Median of 3 rounds per arm.
    let dur_jobs = if quick { 50 } else { 120 };
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let run_arm = |policy: Option<FsyncPolicy>| -> f64 {
        let rounds: Vec<f64> = (0..3)
            .map(|_| {
                let journal = policy.map(|fsync| {
                    let path = temp_journal("ab");
                    JournalConfig {
                        fsync,
                        ..JournalConfig::new(path)
                    }
                });
                let jps = durability_ab_run(workers, dur_jobs, journal.clone());
                if let Some(jc) = journal {
                    let _ = std::fs::remove_file(&jc.path);
                }
                jps
            })
            .collect();
        median(rounds)
    };
    let off_arm = run_arm(None);
    let batch_arm = run_arm(Some(FsyncPolicy::Batch(64)));
    let always_arm = run_arm(Some(FsyncPolicy::Always));
    eprintln!(
        "durability A/B: off {off_arm:.1} jobs/s | batch:64 {batch_arm:.1} jobs/s | always {always_arm:.1} jobs/s"
    );
    let backlogs: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let replay_rows: Vec<Json> = backlogs
        .iter()
        .map(|&backlog| {
            let ms = replay_ms_for_backlog(backlog);
            eprintln!("journal replay: {backlog} pending jobs in {ms:.2} ms");
            Json::obj(vec![
                ("backlog_jobs", Json::Num(backlog as f64)),
                ("replay_ms", Json::Num(ms)),
            ])
        })
        .collect();
    let durability = Json::obj(vec![
        ("jobs_each", Json::Num(dur_jobs as f64)),
        ("journal_off_jobs_per_sec", Json::Num(off_arm)),
        ("fsync_batch64_jobs_per_sec", Json::Num(batch_arm)),
        ("fsync_always_jobs_per_sec", Json::Num(always_arm)),
        ("replay", Json::Arr(replay_rows)),
    ]);

    // Two-tenant overload with admission control armed.
    let overload = overload_run(workers, quick);

    let doc = Json::obj(vec![
        ("schema", Json::Str("htforge.bench_server/v1".to_owned())),
        ("quick", Json::Bool(quick)),
        ("host_threads", Json::Num(host_threads as f64)),
        ("workers", Json::Num(workers as f64)),
        ("jobs_submitted", Json::Num(submitted as f64)),
        ("jobs_finished", Json::Num(stats.finished() as f64)),
        ("lost_jobs", Json::Num(lost as f64)),
        (
            "degraded_responses",
            Json::Num(stats.degraded_responses as f64),
        ),
        ("wall_secs", Json::Num(wall)),
        (
            "throughput_jobs_per_sec",
            Json::Num(submitted as f64 / wall),
        ),
        (
            "cache",
            Json::obj(vec![
                ("entries", Json::Num(cache_entries as f64)),
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("compiles", Json::Num(cache.compiles as f64)),
                ("hit_rate", Json::Num(cache_hit_rate)),
            ]),
        ),
        ("classes", Json::Arr(class_rows)),
        (
            "progress_ab",
            Json::obj(vec![
                ("jobs_each", Json::Num(ab_jobs as f64)),
                ("on_jobs_per_sec", Json::Num(on_jps)),
                ("off_jobs_per_sec", Json::Num(off_jps)),
                ("overhead_pct", Json::Num(overhead_pct)),
            ]),
        ),
        ("durability", durability),
        ("overload", overload),
    ]);
    std::fs::write(OUT_PATH, format!("{}\n", doc.pretty())).expect("write BENCH_server.json");
    eprintln!(
        "wrote {OUT_PATH} ({submitted} jobs, {lost} lost, {:.1} jobs/s, cache hit rate {:.2})",
        submitted as f64 / wall,
        cache_hit_rate,
    );
    assert_eq!(
        lost, 0,
        "every accepted job must produce a terminal response"
    );

    if htforge_obs::enabled() {
        let report = RunReport::from_recorder("bench_server", htforge_obs::global())
            .with_meta("host_threads", Json::Num(host_threads as f64))
            .with_meta("workers", Json::Num(workers as f64))
            .with_meta("jobs_submitted", Json::Num(submitted as f64))
            .with_meta("lost_jobs", Json::Num(lost as f64))
            .with_meta("cache_hit_rate", Json::Num(cache_hit_rate));
        let path = std::path::Path::new("results/report_bench_server.json");
        report.write_to(path).expect("write run report");
        eprintln!("wrote {}", path.display());
    }
}
