//! **Figure 2** — number of rare nodes for various rareness thresholds.
//!
//! The paper sweeps θ_RN ∈ {5, 10, 15, 20, 30} % over the ISCAS-85/89
//! benchmarks and reports the average fraction of nodes marked rare
//! (6.35 %, 11.63 %, 16.88 %, 24.19 %, 38.12 % respectively), selecting
//! θ = 20 % for the framework.
//!
//! ```sh
//! cargo run --release -p htforge-bench --bin fig2_rare_threshold [--full]
//! ```

use htforge_bench::{HarnessOpts, Table};
use htforge_sim::{PatternSet, RareNodeExtractor};

fn main() {
    let opts = HarnessOpts::from_env();
    let circuits = opts.circuits_or(&["c17", "c2670", "c3540", "s1423"]);
    let vectors = if opts.full { 10_000 } else { 4_000 };
    let thetas = [0.05, 0.10, 0.15, 0.20, 0.30];

    println!("Figure 2: rare nodes vs rareness threshold ({vectors} vectors)\n");
    let mut header = vec!["circuit".to_owned(), "nodes".to_owned()];
    header.extend(thetas.iter().map(|t| format!("θ={:.0}%", t * 100.0)));
    let mut table = Table::new(header);

    let mut fraction_sums = vec![0.0f64; thetas.len()];
    for name in &circuits {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let patterns = PatternSet::random(comb.inputs().len(), vectors, 0xF162);
        let mut row = vec![name.clone(), comb.node_count().to_string()];
        for (k, &theta) in thetas.iter().enumerate() {
            let rare = RareNodeExtractor::new(theta)
                .extract(&comb, &patterns)
                .expect("valid netlist");
            fraction_sums[k] += rare.len() as f64 / comb.node_count() as f64;
            row.push(rare.len().to_string());
        }
        table.row(row);
    }
    println!("{}", table.render());

    println!("average fraction of nodes marked rare:");
    for (k, &theta) in thetas.iter().enumerate() {
        println!(
            "  θ = {:>2.0}% → {:>5.2}% of nodes (paper: {:>5.2}%)",
            theta * 100.0,
            100.0 * fraction_sums[k] / circuits.len() as f64,
            [6.35, 11.63, 16.88, 24.19, 38.12][k],
        );
    }
    println!("\nShape check: the fraction grows monotonically with θ and");
    println!("θ = 20% marks roughly a quarter of all nodes — the paper's pick.");
}
