//! **Table V** — area-overhead analysis of generated trojan instances.
//!
//! The paper synthesizes worst-case (largest-q) infected netlists with
//! GENUS + Nangate 45 nm and reports percentage cell-area overhead,
//! which shrinks as the host circuit grows (5.4 % on c2670 down to
//! 0.23 % on c6288). We substitute the cell-area model of
//! [`htforge_netlist::area`] (see `DESIGN.md` §3).
//!
//! ```sh
//! cargo run --release -p htforge-bench --bin table5_area [--full]
//! ```

use htforge_atpg::PodemConfig;
use htforge_bench::{HarnessOpts, Table};
use htforge_core::{clique, CompatGraph, InsertionConfig, InsertionFramework};
use htforge_netlist::{AreaModel, AreaReport};
use htforge_sim::{PatternSet, RareNodeExtractor};

fn main() {
    let opts = HarnessOpts::from_env();
    let circuits = opts.circuits_or(&["c2670", "c3540", "s1423"]);
    let vectors = if opts.full { 10_000 } else { 4_000 };
    let model = AreaModel::nangate45();

    println!("Table V: worst-case trigger-logic area overhead\n");
    let mut table = Table::new(vec![
        "circuit",
        "gates",
        "trigger nodes",
        "ht gates",
        "orig area (µm²)",
        "overhead %",
    ]);

    for name in &circuits {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        // Worst case = the largest feasible clique.
        let patterns = PatternSet::random(comb.inputs().len(), vectors, 0x7AB5);
        let rare = RareNodeExtractor::new(0.20)
            .extract(&comb, &patterns)
            .expect("valid netlist");
        let graph = CompatGraph::build(&comb, &rare, PodemConfig::justify())
            .expect("combinational netlist");
        let upper = if opts.full { 192 } else { 48 };
        let q = clique::max_feasible_size(&graph, upper, 1).max(1);

        let config = InsertionConfig {
            theta: 0.20,
            num_vectors: vectors,
            trigger_nodes: q,
            num_instances: 1,
            seed: 0x7AB5,
            podem: PodemConfig::justify(),
            ..InsertionConfig::default()
        };
        let outcome = match InsertionFramework::new(config).run(&nl) {
            Ok(o) => o,
            Err(e) => {
                println!("{name}: skipped ({e})");
                continue;
            }
        };
        let design = &outcome.infected[0];
        let report = AreaReport::compare(&model, &nl, &design.netlist);
        table.row(vec![
            name.clone(),
            nl.gate_count().to_string(),
            design.trojan.trigger_node_count().to_string(),
            design.trojan.inserted_gate_count().to_string(),
            format!("{:.1}", report.original),
            format!("{:.2}", report.overhead_percent()),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper Table V): overhead is a few percent on small");
    println!("hosts and falls well below 1% as the host circuit grows.");
}
