//! Simulation-kernel throughput baseline: writes `BENCH_sim.json` at the
//! repository root.
//!
//! Three sections:
//!
//! * **Large batch** — for each circuit, patterns/second of the
//!   reference gate-at-a-time interpreter ([`htforge_bench::scalar`])
//!   and of the compiled [`SimProgram`] kernel at 1, 2 and
//!   `available_parallelism` threads over 16 384 random patterns. The
//!   compiled/max row on a ≥2000-gate circuit is the number the
//!   kernel's ≥2× acceptance bar is checked against.
//! * **Small batch** — 64-pattern (1-word) and 256-pattern (4-word)
//!   runs under every forced [`KernelStrategy`], the MERO/sequential
//!   regime where column parallelism alone degrades to one worker.
//! * **Wide lanes** — forced lane widths W∈{1,4,8} plus the unblocked
//!   plane at one thread over 2 048 patterns; every row records
//!   `patterns_per_sec` per `lane_width` and W=4/8 speedups over the
//!   W=1 narrow baseline.
//! * **Incremental** — a persistent `DeltaSim` session answering
//!   1-bit-flip queries against a 64-pattern base vs a full kernel run,
//!   with the average dirty-set size (`dirty_set_size` step-words) per
//!   row — the MERO / cube-validation regime.
//! * **MERO refinement** — `generate_tests` (compile per call) vs
//!   `generate_tests_with_sim` (one shared compiled tape) end to end on
//!   c2670.
//! * **Pattern append** — `PatternSet::extend_from` word-blit vs the
//!   per-bit path on a 10 000-pattern append (the MERO growth loop).
//!
//! Every row records `host_threads` and the planner's chosen strategy
//! so single-core-runner numbers are machine-detectable. When
//! `HTFORGE_OBS` is set, a run report goes to
//! `results/report_bench_sim.json` after the timed section — the
//! `sim.kernel_strategy` / `sim.kernel_threads_effective` gauges in it
//! come from one final 1-word c5315 planner run, not from the timings
//! (the recorder stays off while the clock is running).
//!
//! Run with `cargo run --release -p htforge-bench --bin bench_sim`
//! (`--quick` trims repetitions for CI).

use std::fmt::Write as _;
use std::time::Instant;

use htforge_obs::{Json, RunReport};
use htforge_sim::{KernelStrategy, PatternSet, SimProgram};

const VECTORS: usize = 16_384;
const APPEND_PATTERNS: usize = 10_000;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");

const ALL_STRATEGIES: [KernelStrategy; 4] = [
    KernelStrategy::Single,
    KernelStrategy::Column,
    KernelStrategy::Level,
    KernelStrategy::Hybrid,
];

/// Median seconds per run over `runs` timed repetitions (after one
/// untimed warm-up).
fn time_median<F: FnMut() -> usize>(runs: usize, mut f: F) -> f64 {
    let _ = f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            let sink = f();
            let dt = t.elapsed().as_secs_f64();
            assert!(sink > 0);
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut rows = Vec::new();

    // ---- Large batch: scalar vs compiled at 1/2/max threads --------
    for name in ["c2670", "c5315", "c6288", "s13207"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let prog = SimProgram::compile(&comb).expect("combinational");
        let patterns = PatternSet::random(comb.inputs().len(), VECTORS, 9);

        let runs = match (quick, comb.gate_count() > 5_000) {
            (true, _) => 3,
            (false, true) => 5,
            (false, false) => 9,
        };
        let scalar = time_median(runs, || {
            htforge_bench::scalar::simulate(&comb, &patterns).len()
        });
        let t1 = time_median(runs, || prog.run_with_threads(&patterns, 1).len());
        let t2 = time_median(runs, || prog.run_with_threads(&patterns, 2).len());
        let tmax = time_median(runs, || {
            prog.run_with_threads(&patterns, host_threads).len()
        });

        let pps = |sec: f64| VECTORS as f64 / sec;
        let strat = |threads: usize| prog.plan(VECTORS, threads).strategy.name();
        eprintln!(
            "{name}: {} gates | scalar {:.2e} pat/s | compiled 1t {:.2e} ({:.2}x) | 2t {:.2e} ({:.2}x) | {host_threads}t {:.2e} ({:.2}x)",
            comb.gate_count(),
            pps(scalar),
            pps(t1),
            scalar / t1,
            pps(t2),
            scalar / t2,
            pps(tmax),
            scalar / tmax,
        );

        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\n      \"bench\": \"large_batch\",\n      \"circuit\": \"{name}\",\n      \"gates\": {},\n      \"patterns\": {VECTORS},\n      \"host_threads\": {host_threads},\n      \"strategy\": {{\n        \"compiled_1t\": \"{}\",\n        \"compiled_2t\": \"{}\",\n        \"compiled_max\": \"{}\"\n      }},\n      \"patterns_per_sec\": {{\n        \"scalar\": {:.1},\n        \"compiled_1t\": {:.1},\n        \"compiled_2t\": {:.1},\n        \"compiled_max\": {:.1}\n      }},\n      \"speedup_vs_scalar\": {{\n        \"compiled_1t\": {:.2},\n        \"compiled_2t\": {:.2},\n        \"compiled_max\": {:.2}\n      }}\n    }}",
            comb.gate_count(),
            strat(1),
            strat(2),
            strat(host_threads),
            pps(scalar),
            pps(t1),
            pps(t2),
            pps(tmax),
            scalar / t1,
            scalar / t2,
            scalar / tmax,
        );
        rows.push(row);
    }

    // ---- Small batch: every strategy in the 1-word / 4-word regime -
    for name in ["c2670", "c5315"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let prog = SimProgram::compile(&nl).expect("combinational");
        for len in [64usize, 256] {
            let patterns = PatternSet::random(nl.inputs().len(), len, 7);
            let runs = if quick { 5 } else { 25 };
            let planner = prog.plan(len, host_threads);
            let mut speeds = Vec::new();
            for strategy in ALL_STRATEGIES {
                let sec = time_median(runs, || {
                    prog.run_with_strategy(&patterns, strategy, host_threads)
                        .len()
                });
                speeds.push((strategy.name(), len as f64 / sec));
            }
            eprintln!(
                "{name}/{len}p: planner {} ({} workers) | {}",
                planner.strategy.name(),
                planner.workers,
                speeds
                    .iter()
                    .map(|(s, v)| format!("{s} {v:.2e} pat/s"))
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            let per_strategy = speeds
                .iter()
                .map(|(s, v)| format!("        \"{s}\": {v:.1}"))
                .collect::<Vec<_>>()
                .join(",\n");
            let mut row = String::new();
            let _ = write!(
                row,
                "    {{\n      \"bench\": \"small_batch\",\n      \"circuit\": \"{name}\",\n      \"gates\": {},\n      \"patterns\": {len},\n      \"host_threads\": {host_threads},\n      \"strategy\": \"{}\",\n      \"strategy_workers\": {},\n      \"patterns_per_sec\": {{\n{per_strategy}\n      }}\n    }}",
                nl.gate_count(),
                planner.strategy.name(),
                planner.workers,
            );
            rows.push(row);
        }
    }

    // ---- Wide lanes: forced W=1/4/8 vs the unblocked plane ---------
    // Single-thread, ≥1024-pattern runs: the regime the W∈{4,8} blocked
    // executors are specified against. `lane_width` 0 is the planner's
    // production (unblocked variable-width) plane; 1 is the honest
    // narrow one-word baseline the wide widths are measured over.
    for name in ["c2670", "c5315", "c6288", "s13207"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let prog = SimProgram::compile(&comb).expect("combinational");
        let len = 2_048usize;
        let patterns = PatternSet::random(comb.inputs().len(), len, 21);
        let runs = if quick { 3 } else { 9 };
        let mut secs = Vec::new();
        for lanes in [0usize, 1, 4, 8] {
            let sec = time_median(runs, || prog.run_with_lanes(&patterns, lanes, 1).len());
            secs.push((lanes, sec));
        }
        let sec_of = |w: usize| secs.iter().find(|&&(l, _)| l == w).unwrap().1;
        let pps = |sec: f64| len as f64 / sec;
        eprintln!(
            "{name}/{len}p wide lanes: unblocked {:.2e} pat/s | w1 {:.2e} | w4 {:.2e} ({:.2}x) | w8 {:.2e} ({:.2}x)",
            pps(sec_of(0)),
            pps(sec_of(1)),
            pps(sec_of(4)),
            sec_of(1) / sec_of(4),
            pps(sec_of(8)),
            sec_of(1) / sec_of(8),
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\n      \"bench\": \"wide_lane\",\n      \"circuit\": \"{name}\",\n      \"gates\": {},\n      \"patterns\": {len},\n      \"host_threads\": {host_threads},\n      \"threads\": 1,\n      \"patterns_per_sec\": {{\n        \"lane_width_0\": {:.1},\n        \"lane_width_1\": {:.1},\n        \"lane_width_4\": {:.1},\n        \"lane_width_8\": {:.1}\n      }},\n      \"speedup_vs_w1\": {{\n        \"lane_width_4\": {:.2},\n        \"lane_width_8\": {:.2}\n      }}\n    }}",
            comb.gate_count(),
            pps(sec_of(0)),
            pps(sec_of(1)),
            pps(sec_of(4)),
            pps(sec_of(8)),
            sec_of(1) / sec_of(4),
            sec_of(1) / sec_of(8),
        );
        rows.push(row);
    }

    // ---- Incremental: 1-bit flip DeltaSim vs a full kernel run -----
    // The MERO / cube-validation regime: one 64-pattern word, one input
    // bit flipped per query. The session should settle the changed cone
    // in a small fraction of a full tape walk.
    for name in ["c2670", "c5315"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let prog = SimProgram::compile(&nl).expect("combinational");
        let len = 64usize;
        let patterns = PatternSet::random(nl.inputs().len(), len, 13);
        let runs = if quick { 25 } else { 101 };
        let full = time_median(runs, || prog.run(&patterns).len());

        let mut session = prog.delta_sim(patterns.clone());
        let num_inputs = nl.inputs().len();
        let mut turn = 0usize;
        let mut dirty_total = 0usize;
        let mut dirty_samples = 0usize;
        let delta = time_median(runs, || {
            let input = turn % num_inputs;
            turn += 1;
            let old = session.patterns().get(input, 17);
            session.set_input(input, 17, !old);
            match session.propagate() {
                htforge_sim::DeltaOutcome::Incremental { step_words } => {
                    dirty_total += step_words;
                    dirty_samples += 1;
                    step_words.max(1)
                }
                htforge_sim::DeltaOutcome::FullFallback => 1,
            }
        });
        let full_step_words = prog.steps() * PatternSet::words_for(len);
        let avg_dirty = if dirty_samples > 0 {
            dirty_total as f64 / dirty_samples as f64
        } else {
            0.0
        };
        eprintln!(
            "{name}/{len}p incremental: full {:.2e}s | 1-bit delta {:.2e}s ({:.1}% of full) | avg dirty {:.1}/{} step-words",
            full,
            delta,
            100.0 * delta / full,
            avg_dirty,
            full_step_words,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\n      \"bench\": \"incremental\",\n      \"circuit\": \"{name}\",\n      \"gates\": {},\n      \"patterns\": {len},\n      \"host_threads\": {host_threads},\n      \"dirty_set_size\": {avg_dirty:.1},\n      \"full_step_words\": {full_step_words},\n      \"seconds\": {{\n        \"full_run\": {full:.3e},\n        \"one_bit_delta\": {delta:.3e}\n      }},\n      \"delta_fraction_of_full\": {:.4}\n    }}",
            nl.gate_count(),
            delta / full,
        );
        rows.push(row);
    }

    // ---- MERO refinement: shared compiled tape vs per-call compile -
    // The campaign regime satellite: `generate_tests` pays a fresh
    // levelization + tape build per call, `generate_tests_with_sim`
    // reuses one compiled program (and its DeltaSim session machinery)
    // across the whole campaign.
    {
        use htforge_detect::{DetectionScheme, MeroDetection};
        use htforge_sim::{RareNodeExtractor, Simulator};

        let nl = htforge_circuits::load("c2670").expect("known circuit");
        let profile = PatternSet::random(nl.inputs().len(), 2_000, 1);
        let rare = RareNodeExtractor::new(0.25)
            .extract(&nl, &profile)
            .expect("profile");
        let mero = MeroDetection::new(2, if quick { 100 } else { 200 }, 42);
        let runs = if quick { 3 } else { 7 };
        let per_call = time_median(runs, || mero.generate_tests(&nl, &rare).unwrap().len());
        let sim = Simulator::new(&nl).expect("compiles");
        let shared = time_median(runs, || {
            mero.generate_tests_with_sim(&nl, &sim, &rare)
                .unwrap()
                .len()
        });
        eprintln!(
            "mero refinement c2670: per-call compile {:.3}s | shared tape {:.3}s ({:.2}x)",
            per_call,
            shared,
            per_call / shared,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\n      \"bench\": \"mero_refinement\",\n      \"circuit\": \"c2670\",\n      \"rare_events\": {},\n      \"host_threads\": {host_threads},\n      \"seconds\": {{\n        \"per_call_compile\": {per_call:.4},\n        \"shared_tape\": {shared:.4}\n      }},\n      \"speedup_shared_tape\": {:.2}\n    }}",
            rare.len(),
            per_call / shared,
        );
        rows.push(row);
    }

    // ---- Pattern append: extend_from word-blit vs per-bit ----------
    {
        let inputs = 64;
        let src = PatternSet::random(inputs, APPEND_PATTERNS, 3);
        let runs = if quick { 9 } else { 25 };
        // Unaligned destination (37 % 64 != 0): the shift-splice path,
        // which is the one MERO's growth loop actually hits.
        let per_bit = time_median(runs, || {
            let mut dst = PatternSet::random(inputs, 37, 4);
            dst.extend_from_per_bit(&src);
            dst.len()
        });
        let blit = time_median(runs, || {
            let mut dst = PatternSet::random(inputs, 37, 4);
            dst.extend_from(&src);
            dst.len()
        });
        eprintln!(
            "extend_from {APPEND_PATTERNS}p append: per-bit {:.2e} pat/s | blit {:.2e} pat/s ({:.1}x)",
            APPEND_PATTERNS as f64 / per_bit,
            APPEND_PATTERNS as f64 / blit,
            per_bit / blit,
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\n      \"bench\": \"patternset_extend\",\n      \"inputs\": {inputs},\n      \"patterns\": {APPEND_PATTERNS},\n      \"host_threads\": {host_threads},\n      \"patterns_per_sec\": {{\n        \"per_bit\": {:.1},\n        \"word_blit\": {:.1}\n      }},\n      \"speedup_word_blit\": {:.2}\n    }}",
            APPEND_PATTERNS as f64 / per_bit,
            APPEND_PATTERNS as f64 / blit,
            per_bit / blit,
        );
        rows.push(row);
    }

    let json = format!(
        "{{\n  \"bench\": \"simulation-kernel\",\n  \"command\": \"cargo run --release -p htforge-bench --bin bench_sim\",\n  \"host_threads\": {host_threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(OUT_PATH, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {OUT_PATH}");

    // ---- Run report (recorder enabled only after the timings) ------
    let _obs = htforge_obs::init_from_env();
    if htforge_obs::enabled() {
        let nl = htforge_circuits::load("c5315").expect("known circuit");
        let prog = SimProgram::compile(&nl).expect("combinational");
        let patterns = PatternSet::random(nl.inputs().len(), 64, 11);
        let plan = prog.plan(64, host_threads);
        let _ = prog.run_with_threads(&patterns, host_threads);
        // One forced wide run and one 1-bit delta propagate so the
        // sim.kernel_lanes gauge and the sim.delta_* counters/gauges
        // appear in the report alongside the strategy gauges.
        let wide = PatternSet::random(nl.inputs().len(), 1_024, 11);
        let _ = prog.run_with_lanes(&wide, 8, 1);
        let mut session = prog.delta_sim(patterns);
        let flipped = !session.patterns().get(0, 0);
        session.set_input(0, 0, flipped);
        let delta_outcome = session.propagate();
        let report = RunReport::from_recorder("bench_sim", htforge_obs::global())
            .with_meta("host_threads", Json::Num(host_threads as f64))
            .with_meta(
                "small_batch_strategy",
                Json::Str(plan.strategy.name().to_owned()),
            )
            .with_meta("small_batch_workers", Json::Num(plan.workers as f64))
            .with_meta(
                "lane_widths",
                Json::Arr(vec![
                    Json::Num(0.0),
                    Json::Num(1.0),
                    Json::Num(4.0),
                    Json::Num(8.0),
                ]),
            )
            .with_meta("delta_outcome", Json::Str(format!("{delta_outcome:?}")));
        let path = std::path::Path::new("results/report_bench_sim.json");
        report.write_to(path).expect("write run report");
        eprintln!("wrote {}", path.display());
    }
}
