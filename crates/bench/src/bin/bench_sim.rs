//! Simulation-kernel throughput baseline: writes `BENCH_sim.json` at the
//! repository root.
//!
//! For each circuit, measures patterns/second of the reference
//! gate-at-a-time interpreter ([`htforge_bench::scalar`]) and of the
//! compiled [`SimProgram`] kernel at 1, 2 and `available_parallelism`
//! threads, over 16 384 random patterns. The compiled/max row on a
//! ≥2000-gate circuit is the number the kernel's ≥2× acceptance bar is
//! checked against.
//!
//! Run with `cargo run --release -p htforge-bench --bin bench_sim`.

use std::fmt::Write as _;
use std::time::Instant;

use htforge_sim::{PatternSet, SimProgram};

const VECTORS: usize = 16_384;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");

/// Median seconds per run over `runs` timed repetitions (after one
/// untimed warm-up).
fn time_median<F: FnMut() -> usize>(runs: usize, mut f: F) -> f64 {
    let _ = f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            let sink = f();
            let dt = t.elapsed().as_secs_f64();
            assert!(sink > 0);
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // Opt-in only (`HTFORGE_OBS=...`): enabling the recorder here would
    // perturb the timings this baseline exists to pin down.
    let _obs = htforge_obs::init_from_env();
    let max_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut rows = Vec::new();

    for name in ["c2670", "c5315", "c6288", "s13207"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let prog = SimProgram::compile(&comb).expect("combinational");
        let patterns = PatternSet::random(comb.inputs().len(), VECTORS, 9);

        let runs = if comb.gate_count() > 5_000 { 5 } else { 9 };
        let scalar = time_median(runs, || {
            htforge_bench::scalar::simulate(&comb, &patterns).len()
        });
        let t1 = time_median(runs, || prog.run_with_threads(&patterns, 1).len());
        let t2 = time_median(runs, || prog.run_with_threads(&patterns, 2).len());
        let tmax = time_median(runs, || prog.run_with_threads(&patterns, max_threads).len());

        let pps = |sec: f64| VECTORS as f64 / sec;
        eprintln!(
            "{name}: {} gates | scalar {:.2e} pat/s | compiled 1t {:.2e} ({:.2}x) | 2t {:.2e} ({:.2}x) | {max_threads}t {:.2e} ({:.2}x)",
            comb.gate_count(),
            pps(scalar),
            pps(t1),
            scalar / t1,
            pps(t2),
            scalar / t2,
            pps(tmax),
            scalar / tmax,
        );

        let mut row = String::new();
        let _ = write!(
            row,
            "    {{\n      \"circuit\": \"{name}\",\n      \"gates\": {},\n      \"patterns\": {VECTORS},\n      \"patterns_per_sec\": {{\n        \"scalar\": {:.1},\n        \"compiled_1t\": {:.1},\n        \"compiled_2t\": {:.1},\n        \"compiled_max\": {:.1}\n      }},\n      \"speedup_vs_scalar\": {{\n        \"compiled_1t\": {:.2},\n        \"compiled_2t\": {:.2},\n        \"compiled_max\": {:.2}\n      }}\n    }}",
            comb.gate_count(),
            pps(scalar),
            pps(t1),
            pps(t2),
            pps(tmax),
            scalar / t1,
            scalar / t2,
            scalar / tmax,
        );
        rows.push(row);
    }

    let json = format!(
        "{{\n  \"bench\": \"simulation-kernel\",\n  \"command\": \"cargo run --release -p htforge-bench --bin bench_sim\",\n  \"max_threads\": {max_threads},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(OUT_PATH, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {OUT_PATH}");
}
