//! **Table III** — trojan insertion time (TT) of the three frameworks.
//!
//! The paper inserts 100 trojan instances per circuit with each framework
//! and reports wall-clock minutes: Random averages 53 736 min, RL 1 406
//! min (ISCAS-85 only, from Sarihi et al.), and the proposed framework
//! 1.42 min — speedups of 37 815× and 989× respectively.
//!
//! The dominant cost of the baselines is *validation*: a random (or
//! RL-proposed) rare-node subset must be shown jointly excitable by
//! simulation search, and almost all candidates fail. This harness
//! therefore runs each baseline inside a time box, counts validated
//! instances, and reports the **extrapolated time to 100 validated
//! instances** (`TT₁₀₀`); when a baseline validates *nothing* in its
//! box, a rule-of-three lower bound is printed. The proposed framework
//! simply runs to completion (it needs no validation) and reports its
//! measured time for 100 instances, plus a per-phase breakdown from the
//! pipeline spans.
//!
//! Absolute numbers depend on hardware and budgets; the reproducible
//! shape is the ordering random ≫ RL ≫ proposed with orders-of-magnitude
//! separation, and the much larger trigger counts (q) of the proposed
//! framework.
//!
//! Artifacts (see `DESIGN.md` §8): one `results/report_<circuit>.json`
//! run report per circuit covering the proposed framework's pipeline,
//! and `BENCH_table3.json` at the repo root holding both tables as JSON.
//!
//! ```sh
//! cargo run --release -p htforge-bench --bin table3_insertion_time [--full]
//! HTFORGE_OBS=summary,progress cargo run ... # live counters + exit summary
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use htforge_atpg::PodemConfig;
use htforge_baselines::{RandomInserter, RlConfig, RlInserter, ValidationBudget};
use htforge_bench::{minutes, HarnessOpts, Table};
use htforge_core::{clique, CompatGraph, InsertionConfig, InsertionFramework};
use htforge_obs::{Json, RunReport};
use htforge_sim::{PatternSet, RareNodeExtractor};

const TARGET_INSTANCES: usize = 100;
const REPO_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

/// Extrapolated minutes to `TARGET_INSTANCES` validated instances.
fn extrapolate(elapsed: Duration, produced: usize) -> (String, f64) {
    if produced == 0 {
        // Rule of three: with 0 successes observed, the success rate is
        // below 3/observations at 95 % confidence, so the expected time
        // to one success exceeds elapsed/3.
        let lower = elapsed.as_secs_f64() / 3.0 * TARGET_INSTANCES as f64;
        (
            format!(">{}", minutes(Duration::from_secs_f64(lower))),
            lower / 60.0,
        )
    } else {
        let t = elapsed.as_secs_f64() / produced as f64 * TARGET_INSTANCES as f64;
        (minutes(Duration::from_secs_f64(t)), t / 60.0)
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

fn main() {
    let _obs = htforge_obs::init_from_env();
    htforge_obs::global().enable();
    let opts = HarnessOpts::from_env();
    let circuits = opts.circuits_or(&["c2670", "c3540", "s1423"]);
    let mode = if opts.full { "full" } else { "scaled" };
    let vectors = if opts.full { 10_000 } else { 4_000 };
    let time_box = if opts.full {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(20)
    };
    let budget = ValidationBudget {
        vectors: if opts.full { 100_000 } else { 50_000 },
        batch: 4_096,
    };

    println!("Table III: extrapolated time to {TARGET_INSTANCES} validated instances");
    println!("(baselines time-boxed to {time_box:?} per circuit)\n");
    let mut table = Table::new(vec![
        "circuit",
        "rand q",
        "rand TT100(min)",
        "RL q",
        "RL TT100(min)",
        "prop q",
        "prop TT100(min)",
        "vs rand",
        "vs RL",
    ]);
    let mut phase_table = Table::new(vec![
        "circuit", "preproc", "rare", "compat", "clique", "insert", "validate", "total",
    ]);

    let mut avg = (0.0f64, 0.0f64, 0.0f64);
    for name in &circuits {
        // One run report per circuit: clear the spans and counters left
        // by the previous iteration, run the proposed pipeline, then
        // snapshot before the (untimed-phase) baselines muddy the water.
        htforge_obs::global().reset();
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };

        // --- proposed: run to completion at its feasible large q --------
        let probe_patterns = PatternSet::random(comb.inputs().len(), vectors, 0x733);
        let probe_rare = RareNodeExtractor::new(0.20)
            .extract(&comb, &probe_patterns)
            .expect("valid netlist");
        let probe_graph = CompatGraph::build(&comb, &probe_rare, PodemConfig::justify())
            .expect("combinational netlist");
        let q_prop = clique::max_feasible_size(&probe_graph, 64, 1).max(1);

        let prop_start = Instant::now();
        let prop_outcome = InsertionFramework::new(InsertionConfig {
            theta: 0.20,
            num_vectors: vectors,
            trigger_nodes: q_prop,
            num_instances: TARGET_INSTANCES,
            seed: 0x733,
            podem: PodemConfig::justify(),
            ..InsertionConfig::default()
        })
        .run(&nl);
        let prop_elapsed = prop_start.elapsed();
        let (prop_produced, prop_timings) = match &prop_outcome {
            Ok(o) => (o.infected.len(), Some(o.timings)),
            Err(_) => (0, None),
        };
        let (prop_tt, prop_min) = extrapolate(prop_elapsed, prop_produced);
        if let Some(t) = prop_timings {
            phase_table.row(vec![
                name.clone(),
                secs(t.preprocess),
                secs(t.rare_extraction),
                secs(t.compat_graph),
                secs(t.clique_enumeration),
                secs(t.insertion),
                secs(t.validation),
                secs(t.total()),
            ]);
        } else {
            let mut cells = vec![name.clone()];
            cells.extend((0..7).map(|_| "-".to_owned()));
            phase_table.row(cells);
        }

        let report = RunReport::from_recorder(&format!("table3_{name}"), htforge_obs::global())
            .with_meta("circuit", Json::Str(name.clone()))
            .with_meta("mode", Json::Str(mode.to_owned()))
            .with_meta("trigger_nodes", Json::Num(q_prop as f64))
            .with_meta("target_instances", Json::Num(TARGET_INSTANCES as f64))
            .with_meta("produced", Json::Num(prop_produced as f64));
        let path = PathBuf::from(REPO_ROOT).join(format!("results/report_{name}.json"));
        report.write_to(&path).expect("write run report");

        // --- random: time-boxed candidate/validate loop ------------------
        let q_rand = 10.min(probe_rare.len().max(4) / 2).max(2);
        let rand_start = Instant::now();
        let mut rand_produced = 0usize;
        let mut round = 0u64;
        while rand_start.elapsed() < time_box {
            let outcome = RandomInserter::new(q_rand, 1)
                .with_theta(0.20)
                .with_profile_vectors(vectors)
                .with_budget(budget)
                .with_max_attempts(5)
                .run(&nl, 0x733 + round);
            if let Ok(o) = outcome {
                rand_produced += o.infected.len();
            }
            round += 1;
            if rand_produced >= TARGET_INSTANCES {
                break;
            }
        }
        let (rand_tt, rand_min) = extrapolate(rand_start.elapsed(), rand_produced);

        // --- RL: time-boxed training/validation --------------------------
        let q_rl = 5.min(probe_rare.len()).max(2);
        let rl_start = Instant::now();
        let mut rl_produced = 0usize;
        let mut round = 0u64;
        while rl_start.elapsed() < time_box {
            // RL methods train to convergence: a full episode schedule is
            // paid per campaign regardless of early lucky finds.
            let outcome = RlInserter::new(RlConfig {
                trigger_nodes: q_rl,
                num_instances: TARGET_INSTANCES,
                episodes: if opts.full { 20_000 } else { 2_000 },
                theta: 0.20,
                profile_vectors: vectors,
                budget,
                ..RlConfig::default()
            })
            .run(&nl, 0x733 + round);
            if let Ok(o) = outcome {
                rl_produced += o.infected.len();
            }
            round += 1;
            if rl_produced >= TARGET_INSTANCES {
                break;
            }
        }
        let (rl_tt, rl_min) = extrapolate(rl_start.elapsed(), rl_produced);

        avg.0 += rand_min;
        avg.1 += rl_min;
        avg.2 += prop_min;
        table.row(vec![
            name.clone(),
            q_rand.to_string(),
            rand_tt,
            q_rl.to_string(),
            rl_tt,
            q_prop.to_string(),
            prop_tt,
            format!("{:.0}x", rand_min / prop_min.max(1e-9)),
            format!("{:.0}x", rl_min / prop_min.max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    println!("proposed framework per-phase breakdown (seconds):");
    println!("{}", phase_table.render());
    let n = circuits.len() as f64;
    println!(
        "averages (min): random {:.1}, RL {:.1}, proposed {:.3}",
        avg.0 / n,
        avg.1 / n,
        avg.2 / n
    );

    let doc = Json::obj(vec![
        ("table", Json::Str("table3_insertion_time".to_owned())),
        ("mode", Json::Str(mode.to_owned())),
        ("target_instances", Json::Num(TARGET_INSTANCES as f64)),
        ("rows", table.to_json()),
        ("phase_seconds", phase_table.to_json()),
    ]);
    let bench_path = PathBuf::from(REPO_ROOT).join("BENCH_table3.json");
    std::fs::write(&bench_path, doc.pretty()).expect("write BENCH_table3.json");
    println!(
        "wrote {} and results/report_<circuit>.json",
        bench_path.display()
    );

    println!("\nShape check (paper Table III): proposed ≪ RL ≪ random with");
    println!("orders-of-magnitude gaps, and far larger q for the proposed");
    println!("framework (paper: avg 53 736 / 1 406 / 1.42 min; 37 816x, 989x).");
}
