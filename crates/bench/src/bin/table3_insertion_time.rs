//! **Table III** — trojan insertion time (TT) of the three frameworks.
//!
//! The paper inserts 100 trojan instances per circuit with each framework
//! and reports wall-clock minutes: Random averages 53 736 min, RL 1 406
//! min (ISCAS-85 only, from Sarihi et al.), and the proposed framework
//! 1.42 min — speedups of 37 815× and 989× respectively.
//!
//! The dominant cost of the baselines is *validation*: a random (or
//! RL-proposed) rare-node subset must be shown jointly excitable by
//! simulation search, and almost all candidates fail. This harness
//! therefore runs each baseline inside a time box, counts validated
//! instances, and reports the **extrapolated time to 100 validated
//! instances** (`TT₁₀₀`); when a baseline validates *nothing* in its
//! box, a rule-of-three lower bound is printed. The proposed framework
//! simply runs to completion (it needs no validation) and reports its
//! measured time for 100 instances, plus a per-phase breakdown from the
//! pipeline spans.
//!
//! Absolute numbers depend on hardware and budgets; the reproducible
//! shape is the ordering random ≫ RL ≫ proposed with orders-of-magnitude
//! separation, and the much larger trigger counts (q) of the proposed
//! framework.
//!
//! The campaign is resilient (see `DESIGN.md` §9): each circuit runs
//! with panic isolation and writes a checkpoint
//! (`results/ckpt_table3_<circuit>.json`), `BENCH_table3.json` is
//! rewritten atomically after every circuit, and a killed run resumes
//! from its checkpoints (`--fresh` recomputes).
//!
//! Artifacts (see `DESIGN.md` §8): one `results/report_<circuit>.json`
//! run report per circuit covering the proposed framework's pipeline,
//! and `BENCH_table3.json` at the repo root holding both tables as JSON.
//!
//! ```sh
//! cargo run --release -p htforge-bench --bin table3_insertion_time [--full]
//! HTFORGE_OBS=summary,progress cargo run ... # live counters + exit summary
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use htforge_atpg::PodemConfig;
use htforge_baselines::{RandomInserter, RlConfig, RlInserter, ValidationBudget};
use htforge_bench::campaign::{row_strings, str_row, Campaign, CircuitOutcome};
use htforge_bench::{minutes, HarnessOpts, Table};
use htforge_core::{clique, CompatGraph, InsertionConfig, InsertionFramework};
use htforge_obs::{write_atomic, Json, RunReport};
use htforge_sim::{PatternSet, RareNodeExtractor};

const TARGET_INSTANCES: usize = 100;
const REPO_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

/// Extrapolated minutes to `TARGET_INSTANCES` validated instances.
fn extrapolate(elapsed: Duration, produced: usize) -> (String, f64) {
    if produced == 0 {
        // Rule of three: with 0 successes observed, the success rate is
        // below 3/observations at 95 % confidence, so the expected time
        // to one success exceeds elapsed/3.
        let lower = elapsed.as_secs_f64() / 3.0 * TARGET_INSTANCES as f64;
        (
            format!(">{}", minutes(Duration::from_secs_f64(lower))),
            lower / 60.0,
        )
    } else {
        let t = elapsed.as_secs_f64() / produced as f64 * TARGET_INSTANCES as f64;
        (minutes(Duration::from_secs_f64(t)), t / 60.0)
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

struct Params {
    mode: &'static str,
    full: bool,
    vectors: usize,
    time_box: Duration,
    budget: ValidationBudget,
}

/// Runs all three frameworks on one circuit; the returned payload is
/// everything needed to rebuild this circuit's table rows on resume.
fn run_circuit(name: &str, p: &Params) -> Result<Json, String> {
    // One run report per circuit: clear the spans and counters left by
    // the previous iteration, run the proposed pipeline, then snapshot
    // before the (untimed-phase) baselines muddy the water.
    htforge_obs::global().reset();
    let nl = htforge_circuits::load(name).map_err(|e| e.to_string())?;
    let comb = if nl.dffs().is_empty() {
        nl.clone()
    } else {
        nl.scan_cut()
    };

    // --- proposed: run to completion at its feasible large q --------
    let probe_patterns = PatternSet::random(comb.inputs().len(), p.vectors, 0x733);
    let probe_rare = RareNodeExtractor::new(0.20)
        .extract(&comb, &probe_patterns)
        .map_err(|e| e.to_string())?;
    let probe_graph = CompatGraph::build(&comb, &probe_rare, PodemConfig::justify())
        .map_err(|e| e.to_string())?;
    let q_prop = clique::max_feasible_size(&probe_graph, 64, 1).max(1);

    let prop_start = Instant::now();
    let prop_outcome = InsertionFramework::new(InsertionConfig {
        theta: 0.20,
        num_vectors: p.vectors,
        trigger_nodes: q_prop,
        num_instances: TARGET_INSTANCES,
        seed: 0x733,
        podem: PodemConfig::justify(),
        ..InsertionConfig::default()
    })
    .run(&nl);
    let prop_elapsed = prop_start.elapsed();
    let (prop_produced, prop_timings) = match &prop_outcome {
        Ok(o) => (o.infected.len(), Some(o.timings)),
        Err(_) => (0, None),
    };
    let (prop_tt, prop_min) = extrapolate(prop_elapsed, prop_produced);
    let phase_row: Vec<String> = if let Some(t) = prop_timings {
        vec![
            name.to_owned(),
            secs(t.preprocess),
            secs(t.rare_extraction),
            secs(t.compat_graph),
            secs(t.clique_enumeration),
            secs(t.insertion),
            secs(t.validation),
            secs(t.total()),
        ]
    } else {
        let mut cells = vec![name.to_owned()];
        cells.extend((0..7).map(|_| "-".to_owned()));
        cells
    };

    let report = RunReport::from_recorder(&format!("table3_{name}"), htforge_obs::global())
        .with_meta("circuit", Json::Str(name.to_owned()))
        .with_meta("mode", Json::Str(p.mode.to_owned()))
        .with_meta("trigger_nodes", Json::Num(q_prop as f64))
        .with_meta("target_instances", Json::Num(TARGET_INSTANCES as f64))
        .with_meta("produced", Json::Num(prop_produced as f64));
    let path = PathBuf::from(REPO_ROOT).join(format!("results/report_{name}.json"));
    report
        .write_to(&path)
        .map_err(|e| format!("write run report: {e}"))?;

    // --- random: time-boxed candidate/validate loop ------------------
    let q_rand = 10.min(probe_rare.len().max(4) / 2).max(2);
    let rand_start = Instant::now();
    let mut rand_produced = 0usize;
    let mut round = 0u64;
    while rand_start.elapsed() < p.time_box {
        let outcome = RandomInserter::new(q_rand, 1)
            .with_theta(0.20)
            .with_profile_vectors(p.vectors)
            .with_budget(p.budget)
            .with_max_attempts(5)
            .run(&nl, 0x733 + round);
        if let Ok(o) = outcome {
            rand_produced += o.infected.len();
        }
        round += 1;
        if rand_produced >= TARGET_INSTANCES {
            break;
        }
    }
    let (rand_tt, rand_min) = extrapolate(rand_start.elapsed(), rand_produced);

    // --- RL: time-boxed training/validation --------------------------
    let q_rl = 5.min(probe_rare.len()).max(2);
    let rl_start = Instant::now();
    let mut rl_produced = 0usize;
    let mut round = 0u64;
    while rl_start.elapsed() < p.time_box {
        // RL methods train to convergence: a full episode schedule is
        // paid per campaign regardless of early lucky finds.
        let outcome = RlInserter::new(RlConfig {
            trigger_nodes: q_rl,
            num_instances: TARGET_INSTANCES,
            episodes: if p.full { 20_000 } else { 2_000 },
            theta: 0.20,
            profile_vectors: p.vectors,
            budget: p.budget,
            ..RlConfig::default()
        })
        .run(&nl, 0x733 + round);
        if let Ok(o) = outcome {
            rl_produced += o.infected.len();
        }
        round += 1;
        if rl_produced >= TARGET_INSTANCES {
            break;
        }
    }
    let (rl_tt, rl_min) = extrapolate(rl_start.elapsed(), rl_produced);

    let row = vec![
        name.to_owned(),
        q_rand.to_string(),
        rand_tt,
        q_rl.to_string(),
        rl_tt,
        q_prop.to_string(),
        prop_tt,
        format!("{:.0}x", rand_min / prop_min.max(1e-9)),
        format!("{:.0}x", rl_min / prop_min.max(1e-9)),
    ];
    Ok(Json::obj(vec![
        ("row", str_row(&row)),
        ("phase_row", str_row(&phase_row)),
        ("rand_min", Json::Num(rand_min)),
        ("rl_min", Json::Num(rl_min)),
        ("prop_min", Json::Num(prop_min)),
    ]))
}

/// Rewrites `BENCH_table3.json` atomically from the rows so far.
fn write_bench(
    mode: &str,
    table: &Table,
    phase_table: &Table,
    failures: &[(String, String)],
    complete: bool,
) -> PathBuf {
    let doc = Json::obj(vec![
        ("table", Json::Str("table3_insertion_time".to_owned())),
        ("mode", Json::Str(mode.to_owned())),
        ("complete", Json::Bool(complete)),
        ("target_instances", Json::Num(TARGET_INSTANCES as f64)),
        ("rows", table.to_json()),
        ("phase_seconds", phase_table.to_json()),
        (
            "failures",
            Json::Arr(
                failures
                    .iter()
                    .map(|(circuit, error)| {
                        Json::obj(vec![
                            ("circuit", Json::Str(circuit.clone())),
                            ("error", Json::Str(error.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let bench_path = PathBuf::from(REPO_ROOT).join("BENCH_table3.json");
    if let Err(e) = write_atomic(&bench_path, &doc.pretty()) {
        eprintln!("warning: could not write {}: {e}", bench_path.display());
    }
    bench_path
}

fn main() {
    let _obs = htforge_obs::init_from_env();
    htforge_obs::global().enable();
    let opts = HarnessOpts::from_env();
    let circuits = opts.circuits_or(&["c2670", "c3540", "s1423"]);
    let params = Params {
        mode: if opts.full { "full" } else { "scaled" },
        full: opts.full,
        vectors: if opts.full { 10_000 } else { 4_000 },
        time_box: if opts.full {
            Duration::from_secs(300)
        } else {
            Duration::from_secs(20)
        },
        budget: ValidationBudget {
            vectors: if opts.full { 100_000 } else { 50_000 },
            batch: 4_096,
        },
    };

    println!("Table III: extrapolated time to {TARGET_INSTANCES} validated instances");
    println!(
        "(baselines time-boxed to {:?} per circuit)\n",
        params.time_box
    );
    let mut table = Table::new(vec![
        "circuit",
        "rand q",
        "rand TT100(min)",
        "RL q",
        "RL TT100(min)",
        "prop q",
        "prop TT100(min)",
        "vs rand",
        "vs RL",
    ]);
    let mut phase_table = Table::new(vec![
        "circuit", "preproc", "rare", "compat", "clique", "insert", "validate", "total",
    ]);

    let campaign = Campaign::new(
        "table3",
        PathBuf::from(REPO_ROOT).join("results"),
        opts.fresh,
    );
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut avg = (0.0f64, 0.0f64, 0.0f64);
    let mut completed = 0usize;
    for name in &circuits {
        match campaign.run_circuit(name, || run_circuit(name, &params)) {
            CircuitOutcome::Done { payload, resumed } => {
                if resumed {
                    println!("{name}: resumed from checkpoint");
                }
                table.row(row_strings(payload.get("row").unwrap_or(&Json::Null)));
                phase_table.row(row_strings(payload.get("phase_row").unwrap_or(&Json::Null)));
                for (field, slot) in [
                    ("rand_min", &mut avg.0),
                    ("rl_min", &mut avg.1),
                    ("prop_min", &mut avg.2),
                ] {
                    *slot += payload.get(field).and_then(Json::as_f64).unwrap_or(0.0);
                }
                completed += 1;
            }
            CircuitOutcome::Failed { error } => {
                eprintln!("{name}: FAILED: {error}");
                failures.push((name.clone(), error));
            }
        }
        // Partial-output integrity: the table on disk is always a valid
        // snapshot of the circuits graded so far.
        write_bench(
            params.mode,
            &table,
            &phase_table,
            &failures,
            failures.is_empty() && completed == circuits.len(),
        );
    }
    println!("{}", table.render());
    println!("proposed framework per-phase breakdown (seconds):");
    println!("{}", phase_table.render());
    if completed > 0 {
        let n = completed as f64;
        println!(
            "averages (min): random {:.1}, RL {:.1}, proposed {:.3}",
            avg.0 / n,
            avg.1 / n,
            avg.2 / n
        );
    }
    for (circuit, error) in &failures {
        println!("FAILED {circuit}: {error}");
    }

    let bench_path = write_bench(
        params.mode,
        &table,
        &phase_table,
        &failures,
        failures.is_empty() && completed == circuits.len(),
    );
    if failures.is_empty() {
        // A finished campaign consumes its checkpoints so the next
        // invocation measures from scratch; failures keep theirs absent
        // anyway (only successes checkpoint), so a re-run retries them.
        campaign.clear(&circuits);
    }
    println!(
        "wrote {} and results/report_<circuit>.json",
        bench_path.display()
    );

    println!("\nShape check (paper Table III): proposed ≪ RL ≪ random with");
    println!("orders-of-magnitude gaps, and far larger q for the proposed");
    println!("framework (paper: avg 53 736 / 1 406 / 1.42 min; 37 816x, 989x).");
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
