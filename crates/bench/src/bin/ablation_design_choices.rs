//! Ablations over the framework's design choices (see `DESIGN.md` §4):
//!
//! 1. **Cube mode** — Detect-mode PODEM cubes (the paper's literal
//!    stuck-at tests) carry propagation care bits that thin the
//!    compatibility graph; justify-only cubes need fewer care bits. This
//!    ablation measures graph density and build time under both.
//! 2. **Payload strategy** — most-observable vs random payload nets:
//!    effect on detection coverage *given* activation.
//! 3. **Trigger fan-in (k)** — trigger-tree gate count and area versus
//!    the paper's fan-in parameter.
//!
//! ```sh
//! cargo run --release -p htforge-bench --bin ablation_design_choices [--full]
//! ```

use htforge_atpg::{PodemConfig, PodemMode};
use htforge_bench::{HarnessOpts, Table};
use htforge_core::{
    CompatGraph, InsertionConfig, InsertionFramework, PayloadStrategy, TriggerPlan,
};
use htforge_detect::evaluate_designs;
use htforge_netlist::AreaModel;
use htforge_sim::{PatternSet, RareNodeExtractor};

fn main() {
    let opts = HarnessOpts::from_env();
    let circuit = opts
        .circuits
        .as_ref()
        .and_then(|c| c.first().cloned())
        .unwrap_or_else(|| "c2670".to_owned());
    let vectors = if opts.full { 10_000 } else { 4_000 };

    let nl = htforge_circuits::load(&circuit).expect("known circuit");
    let comb = if nl.dffs().is_empty() {
        nl.clone()
    } else {
        nl.scan_cut()
    };
    let patterns = PatternSet::random(comb.inputs().len(), vectors, 0xAB1A);
    let rare = RareNodeExtractor::new(0.20)
        .extract(&comb, &patterns)
        .expect("valid netlist");
    println!("ablations on {circuit} ({} rare nodes)\n", rare.len());

    // ---------------------------------------------------------------
    println!("1. PODEM cube mode → compatibility-graph shape");
    let mut t1 = Table::new(vec![
        "mode",
        "vertices",
        "dropped",
        "edges",
        "density %",
        "build (s)",
    ]);
    for (label, mode) in [
        ("justify", PodemMode::Justify),
        ("detect", PodemMode::Detect),
    ] {
        let config = PodemConfig {
            mode,
            ..PodemConfig::default()
        };
        let start = std::time::Instant::now();
        let graph = CompatGraph::build(&comb, &rare, config).expect("combinational");
        let elapsed = start.elapsed();
        let n = graph.len();
        let possible = n * n.saturating_sub(1) / 2;
        t1.row(vec![
            label.to_owned(),
            n.to_string(),
            graph.dropped().to_string(),
            graph.edge_count().to_string(),
            format!(
                "{:.1}",
                100.0 * graph.edge_count() as f64 / possible.max(1) as f64
            ),
            format!("{:.2}", elapsed.as_secs_f64()),
        ]);
    }
    println!("{}", t1.render());
    println!("Expected: detect-mode cubes are costlier to generate and their");
    println!("extra propagation care bits reduce edge density.\n");

    // ---------------------------------------------------------------
    println!("2. payload strategy → detection coverage given activation");
    let mut t2 = Table::new(vec!["strategy", "instances", "TC", "DC", "DC/TC %"]);
    for (label, strategy) in [
        ("most-observable", PayloadStrategy::MostObservable),
        ("random", PayloadStrategy::Random(9)),
    ] {
        let outcome = InsertionFramework::new(InsertionConfig {
            theta: 0.20,
            num_vectors: vectors,
            trigger_nodes: 8,
            num_instances: 10,
            seed: 5,
            podem: PodemConfig::justify(),
            payload: strategy,
            ..InsertionConfig::default()
        })
        .run(&nl)
        .expect("insertion succeeds");
        // Apply each trojan's own activation vector: TC is then 100 % and
        // DC isolates the payload-placement effect.
        let mut tests = PatternSet::zeros(comb.inputs().len(), 0);
        for d in &outcome.infected {
            tests.push(&d.trojan.activation_cube.fill_with(false));
            tests.push(&d.trojan.activation_cube.fill_with(true));
        }
        let report = evaluate_designs(&nl, &outcome.infected, &tests).expect("valid designs");
        let dc_given_tc = if report.triggered() == 0 {
            0.0
        } else {
            100.0 * report.detected() as f64 / report.triggered() as f64
        };
        t2.row(vec![
            label.to_owned(),
            report.total().to_string(),
            report.triggered().to_string(),
            report.detected().to_string(),
            format!("{dc_given_tc:.0}"),
        ]);
    }
    println!("{}", t2.render());
    println!("Expected: observable payloads convert nearly every activation");
    println!("into an output corruption; random payloads lose some.\n");

    // ---------------------------------------------------------------
    println!("3. trigger fan-in k → trigger-tree size and area");
    let model = AreaModel::nangate45();
    let mut t3 = Table::new(vec!["k", "q", "gates", "area (µm²)"]);
    let q = 32.min(rare.len());
    let rare_values: Vec<bool> = rare.iter().take(q).map(|r| r.rare_value).collect();
    for k in [2usize, 3, 4, 6, 8] {
        let plan = TriggerPlan::synthesize(&rare_values, k);
        let area: f64 = plan
            .gates()
            .iter()
            .map(|g| model.gate_area(g.kind, g.inputs.len()))
            .sum();
        t3.row(vec![
            k.to_string(),
            q.to_string(),
            plan.gates().len().to_string(),
            format!("{area:.2}"),
        ]);
    }
    println!("{}", t3.render());
    println!("Expected: larger fan-in shrinks the tree (fewer, wider gates)");
    println!("and lowers area — but each gate's rare-output probability");
    println!("1/2^k drops, which is why the paper uses moderate k.");
}
