//! Netlist-core scaling benchmark: writes `BENCH_netlist.json` at the
//! repository root.
//!
//! For each size in {10k, 100k, 1M} gates this builds a synthetic
//! three-level hierarchical design (`leaf` blocks of combinational
//! gates, `tile` modules chaining leaf instances, a top fanning out to
//! many tiles), then walks the full industrial-scale pipeline:
//!
//! 1. **flatten** — deterministic [`htforge_netlist::Design::flatten`]
//!    of the hierarchy into one interned SoA [`Netlist`],
//! 2. **parse** — the flat design is written to a `.bench` file on
//!    disk, the in-memory netlist is dropped, and the file is re-read
//!    through the streaming [`bench::parse_reader`] path (source text
//!    and built graph are never resident together),
//! 3. **levelize** — cached levelization of the parsed netlist,
//! 4. **rare_extract** — rare-node extraction at θ=0.2 over random
//!    patterns (the insertion pipeline's profiling step).
//!
//! Every row records wall seconds per phase, `Netlist::memory_bytes`
//! (the core columns' resident footprint) and the process peak RSS
//! (`VmHWM` from `/proc/self/status`), so near-linear scaling and the
//! memory budget are machine-checkable. With `HTFORGE_RSS_LIMIT_MB`
//! set, the run fails if peak RSS exceeds the ceiling — the CI
//! netlist-scale job uses this as a hard memory-budget gate.
//!
//! Run with `cargo run --release -p htforge-bench --bin bench_netlist`
//! (`--quick` trims the profiling vector count for CI).

use std::fmt::Write as _;
use std::io::BufReader;
use std::time::Instant;

use htforge_netlist::{bench, Atom, Design, GateKind, ModuleId, Netlist, NodeKind};
use htforge_sim::{PatternSet, RareNodeExtractor};

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netlist.json");
const THETA: f64 = 0.2;

/// Peak resident set size (`VmHWM`) in KiB from `/proc/self/status`,
/// or 0 on platforms without procfs.
fn rss_peak_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// One size point of the generator: `leaf_gates * leaves_per_tile *
/// tiles` total gates.
struct Shape {
    leaf_gates: usize,
    leaves_per_tile: usize,
    tiles: usize,
}

impl Shape {
    fn gates(&self) -> usize {
        self.leaf_gates * self.leaves_per_tile * self.tiles
    }
}

/// Builds the synthetic hierarchical design for `shape`.
///
/// The `leaf` module is a 4-in/4-out block of `leaf_gates` gates whose
/// fan-ins scatter over all earlier signals (wide, shallow cones). A
/// `tile` chains `leaves_per_tile` leaf instances. The top module fans
/// 8 primary inputs out to `tiles` parallel tile instances with
/// rotated port bindings and exposes every tile output, so depth stays
/// constant across sizes and width carries the scaling.
fn synth_design(shape: &Shape) -> (Design, ModuleId) {
    let mut d = Design::new(format!("synth_{}g", shape.gates()));

    // ---- leaf: 4 inputs, leaf_gates gates, last 4 outputs ----------
    let leaf = d.add_module("leaf").expect("fresh module name");
    let leaf_ins: Vec<Atom> = (0..4).map(|i| d.intern(&format!("i{i}"))).collect();
    for &p in &leaf_ins {
        d.add_port_in(leaf, p);
    }
    let mut sigs = leaf_ins;
    for g in 0..shape.leaf_gates {
        let out = d.intern(&format!("g{g}"));
        let kind = match g % 6 {
            0 => GateKind::Nand,
            1 => GateKind::Nor,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Xor,
            _ => GateKind::Not,
        };
        let a = sigs[(g * 7 + 3) % sigs.len()];
        let fanins = if kind == GateKind::Not {
            vec![a]
        } else {
            vec![a, sigs[(g * 13 + 1) % sigs.len()]]
        };
        d.add_cell(leaf, out, NodeKind::Gate(kind), fanins)
            .expect("legal leaf cell");
        sigs.push(out);
    }
    let leaf_outs: Vec<Atom> = sigs[sigs.len() - 4..].to_vec();
    for &p in &leaf_outs {
        d.add_port_out(leaf, p);
    }

    // ---- tile: chains leaves_per_tile leaf instances ---------------
    let tile = d.add_module("tile").expect("fresh module name");
    let tile_ins: Vec<Atom> = (0..4).map(|i| d.intern(&format!("t{i}"))).collect();
    for &p in &tile_ins {
        d.add_port_in(tile, p);
    }
    let mut feed = tile_ins;
    for k in 0..shape.leaves_per_tile {
        let inst = d.intern(&format!("l{k}"));
        let outs: Vec<Atom> = (0..4).map(|j| d.intern(&format!("n{k}_{j}"))).collect();
        d.add_instance(tile, inst, leaf, feed.clone(), outs.clone())
            .expect("port counts match");
        feed = outs;
    }
    for &p in &feed {
        d.add_port_out(tile, p);
    }

    // ---- top: tiles parallel tile instances, rotated bindings ------
    let top = d.add_module("top").expect("fresh module name");
    let top_ins: Vec<Atom> = (0..8).map(|i| d.intern(&format!("p{i}"))).collect();
    for &p in &top_ins {
        d.add_port_in(top, p);
    }
    for t in 0..shape.tiles {
        let inst = d.intern(&format!("u{t}"));
        let ins: Vec<Atom> = [0usize, 3, 5, 6]
            .iter()
            .map(|&r| top_ins[(t + r) % top_ins.len()])
            .collect();
        let outs: Vec<Atom> = (0..4).map(|j| d.intern(&format!("w{t}_{j}"))).collect();
        d.add_instance(top, inst, tile, ins, outs.clone())
            .expect("port counts match");
        for &p in &outs {
            d.add_port_out(top, p);
        }
    }
    (d, top)
}

/// Flatten + write-to-disk + streaming re-parse + levelize + rare
/// extract for one size point; returns the JSON row.
fn run_size(shape: &Shape, vectors: usize) -> String {
    let gates = shape.gates();

    let t = Instant::now();
    let (design, top) = synth_design(shape);
    let flat = design.flatten(top).expect("synthetic design flattens");
    let flatten_sec = t.elapsed().as_secs_f64();
    assert_eq!(flat.gate_count(), gates, "generator hit its gate target");

    // Write the flat design to disk, then drop every in-memory copy so
    // the streaming parse below never coexists with the source text.
    let path = std::env::temp_dir().join(format!("htforge_bench_netlist_{gates}.bench"));
    let text = bench::write(&flat);
    let bench_bytes = text.len();
    std::fs::write(&path, &text).expect("write temp .bench");
    drop(text);
    drop(flat);
    drop(design);

    let t = Instant::now();
    let file = std::fs::File::open(&path).expect("reopen temp .bench");
    let parsed: Netlist =
        bench::parse_reader(BufReader::new(file), &format!("synth_{gates}g")).expect("round-trips");
    let parse_sec = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    assert_eq!(parsed.gate_count(), gates, "parse preserved the gates");

    let t = Instant::now();
    let levels = parsed.levels().expect("acyclic");
    let depth = levels.iter().copied().max().unwrap_or(0) as u64 + 1;
    let levelize_sec = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let patterns = PatternSet::random(parsed.inputs().len(), vectors, 7);
    let rare = RareNodeExtractor::new(THETA)
        .extract(&parsed, &patterns)
        .expect("profiles");
    let rare_sec = t.elapsed().as_secs_f64();

    let memory_bytes = parsed.memory_bytes();
    let rss_kb = rss_peak_kb();
    eprintln!(
        "{gates} gates: flatten {flatten_sec:.3}s | parse {parse_sec:.3}s ({:.2e} gates/s) | levelize {levelize_sec:.3}s | rare {rare_sec:.3}s ({} rare) | {:.1} MB columns | peak RSS {} MB",
        gates as f64 / parse_sec,
        rare.len(),
        memory_bytes as f64 / 1e6,
        rss_kb / 1024,
    );

    let mut row = String::new();
    let _ = write!(
        row,
        "    {{\n      \"gates\": {gates},\n      \"nodes\": {},\n      \"levels\": {depth},\n      \"bench_bytes\": {bench_bytes},\n      \"memory_bytes\": {memory_bytes},\n      \"rss_peak_kb\": {rss_kb},\n      \"rare_nodes\": {},\n      \"profile_vectors\": {vectors},\n      \"gates_per_sec\": {{\n        \"parse\": {:.1},\n        \"levelize\": {:.1}\n      }},\n      \"seconds\": {{\n        \"flatten\": {flatten_sec:.4},\n        \"parse\": {parse_sec:.4},\n        \"levelize\": {levelize_sec:.4},\n        \"rare_extract\": {rare_sec:.4}\n      }}\n    }}",
        parsed.node_count(),
        rare.len(),
        gates as f64 / parse_sec,
        gates as f64 / levelize_sec,
    );
    row
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let vectors = if quick { 64 } else { 256 };
    let shapes = [
        Shape {
            leaf_gates: 50,
            leaves_per_tile: 10,
            tiles: 20,
        },
        Shape {
            leaf_gates: 50,
            leaves_per_tile: 10,
            tiles: 200,
        },
        Shape {
            leaf_gates: 50,
            leaves_per_tile: 10,
            tiles: 2_000,
        },
    ];

    let rows: Vec<String> = shapes.iter().map(|s| run_size(s, vectors)).collect();
    let json = format!(
        "{{\n  \"schema\": \"htforge.netlist_scaling/v1\",\n  \"bench\": \"netlist-scaling\",\n  \"command\": \"cargo run --release -p htforge-bench --bin bench_netlist\",\n  \"theta\": {THETA},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    htforge_obs::validate_any_str(&json).expect("self-describing document validates");
    std::fs::write(OUT_PATH, &json).expect("write BENCH_netlist.json");
    eprintln!("wrote {OUT_PATH}");

    if let Ok(limit_mb) = std::env::var("HTFORGE_RSS_LIMIT_MB") {
        let limit_mb: u64 = limit_mb.parse().expect("HTFORGE_RSS_LIMIT_MB is a number");
        let peak_mb = rss_peak_kb() / 1024;
        assert!(
            peak_mb <= limit_mb,
            "peak RSS {peak_mb} MB exceeds the {limit_mb} MB budget"
        );
        eprintln!("peak RSS {peak_mb} MB within the {limit_mb} MB budget");
    }
}
