//! **Figure 3** — number of rare nodes vs random-vector count.
//!
//! The paper shows that the rare-node count stabilizes once ~10 000
//! vectors have been simulated, motivating |V| = 10 000.
//!
//! ```sh
//! cargo run --release -p htforge-bench --bin fig3_rare_vectors [--full]
//! ```

use htforge_bench::{HarnessOpts, Table};
use htforge_sim::{PatternSet, RareNodeExtractor};

fn main() {
    let opts = HarnessOpts::from_env();
    let circuits = opts.circuits_or(&["c17", "c2670", "c3540", "s1423"]);
    let sweep: Vec<usize> = if opts.full {
        vec![100, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000]
    } else {
        vec![100, 500, 1_000, 2_000, 5_000, 10_000, 20_000]
    };
    let theta = 0.20;

    println!("Figure 3: rare nodes vs number of random test vectors (θ = 20%)\n");
    let mut header = vec!["circuit".to_owned()];
    header.extend(sweep.iter().map(|v| format!("|V|={v}")));
    let mut table = Table::new(header);

    for name in &circuits {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let mut row = vec![name.clone()];
        let mut last_two = (usize::MAX, usize::MAX);
        for &v in &sweep {
            let patterns = PatternSet::random(comb.inputs().len(), v, 0xF163);
            let rare = RareNodeExtractor::new(theta)
                .extract(&comb, &patterns)
                .expect("valid netlist");
            last_two = (last_two.1, rare.len());
            row.push(rare.len().to_string());
        }
        table.row(row);
        // Convergence check: the largest two sweep points agree within 2 %.
        let (a, b) = last_two;
        let drift = (a.abs_diff(b)) as f64 / b.max(1) as f64;
        if drift > 0.02 {
            println!(
                "note: {name} still drifting {:.1}% at the tail",
                drift * 100.0
            );
        }
    }
    println!("{}", table.render());
    println!("Shape check: counts settle by |V| ≈ 10 000, matching the paper's");
    println!("choice of a 10 000-vector profiling set.");
}
