//! Resilient campaign execution for the table binaries.
//!
//! A campaign is a loop over circuits where each iteration is expensive
//! (minutes at `--full` scale) and independent. This module makes that
//! loop survivable:
//!
//! * **Panic isolation** — a circuit whose pipeline panics (or whose
//!   closure returns `Err`) is recorded as failed and the campaign moves
//!   on; one bad circuit no longer loses the whole table.
//! * **Checkpoints** — each completed circuit writes an atomic JSON
//!   checkpoint (`results/ckpt_<campaign>_<circuit>.json`, schema
//!   [`CKPT_SCHEMA`]) holding the payload the binary needs to rebuild
//!   that circuit's table rows.
//! * **Resume** — a re-run loads existing checkpoints instead of
//!   recomputing, so a killed campaign continues where it stopped.
//!   `--fresh` discards checkpoints and recomputes everything.
//!
//! Failures are deliberately *not* checkpointed: a re-run retries them.

use std::io;
use std::path::{Path, PathBuf};

use htforge_obs::{isolate, parse_json, write_atomic, Json};

/// Schema tag stamped into every checkpoint document.
pub const CKPT_SCHEMA: &str = "htforge.campaign_ckpt/v1";

/// Per-circuit result of a campaign step.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitOutcome {
    /// The circuit completed — either computed now, or (`resumed`)
    /// loaded from a previous run's checkpoint.
    Done {
        /// The binary-defined payload (table rows, aggregates, …).
        payload: Json,
        /// True when the payload came from a checkpoint.
        resumed: bool,
    },
    /// The circuit's closure returned an error or panicked. Not
    /// checkpointed; a re-run retries it.
    Failed {
        /// The error or panic message.
        error: String,
    },
}

impl CircuitOutcome {
    /// The payload, if the circuit completed.
    #[must_use]
    pub fn payload(&self) -> Option<&Json> {
        match self {
            CircuitOutcome::Done { payload, .. } => Some(payload),
            CircuitOutcome::Failed { .. } => None,
        }
    }
}

/// Checkpointing, panic-isolating campaign driver.
pub struct Campaign {
    name: String,
    results_dir: PathBuf,
    fresh: bool,
}

impl Campaign {
    /// A campaign called `name` checkpointing under `results_dir`.
    /// With `fresh` set, existing checkpoints are discarded instead of
    /// resumed.
    pub fn new(name: &str, results_dir: impl Into<PathBuf>, fresh: bool) -> Self {
        Campaign {
            name: name.to_owned(),
            results_dir: results_dir.into(),
            fresh,
        }
    }

    /// Where `circuit`'s checkpoint lives.
    #[must_use]
    pub fn checkpoint_path(&self, circuit: &str) -> PathBuf {
        self.results_dir
            .join(format!("ckpt_{}_{circuit}.json", self.name))
    }

    /// Loads and validates `circuit`'s checkpoint, returning its
    /// payload. Any mismatch (schema, campaign, circuit) or parse
    /// failure is treated as "no checkpoint".
    #[must_use]
    pub fn load_checkpoint(&self, circuit: &str) -> Option<Json> {
        let text = std::fs::read_to_string(self.checkpoint_path(circuit)).ok()?;
        let doc = parse_json(&text).ok()?;
        if doc.get("schema").and_then(Json::as_str) != Some(CKPT_SCHEMA)
            || doc.get("campaign").and_then(Json::as_str) != Some(self.name.as_str())
            || doc.get("circuit").and_then(Json::as_str) != Some(circuit)
        {
            return None;
        }
        doc.get("payload").cloned()
    }

    fn write_checkpoint(&self, circuit: &str, payload: &Json) -> io::Result<()> {
        htforge_obs::faultpoint!(
            "checkpoint.write",
            io::Error::other("injected fault at `checkpoint.write`")
        );
        let doc = Json::obj(vec![
            ("schema", Json::Str(CKPT_SCHEMA.to_owned())),
            ("campaign", Json::Str(self.name.clone())),
            ("circuit", Json::Str(circuit.to_owned())),
            ("payload", payload.clone()),
        ]);
        write_atomic(&self.checkpoint_path(circuit), &doc.pretty())
    }

    /// Runs one circuit: resume from checkpoint if present (unless
    /// `fresh`), otherwise execute `f` with panic isolation and
    /// checkpoint its payload on success.
    pub fn run_circuit(
        &self,
        circuit: &str,
        f: impl FnOnce() -> Result<Json, String>,
    ) -> CircuitOutcome {
        if self.fresh {
            let _ = std::fs::remove_file(self.checkpoint_path(circuit));
        } else if let Some(payload) = self.load_checkpoint(circuit) {
            return CircuitOutcome::Done {
                payload,
                resumed: true,
            };
        }
        let result = isolate(&format!("circuit {circuit}"), || {
            htforge_obs::faultpoint!("campaign.circuit");
            f()
        });
        match result {
            Ok(Ok(payload)) => {
                if let Err(e) = self.write_checkpoint(circuit, &payload) {
                    // A lost checkpoint only degrades resume; the run
                    // itself succeeded, so carry on with a warning.
                    eprintln!(
                        "warning: checkpoint for `{circuit}` not written ({e}); \
                         a resumed run will recompute it"
                    );
                }
                CircuitOutcome::Done {
                    payload,
                    resumed: false,
                }
            }
            Ok(Err(error)) => CircuitOutcome::Failed { error },
            Err(panic_msg) => CircuitOutcome::Failed { error: panic_msg },
        }
    }

    /// Removes the checkpoints of `circuits` (called after the final
    /// table is written, so the next invocation starts clean).
    pub fn clear<S: AsRef<str>>(&self, circuits: &[S]) {
        for c in circuits {
            let _ = std::fs::remove_file(self.checkpoint_path(c.as_ref()));
        }
    }

    /// The directory checkpoints are written under.
    #[must_use]
    pub fn results_dir(&self) -> &Path {
        &self.results_dir
    }
}

/// Encodes one table row (a list of cells) as a JSON string array, the
/// form checkpoint payloads carry rows in.
#[must_use]
pub fn str_row(cells: &[String]) -> Json {
    Json::Arr(cells.iter().map(|c| Json::Str(c.clone())).collect())
}

/// Decodes a [`str_row`]-encoded row; non-string cells are dropped.
#[must_use]
pub fn row_strings(row: &Json) -> Vec<String> {
    row.as_arr()
        .unwrap_or(&[])
        .iter()
        .filter_map(|c| c.as_str().map(str::to_owned))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_campaign(tag: &str, fresh: bool) -> Campaign {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "htforge_campaign_{tag}_{}_{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        Campaign::new("testcamp", dir, fresh)
    }

    #[test]
    fn success_checkpoints_and_resumes() {
        let camp = temp_campaign("resume", false);
        let calls = Cell::new(0u32);
        let payload = Json::obj(vec![("x", Json::Num(7.0))]);
        let first = camp.run_circuit("c17", || {
            calls.set(calls.get() + 1);
            Ok(payload.clone())
        });
        assert_eq!(
            first,
            CircuitOutcome::Done {
                payload: payload.clone(),
                resumed: false
            }
        );
        assert!(camp.checkpoint_path("c17").exists());
        // A second campaign over the same directory resumes without
        // calling the closure.
        let camp2 = Campaign::new("testcamp", camp.results_dir(), false);
        let second = camp2.run_circuit("c17", || {
            calls.set(calls.get() + 100);
            Ok(Json::Null)
        });
        assert_eq!(
            second,
            CircuitOutcome::Done {
                payload,
                resumed: true
            }
        );
        assert_eq!(calls.get(), 1, "resume must not recompute");
        camp.clear(&["c17"]);
        assert!(!camp.checkpoint_path("c17").exists());
    }

    #[test]
    fn failure_is_not_checkpointed_and_is_retried() {
        let camp = temp_campaign("fail", false);
        let out = camp.run_circuit("c17", || Err("no cliques".to_owned()));
        assert_eq!(
            out,
            CircuitOutcome::Failed {
                error: "no cliques".to_owned()
            }
        );
        assert!(!camp.checkpoint_path("c17").exists());
        // The retry runs the closure again.
        let retried = camp.run_circuit("c17", || Ok(Json::Num(1.0)));
        assert!(matches!(
            retried,
            CircuitOutcome::Done { resumed: false, .. }
        ));
    }

    #[test]
    fn panic_is_isolated_into_a_failure() {
        let camp = temp_campaign("panic", false);
        let out = camp.run_circuit("c17", || panic!("boom"));
        match out {
            CircuitOutcome::Failed { error } => {
                assert!(error.contains("boom"), "got: {error}");
                assert!(error.contains("c17"), "got: {error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(!camp.checkpoint_path("c17").exists());
    }

    #[test]
    fn fresh_discards_the_checkpoint() {
        let camp = temp_campaign("fresh", false);
        camp.run_circuit("c17", || Ok(Json::Num(1.0)));
        assert!(camp.checkpoint_path("c17").exists());
        let fresh = Campaign::new("testcamp", camp.results_dir(), true);
        let out = fresh.run_circuit("c17", || Ok(Json::Num(2.0)));
        assert_eq!(
            out,
            CircuitOutcome::Done {
                payload: Json::Num(2.0),
                resumed: false
            }
        );
    }

    #[test]
    fn mismatched_checkpoint_is_ignored() {
        let camp = temp_campaign("mismatch", false);
        camp.run_circuit("c17", || Ok(Json::Num(1.0)));
        // A different campaign name must not pick it up.
        let other = Campaign::new("othercamp", camp.results_dir(), false);
        assert!(other.load_checkpoint("c17").is_none());
        // Corrupt the file: load treats it as absent.
        std::fs::write(camp.checkpoint_path("c17"), "{ not json").unwrap();
        assert!(camp.load_checkpoint("c17").is_none());
    }
}
