//! Criterion bench: end-to-end insertion time — proposed framework vs
//! the random and RL baselines (the Table III comparison, miniaturized).

use criterion::{criterion_group, criterion_main, Criterion};
use htforge_atpg::PodemConfig;
use htforge_baselines::{RandomInserter, RlConfig, RlInserter, ValidationBudget};
use htforge_core::{InsertionConfig, InsertionFramework};

fn bench_insertion(c: &mut Criterion) {
    let nl = htforge_circuits::load("c2670").expect("known circuit");
    let mut group = c.benchmark_group("insertion_time");
    group.sample_size(10);

    group.bench_function("proposed/c2670/q8/n3", |b| {
        let framework = InsertionFramework::new(InsertionConfig {
            theta: 0.20,
            num_vectors: 4_000,
            trigger_nodes: 8,
            num_instances: 3,
            seed: 1,
            podem: PodemConfig::justify(),
            ..InsertionConfig::default()
        });
        b.iter(|| framework.run(&nl).map(|o| o.infected.len()).unwrap_or(0));
    });

    group.bench_function("random/c2670/q4/n3", |b| {
        let inserter = RandomInserter::new(4, 3)
            .with_theta(0.20)
            .with_profile_vectors(4_000)
            .with_budget(ValidationBudget {
                vectors: 20_000,
                batch: 4_096,
            })
            .with_max_attempts(10);
        b.iter(|| inserter.run(&nl, 1).map(|o| o.infected.len()).unwrap_or(0));
    });

    group.bench_function("rl/c2670/q4/n3", |b| {
        let inserter = RlInserter::new(RlConfig {
            trigger_nodes: 4,
            num_instances: 3,
            episodes: 30,
            theta: 0.20,
            profile_vectors: 4_000,
            budget: ValidationBudget {
                vectors: 20_000,
                batch: 4_096,
            },
            ..RlConfig::default()
        });
        b.iter(|| inserter.run(&nl, 1).map(|o| o.infected.len()).unwrap_or(0));
    });

    group.finish();
}

criterion_group!(benches, bench_insertion);
criterion_main!(benches);
