//! Criterion bench: PODEM cube generation — the per-rare-event cost of
//! Algorithm 2's test-vector step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htforge_atpg::{Fault, Podem, PodemConfig};
use htforge_sim::{PatternSet, RareNodeExtractor};

fn bench_podem(c: &mut Criterion) {
    let mut group = c.benchmark_group("podem");
    for (name, mode_name, config) in [
        ("c2670", "justify", PodemConfig::justify()),
        ("c2670", "detect", PodemConfig::default()),
        ("c6288", "justify", PodemConfig::justify()),
    ] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let patterns = PatternSet::random(nl.inputs().len(), 4_000, 1);
        let rare = RareNodeExtractor::new(0.20)
            .extract(&nl, &patterns)
            .expect("valid netlist");
        let faults: Vec<Fault> = rare
            .iter()
            .take(32)
            .map(|r| Fault::for_rare_event(r.node, r.rare_value))
            .collect();
        assert!(!faults.is_empty(), "{name} should have rare nodes");
        let mut podem = Podem::new(&nl, config).expect("combinational");
        group.bench_function(
            BenchmarkId::from_parameter(format!("{name}/{mode_name}/32-faults")),
            |b| {
                b.iter(|| {
                    let mut found = 0usize;
                    for &fault in &faults {
                        if podem.generate(fault).is_test() {
                            found += 1;
                        }
                    }
                    found
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_podem);
criterion_main!(benches);
