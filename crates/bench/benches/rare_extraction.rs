//! Criterion bench: Algorithm 1 (rare-node extraction) throughput —
//! the profiling phase behind Figs. 2–3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htforge_sim::{PatternSet, RareNodeExtractor};

fn bench_rare_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("rare_extraction");
    for name in ["c17", "c2670", "c3540"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let patterns = PatternSet::random(nl.inputs().len(), 4_000, 1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| {
                RareNodeExtractor::new(0.20)
                    .extract(nl, &patterns)
                    .expect("valid netlist")
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rare_extraction);
criterion_main!(benches);
