//! Criterion bench: detection test-set generation — the Random, MERO and
//! ND-ATPG schemes whose outputs grade Table II.

use criterion::{criterion_group, criterion_main, Criterion};
use htforge_detect::{DetectionScheme, MeroDetection, NdAtpgDetection, RandomDetection};
use htforge_sim::{PatternSet, RareNodeExtractor};

fn bench_detection(c: &mut Criterion) {
    let nl = htforge_circuits::load("c2670").expect("known circuit");
    let patterns = PatternSet::random(nl.inputs().len(), 4_000, 1);
    let rare = RareNodeExtractor::new(0.20)
        .extract(&nl, &patterns)
        .expect("valid netlist");

    let mut group = c.benchmark_group("detection");
    group.sample_size(10);

    group.bench_function("random/c2670/10k", |b| {
        let scheme = RandomDetection::new(10_000, 7);
        b.iter(|| {
            scheme
                .generate_tests(&nl, &rare)
                .map(|t| t.len())
                .unwrap_or(0)
        });
    });

    group.bench_function("mero/c2670/n20", |b| {
        let scheme = MeroDetection::new(20, 500, 7);
        b.iter(|| {
            scheme
                .generate_tests(&nl, &rare)
                .map(|t| t.len())
                .unwrap_or(0)
        });
    });

    group.bench_function("ndatpg/c2670/n2", |b| {
        let scheme = NdAtpgDetection::new(2, 7);
        b.iter(|| {
            scheme
                .generate_tests(&nl, &rare)
                .map(|t| t.len())
                .unwrap_or(0)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
