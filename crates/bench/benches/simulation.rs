//! Criterion bench: bit-parallel simulation throughput — the substrate
//! every phase (profiling, MERO, coverage evaluation) stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use htforge_sim::{simulator::BoundSimulator, PatternSet};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    for name in ["c2670", "c6288", "s13207"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let sim = BoundSimulator::new(&comb).expect("combinational");
        let vectors = 4_096usize;
        let patterns = PatternSet::random(comb.inputs().len(), vectors, 9);
        group.throughput(Throughput::Elements(
            (vectors * comb.gate_count()) as u64,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.run(&patterns).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
