//! Criterion bench: bit-parallel simulation throughput — the substrate
//! every phase (profiling, MERO, coverage evaluation) stands on.
//!
//! Four variants per circuit:
//!
//! * `scalar` — the reference gate-at-a-time interpreter
//!   ([`htforge_bench::scalar`]), the pre-kernel baseline;
//! * `compiled/1t`, `compiled/2t`, `compiled/max` — the
//!   [`SimProgram`] instruction tape at fixed thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use htforge_sim::{PatternSet, SimProgram};

fn bench_simulation(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut group = c.benchmark_group("simulation");
    for name in ["c2670", "c6288", "s13207"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let prog = SimProgram::compile(&comb).expect("combinational");
        let vectors = 16_384usize;
        let patterns = PatternSet::random(comb.inputs().len(), vectors, 9);
        group.throughput(Throughput::Elements((vectors * comb.gate_count()) as u64));
        group.bench_with_input(BenchmarkId::new("scalar", name), &comb, |b, comb| {
            b.iter(|| htforge_bench::scalar::simulate(comb, &patterns).len());
        });
        for (label, threads) in [
            ("compiled/1t", 1),
            ("compiled/2t", 2),
            ("compiled/max", max_threads),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &prog, |b, prog| {
                b.iter(|| prog.run_with_threads(&patterns, threads).len());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
