//! Criterion bench: clique enumeration over the compatibility graph —
//! the `find_cliques(G, q, N)` step whose scalability Table IV reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htforge_atpg::PodemConfig;
use htforge_core::{clique, CompatGraph};
use htforge_sim::{PatternSet, RareNodeExtractor};

fn bench_clique_enum(c: &mut Criterion) {
    let nl = htforge_circuits::load("c2670").expect("known circuit");
    let patterns = PatternSet::random(nl.inputs().len(), 4_000, 1);
    let rare = RareNodeExtractor::new(0.20)
        .extract(&nl, &patterns)
        .expect("valid netlist");
    let graph = CompatGraph::build(&nl, &rare, PodemConfig::justify()).expect("combinational");
    let q = clique::max_feasible_size(&graph, 16, 1).max(2);

    let mut group = c.benchmark_group("clique_enum");
    for limit in [100usize, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("c2670/q{q}/N{limit}")),
            &limit,
            |b, &limit| {
                b.iter(|| clique::enumerate_cliques(&graph, q, limit, 1).len());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clique_enum);
criterion_main!(benches);
