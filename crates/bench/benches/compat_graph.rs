//! Criterion bench: compatibility-graph construction (Algorithm 2) —
//! cube generation plus the pairwise care-bit conflict matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htforge_atpg::PodemConfig;
use htforge_core::CompatGraph;
use htforge_sim::{PatternSet, RareNodeExtractor};

fn bench_compat_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("compat_graph");
    group.sample_size(10);
    for name in ["c17", "c2670"] {
        let nl = htforge_circuits::load(name).expect("known circuit");
        let patterns = PatternSet::random(nl.inputs().len(), 4_000, 1);
        let rare = RareNodeExtractor::new(0.20)
            .extract(&nl, &patterns)
            .expect("valid netlist");
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| {
                CompatGraph::build(nl, &rare, PodemConfig::justify())
                    .expect("combinational")
                    .edge_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compat_graph);
criterion_main!(benches);
