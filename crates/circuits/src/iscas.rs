//! Genuine (public-domain) ISCAS circuits that are small enough to embed.

use htforge_netlist::{bench, Netlist};

/// The `.bench` source of ISCAS-85 c17, the classic 6-NAND example.
pub const C17_BENCH: &str = "\
# c17 — ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// Builds ISCAS-85 c17.
///
/// # Examples
///
/// ```
/// let nl = htforge_circuits::iscas::c17();
/// assert_eq!(nl.gate_count(), 6);
/// ```
#[must_use]
pub fn c17() -> Netlist {
    bench::parse(C17_BENCH, "c17").expect("embedded c17 parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_structure() {
        let nl = c17();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
        assert!(nl.validate().is_ok());
    }
}
