//! Benchmark circuits for `htforge`.
//!
//! The paper evaluates on ISCAS-85 (c2670, c3540, c5315, c6288) and
//! ISCAS-89 (s1423, s13207, s15850, s35932). The original netlist files
//! are not redistributable here, so this crate supplies **calibrated
//! substitutes** (see `DESIGN.md` §3):
//!
//! * [`c17`](iscas::c17) — the real, tiny ISCAS-85 c17 (public domain,
//!   reproduced from the literature),
//! * [`multiplier`] — a real structural 16×16 carry-save array multiplier
//!   standing in for c6288 (which *is* a 16×16 multiplier),
//! * [`synth`] — a seeded synthetic netlist generator producing
//!   levelized, reconvergent random logic calibrated to the published
//!   gate/PI/PO/DFF counts of the remaining circuits.
//!
//! Every substitute is deterministic: the same name always yields the
//! same netlist, so experiment tables are reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! let nl = htforge_circuits::load("c2670")?;
//! assert_eq!(nl.inputs().len(), 233);
//! assert!(htforge_circuits::names().contains(&"c6288"));
//! # Ok::<(), htforge_circuits::CircuitError>(())
//! ```

pub mod iscas;
pub mod multiplier;
pub mod synth;

use std::fmt;

use htforge_netlist::Netlist;

/// Error returned by [`load`] for unknown circuit names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitError {
    name: String,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown circuit `{}` (known: {})",
            self.name,
            names().join(", ")
        )
    }
}

impl std::error::Error for CircuitError {}

/// Names of all built-in circuits: the full ISCAS-85/89 families
/// (`c17` is real, `c6288` is a real multiplier, the rest are calibrated
/// synthetic substitutes).
#[must_use]
pub fn names() -> Vec<&'static str> {
    vec![
        "c17", "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
        "c7552", "s1423", "s5378", "s9234", "s13207", "s15850", "s35932", "s38417", "s38584",
    ]
}

/// The eight circuits of the paper's evaluation tables.
#[must_use]
pub fn paper_benchmarks() -> Vec<&'static str> {
    vec![
        "c2670", "c3540", "c5315", "c6288", "s1423", "s13207", "s15850", "s35932",
    ]
}

/// Loads a built-in circuit by name.
///
/// # Errors
///
/// Returns [`CircuitError`] for names not in [`names`].
pub fn load(name: &str) -> Result<Netlist, CircuitError> {
    match name {
        "c17" => Ok(iscas::c17()),
        "c6288" => Ok(multiplier::multiplier("c6288", 16)),
        other => {
            let profile = synth::CircuitProfile::for_name(other).ok_or_else(|| CircuitError {
                name: other.to_owned(),
            })?;
            Ok(synth::generate(&profile))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_load_and_validate() {
        for name in names() {
            let nl = load(name).unwrap();
            assert!(nl.validate().is_ok(), "{name} invalid");
            assert_eq!(nl.name(), name);
        }
    }

    #[test]
    fn load_is_deterministic() {
        let a = htforge_netlist::bench::write(&load("c2670").unwrap());
        let b = htforge_netlist::bench::write(&load("c2670").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_name_errors() {
        let err = load("c9999").unwrap_err();
        assert!(err.to_string().contains("c9999"));
    }

    #[test]
    fn profiles_match_published_io_counts() {
        let expect: &[(&str, usize, usize, usize)] = &[
            ("c2670", 233, 140, 0),
            ("c3540", 50, 22, 0),
            ("c5315", 178, 123, 0),
            ("c6288", 32, 32, 0),
            ("s1423", 17, 5, 74),
            ("s13207", 62, 152, 638),
            ("s15850", 77, 150, 534),
            ("s35932", 35, 320, 1728),
        ];
        for &(name, pis, pos, dffs) in expect {
            let nl = load(name).unwrap();
            assert_eq!(nl.inputs().len(), pis, "{name} PIs");
            assert_eq!(nl.outputs().len(), pos, "{name} POs");
            assert_eq!(nl.dffs().len(), dffs, "{name} DFFs");
        }
    }
}
