//! Structural unsigned array multiplier — the c6288 substitute.
//!
//! ISCAS-85 c6288 is a 16×16 array multiplier; rather than approximating
//! it with random logic, we build a real carry-save array multiplier of
//! the same function. Its phenomenology matches the original where it
//! matters for the paper: deep carry chains, near-uniform internal signal
//! probabilities, and therefore very few rare nodes at low thresholds —
//! the reason Table III shows c6288 as the slowest insertion target.

use htforge_netlist::{GateKind, Netlist, NodeId};

/// A full adder built from 2-input gates: returns `(sum, carry)`.
fn full_adder(
    nl: &mut Netlist,
    tag: &str,
    x: NodeId,
    y: NodeId,
    z: Option<NodeId>,
) -> (NodeId, NodeId) {
    match z {
        None => {
            // Half adder.
            let sum = nl
                .add_gate(format!("{tag}_s"), GateKind::Xor, vec![x, y])
                .expect("fresh name");
            let carry = nl
                .add_gate(format!("{tag}_c"), GateKind::And, vec![x, y])
                .expect("fresh name");
            (sum, carry)
        }
        Some(z) => {
            let s1 = nl
                .add_gate(format!("{tag}_t"), GateKind::Xor, vec![x, y])
                .expect("fresh name");
            let sum = nl
                .add_gate(format!("{tag}_s"), GateKind::Xor, vec![s1, z])
                .expect("fresh name");
            let c1 = nl
                .add_gate(format!("{tag}_u"), GateKind::And, vec![x, y])
                .expect("fresh name");
            let c2 = nl
                .add_gate(format!("{tag}_v"), GateKind::And, vec![s1, z])
                .expect("fresh name");
            let carry = nl
                .add_gate(format!("{tag}_c"), GateKind::Or, vec![c1, c2])
                .expect("fresh name");
            (sum, carry)
        }
    }
}

/// Builds an unsigned `bits`×`bits` array multiplier named `name`.
///
/// Inputs are `a0..a{bits-1}` and `b0..b{bits-1}`; outputs are
/// `p0..p{2*bits-1}` with `p = a * b`.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Examples
///
/// ```
/// let nl = htforge_circuits::multiplier::multiplier("mul4", 4);
/// assert_eq!(nl.inputs().len(), 8);
/// assert_eq!(nl.outputs().len(), 8);
/// ```
#[must_use]
pub fn multiplier(name: &str, bits: usize) -> Netlist {
    assert!(bits > 0, "multiplier width must be positive");
    let mut nl = Netlist::new(name);
    let a: Vec<NodeId> = (0..bits).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..bits).map(|i| nl.add_input(format!("b{i}"))).collect();

    // Partial products pp[i][j] = a[j] AND b[i]  (row i weights 2^i).
    let pp = |nl: &mut Netlist, i: usize, j: usize| -> NodeId {
        nl.add_gate(format!("pp_{i}_{j}"), GateKind::And, vec![a[j], b[i]])
            .expect("fresh name")
    };

    let mut product: Vec<NodeId> = Vec::with_capacity(2 * bits);

    // Row 0 initializes the accumulator.
    let mut acc: Vec<NodeId> = (0..bits).map(|j| pp(&mut nl, 0, j)).collect();
    product.push(acc[0]);
    let mut high: Option<NodeId> = None;

    for i in 1..bits {
        // Add row i to acc shifted right by one; the shifted-in top bit is
        // the previous row's carry-out (absent on the first addition).
        let mut new_acc: Vec<NodeId> = Vec::with_capacity(bits);
        let mut carry: Option<NodeId> = None;
        for j in 0..bits {
            let addend1: Option<NodeId> = if j + 1 < bits { Some(acc[j + 1]) } else { high };
            let addend2 = pp(&mut nl, i, j);
            let tag = format!("fa_{i}_{j}");
            let (sum, cout) = match (addend1, carry) {
                (Some(x), Some(c)) => {
                    let (s, co) = full_adder(&mut nl, &tag, x, addend2, Some(c));
                    (s, Some(co))
                }
                (Some(x), None) => {
                    let (s, co) = full_adder(&mut nl, &tag, x, addend2, None);
                    (s, Some(co))
                }
                (None, Some(c)) => {
                    let (s, co) = full_adder(&mut nl, &tag, addend2, c, None);
                    (s, Some(co))
                }
                (None, None) => (addend2, None),
            };
            new_acc.push(sum);
            carry = cout;
        }
        high = carry;
        acc = new_acc;
        product.push(acc[0]);
    }

    // Remaining high bits of the product.
    for &s in acc.iter().skip(1) {
        product.push(s);
    }
    if let Some(h) = high {
        product.push(h);
    } else {
        // bits == 1: p1 = 0 never occurs because high is None only when
        // no addition happened; emit a constant-0 via AND(a0, NOT a0).
        let na = nl
            .add_gate("const0_n", GateKind::Not, vec![a[0]])
            .expect("fresh name");
        let zero = nl
            .add_gate("const0", GateKind::And, vec![a[0], na])
            .expect("fresh name");
        product.push(zero);
    }

    // Name-stable product outputs.
    for (k, &p) in product.iter().enumerate() {
        let alias = nl
            .add_gate(format!("p{k}"), GateKind::Buf, vec![p])
            .expect("fresh name");
        nl.mark_output(alias);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_sim::{simulator::BoundSimulator, PatternSet};

    fn check_products(bits: usize, cases: &[(u64, u64)]) {
        let nl = multiplier("m", bits);
        assert!(nl.validate().is_ok());
        let sim = BoundSimulator::new(&nl).unwrap();
        let vectors: Vec<Vec<bool>> = cases
            .iter()
            .map(|&(x, y)| {
                let mut v = Vec::with_capacity(2 * bits);
                for i in 0..bits {
                    v.push((x >> i) & 1 == 1);
                }
                for i in 0..bits {
                    v.push((y >> i) & 1 == 1);
                }
                v
            })
            .collect();
        let ps = PatternSet::from_vectors(2 * bits, &vectors);
        let vals = sim.run(&ps);
        for (pat, &(x, y)) in cases.iter().enumerate() {
            let mut p = 0u64;
            for k in 0..2 * bits {
                let out = nl.find(&format!("p{k}")).unwrap();
                if vals.value(out, pat) {
                    p |= 1 << k;
                }
            }
            assert_eq!(p, x * y, "{x} * {y}");
        }
    }

    #[test]
    fn mult4_exhaustive() {
        let cases: Vec<(u64, u64)> = (0..16).flat_map(|x| (0..16).map(move |y| (x, y))).collect();
        check_products(4, &cases);
    }

    #[test]
    fn mult8_spot_checks() {
        check_products(
            8,
            &[(0, 0), (255, 255), (17, 13), (128, 2), (99, 101), (1, 255)],
        );
    }

    #[test]
    fn mult16_spot_checks() {
        check_products(
            16,
            &[(65535, 65535), (12345, 54321), (0, 65535), (32768, 2)],
        );
    }

    #[test]
    fn mult16_size_is_c6288_like() {
        let nl = multiplier("c6288", 16);
        assert_eq!(nl.inputs().len(), 32);
        assert_eq!(nl.outputs().len(), 32);
        // c6288 has 2406 gates; the carry-save construction lands in the
        // same ballpark (within 2x).
        assert!(
            (1200..=4800).contains(&nl.gate_count()),
            "gate count {}",
            nl.gate_count()
        );
    }

    #[test]
    fn mult1_edge_case() {
        check_products(1, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
    }
}
