//! Seeded synthetic netlist generator calibrated to ISCAS statistics.
//!
//! The generator produces levelized, reconvergent random logic with a
//! realistic gate-kind mix and locality-biased fan-in selection (recent
//! signals are preferred, creating depth and reconvergence). Dangling
//! signals are folded into per-output collector trees so every internal
//! node is observable, as in the real benchmarks.
//!
//! Calibration targets ([`CircuitProfile::for_name`]) use the published
//! PI/PO/DFF/gate counts of the ISCAS-85/89 circuits the paper evaluates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use htforge_netlist::{GateKind, Netlist, NodeId};

/// Structural targets for one synthetic circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Design name (also used to derive the RNG seed).
    pub name: String,
    /// Primary-input count.
    pub inputs: usize,
    /// Primary-output count.
    pub outputs: usize,
    /// Combinational gate budget (collector trees included).
    pub gates: usize,
    /// D flip-flop count (0 for combinational profiles).
    pub dffs: usize,
    /// RNG seed; fixed per profile for reproducibility.
    pub seed: u64,
}

impl CircuitProfile {
    /// The calibrated profile for a known ISCAS name, if any.
    ///
    /// c17 and c6288 are *not* profiles — they are built exactly
    /// ([`crate::iscas::c17`], [`crate::multiplier::multiplier`]).
    #[must_use]
    pub fn for_name(name: &str) -> Option<CircuitProfile> {
        let (inputs, outputs, gates, dffs, seed) = match name {
            // The paper's evaluation circuits.
            "c2670" => (233, 140, 1193, 0, 0x2670),
            "c3540" => (50, 22, 1669, 0, 0x3540),
            "c5315" => (178, 123, 2307, 0, 0x5315),
            "s1423" => (17, 5, 657, 74, 0x1423),
            "s13207" => (62, 152, 7951, 638, 0x13207),
            "s15850" => (77, 150, 9772, 534, 0x15850),
            "s35932" => (35, 320, 16065, 1728, 0x35932),
            // The remaining ISCAS-85/89 members, for broader campaigns.
            "c432" => (36, 7, 160, 0, 0x432),
            "c499" => (41, 32, 202, 0, 0x499),
            "c880" => (60, 26, 383, 0, 0x880),
            "c1355" => (41, 32, 546, 0, 0x1355),
            "c1908" => (33, 25, 880, 0, 0x1908),
            "c7552" => (207, 108, 3512, 0, 0x7552),
            "s5378" => (35, 49, 2779, 179, 0x5378),
            "s9234" => (36, 39, 5597, 211, 0x9234),
            "s38417" => (28, 106, 22179, 1636, 0x38417),
            "s38584" => (38, 304, 19253, 1426, 0x38584),
            _ => return None,
        };
        Some(CircuitProfile {
            name: name.to_owned(),
            inputs,
            outputs,
            gates,
            dffs,
            seed,
        })
    }
}

/// Draws a gate kind from an ISCAS-like distribution
/// (NAND-heavy, some inverters, occasional XOR).
fn draw_kind(rng: &mut StdRng) -> GateKind {
    // Inverting 2-input gates dominate (as in technology-mapped ISCAS
    // netlists); they keep signal probabilities re-centered so rare
    // nodes stay a *minority*, matching the paper's Fig. 2 calibration
    // (≈6 % of nodes rare at θ = 5 %, ≈24 % at θ = 20 %).
    match rng.gen_range(0..100) {
        0..=33 => GateKind::Nand,
        34..=53 => GateKind::Nor,
        54..=61 => GateKind::And,
        62..=69 => GateKind::Or,
        70..=77 => GateKind::Not,
        78..=81 => GateKind::Buf,
        82..=92 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// Picks a fan-in signal with locality bias: mostly from the most recent
/// window of signals (deep, chained logic), sometimes uniformly (global
/// reconvergence).
fn draw_fanin(rng: &mut StdRng, pool: &[NodeId]) -> NodeId {
    let window = 128.min(pool.len());
    if rng.gen_bool(0.5) && pool.len() > window {
        pool[pool.len() - window + rng.gen_range(0..window)]
    } else {
        pool[rng.gen_range(0..pool.len())]
    }
}

/// Generates a netlist matching `profile`.
///
/// The generator is deterministic in the profile (name, counts, seed).
/// The emitted netlist always validates and has exactly the profile's
/// input/output/DFF counts; the gate count matches the profile exactly
/// (collector trees are budgeted in).
///
/// # Panics
///
/// Panics if the profile is degenerate (no inputs, no outputs, or a gate
/// budget too small to connect the outputs).
#[must_use]
pub fn generate(profile: &CircuitProfile) -> Netlist {
    assert!(profile.inputs > 0, "profile needs at least one input");
    assert!(profile.outputs > 0, "profile needs at least one output");
    assert!(
        profile.gates >= 2 * profile.outputs,
        "gate budget too small for the output count"
    );
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut nl = Netlist::new(profile.name.clone());

    let mut pool: Vec<NodeId> = (0..profile.inputs)
        .map(|i| nl.add_input(format!("pi{i}")))
        .collect();
    let dffs: Vec<NodeId> = (0..profile.dffs)
        .map(|i| {
            nl.add_dff_deferred(format!("ff{i}"))
                .expect("fresh dff name")
        })
        .collect();
    pool.extend(&dffs);

    // Reserve budget for the collector trees wired up at the end: each
    // output gets one collector gate, and dangling signals are absorbed by
    // additional collector stages. Estimate the dangling count as ~30 % of
    // core gates and reserve conservatively; the loop below adapts.
    let core_budget = profile.gates - profile.outputs;

    // Approximate signal probabilities (independence assumption), used to
    // keep the logic information-dense: real designs hold most signals
    // near p = 0.5, with a *minority* of rare nodes — the Fig. 2 profile.
    let mut prob: Vec<f64> = vec![0.5; nl.node_count()];

    let mut core_gates = 0usize;
    while core_gates < core_budget {
        let arity = {
            // Mostly 2-input, occasionally 3 or 4 — the ISCAS mix.
            // (High fan-in AND/NOR chains would skew probabilities and
            // over-produce rare nodes.)
            match rng.gen_range(0..20) {
                0..=15 => 2,
                16..=18 => 3,
                _ => 4,
            }
        };
        let mut fanins = Vec::with_capacity(arity);
        for _ in 0..arity {
            fanins.push(draw_fanin(&mut rng, &pool));
        }
        fanins.dedup();
        // Draw a kind, rejecting choices that drive the estimated output
        // probability into the degenerate tails; a small acceptance leak
        // keeps genuinely rare nodes in the population.
        let fanin_probs: Vec<f64> = fanins.iter().map(|f| prob[f.index()]).collect();
        // A unary draw keeps only the first fan-in, yielding the
        // inverters/buffers real netlists contain.
        let effective = |k: GateKind| -> f64 {
            let probs = if k.is_unary() {
                &fanin_probs[..1]
            } else {
                &fanin_probs[..]
            };
            estimate_probability(k, probs)
        };
        let mut kind = draw_kind(&mut rng);
        for _ in 0..4 {
            if (0.04..=0.96).contains(&effective(kind)) || rng.gen_bool(0.07) {
                break;
            }
            kind = draw_kind(&mut rng);
        }
        let p_out = effective(kind);
        if kind.is_unary() {
            fanins.truncate(1);
        }
        let id = nl
            .add_gate(format!("g{core_gates}"), kind, fanins)
            .expect("fresh gate name");
        pool.push(id);
        prob.push(p_out);
        debug_assert_eq!(prob.len(), nl.node_count());
        core_gates += 1;
        // Leave room for collectors over the *current* dangling estimate.
        if core_gates + collector_cost(&nl, profile.outputs) >= profile.gates {
            break;
        }
    }

    // Connect DFF D inputs to late signals (state feedback).
    for &ff in &dffs {
        let d = pool[rng.gen_range(pool.len() / 2..pool.len())];
        nl.connect_dff(ff, d).expect("dff connects once");
    }

    // Collector trees: absorb every dangling signal into XOR/OR chains,
    // one chain per primary output, so the whole circuit is observable.
    let mut dangling: Vec<NodeId> = nl
        .node_ids()
        .filter(|&id| nl.node(id).fanouts().is_empty())
        .collect();
    // Round-robin distribute into `outputs` buckets.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); profile.outputs];
    for (k, id) in dangling.drain(..).enumerate() {
        buckets[k % profile.outputs].push(id);
    }
    let mut collector_count = 0usize;
    for (o, bucket) in buckets.into_iter().enumerate() {
        let mut acc: Option<NodeId> = None;
        let mut members = bucket;
        if members.is_empty() {
            members.push(pool[rng.gen_range(0..pool.len())]);
        }
        for chunk in members.chunks(3) {
            let mut fanins: Vec<NodeId> = chunk.to_vec();
            if let Some(a) = acc {
                fanins.push(a);
            }
            fanins.dedup();
            let kind = if rng.gen_bool(0.6) {
                GateKind::Xor
            } else {
                GateKind::Or
            };
            let kind = if fanins.len() == 1 {
                GateKind::Buf
            } else {
                kind
            };
            let id = nl
                .add_gate(format!("po_col{o}_{collector_count}"), kind, fanins)
                .expect("fresh collector name");
            collector_count += 1;
            acc = Some(id);
        }
        nl.mark_output(acc.expect("collector built"));
    }

    debug_assert!(nl.validate().is_ok());
    nl
}

/// Signal probability of a gate output under input independence.
fn estimate_probability(kind: GateKind, fanin_probs: &[f64]) -> f64 {
    let p_and: f64 = fanin_probs.iter().product();
    let p_or: f64 = 1.0 - fanin_probs.iter().map(|p| 1.0 - p).product::<f64>();
    match kind {
        GateKind::And => p_and,
        GateKind::Nand => 1.0 - p_and,
        GateKind::Or => p_or,
        GateKind::Nor => 1.0 - p_or,
        GateKind::Not => 1.0 - fanin_probs[0],
        GateKind::Buf => fanin_probs[0],
        GateKind::Xor | GateKind::Xnor => {
            let p_odd = fanin_probs
                .iter()
                .fold(0.0f64, |acc, &p| acc * (1.0 - p) + (1.0 - acc) * p);
            if kind == GateKind::Xor {
                p_odd
            } else {
                1.0 - p_odd
            }
        }
    }
}

/// Rough upper bound on collector gates needed right now: one gate per
/// three dangling signals plus one per output.
fn collector_cost(nl: &Netlist, outputs: usize) -> usize {
    let dangling = nl
        .node_ids()
        .filter(|&id| nl.node(id).fanouts().is_empty())
        .count();
    dangling / 3 + outputs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile() -> CircuitProfile {
        CircuitProfile {
            name: "synth_small".into(),
            inputs: 12,
            outputs: 4,
            gates: 200,
            dffs: 0,
            seed: 99,
        }
    }

    #[test]
    fn generated_netlist_validates() {
        let nl = generate(&small_profile());
        assert!(nl.validate().is_ok());
        assert_eq!(nl.inputs().len(), 12);
        assert_eq!(nl.outputs().len(), 4);
    }

    #[test]
    fn gate_count_close_to_budget() {
        let p = small_profile();
        let nl = generate(&p);
        let count = nl.gate_count();
        assert!(
            count >= p.gates / 2 && count <= p.gates + p.gates / 4,
            "gate count {count} vs budget {}",
            p.gates
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = htforge_netlist::bench::write(&generate(&small_profile()));
        let b = htforge_netlist::bench::write(&generate(&small_profile()));
        assert_eq!(a, b);
        let mut p = small_profile();
        p.seed = 100;
        let c = htforge_netlist::bench::write(&generate(&p));
        assert_ne!(a, c);
    }

    #[test]
    fn everything_is_observable() {
        let nl = generate(&small_profile());
        // Every non-output node has a fanout.
        for (id, node) in nl.iter() {
            if !nl.is_output(id) {
                assert!(!node.fanouts().is_empty(), "{} is dangling", node.name());
            }
        }
    }

    #[test]
    fn sequential_profile_connects_all_dffs() {
        let p = CircuitProfile {
            name: "synth_seq".into(),
            inputs: 8,
            outputs: 3,
            gates: 150,
            dffs: 10,
            seed: 5,
        };
        let nl = generate(&p);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.dffs().len(), 10);
        for &ff in nl.dffs() {
            assert_eq!(nl.node(ff).fanins().len(), 1);
        }
        // Scan-cut is a valid combinational netlist.
        assert!(nl.scan_cut().validate().is_ok());
    }

    #[test]
    fn known_profiles_exist() {
        for name in [
            "c2670", "c3540", "c5315", "s1423", "s13207", "s15850", "s35932",
        ] {
            assert!(CircuitProfile::for_name(name).is_some(), "{name}");
        }
        assert!(CircuitProfile::for_name("c6288").is_none());
    }

    #[test]
    #[should_panic(expected = "gate budget")]
    fn degenerate_profile_panics() {
        let p = CircuitProfile {
            name: "bad".into(),
            inputs: 2,
            outputs: 10,
            gates: 5,
            dffs: 0,
            seed: 0,
        };
        let _ = generate(&p);
    }
}
