//! Integration tests: the JSONL sink round-trip and global-recorder
//! behavior exercised the way binaries use them.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use htforge_obs::{parse_json, Event, InMemorySink, Json, JsonlSink, Recorder, RunReport};

/// A `Write` impl backed by a shared buffer, so the test can read what
/// the JSONL sink wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_sink_round_trips_through_the_parser() {
    let rec = Recorder::new();
    rec.enable();
    let buf = SharedBuf::default();
    rec.add_sink(Box::new(JsonlSink::new(Box::new(buf.clone()))));

    let outer = rec.span("compat_graph");
    rec.span("podem").finish();
    outer.finish();
    rec.counter("podem.backtracks").add(17);
    rec.gauge("sim.kernel_words_per_sec").set(2.5e7);
    rec.emit_snapshot();
    rec.flush();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "two spans + one snapshot:\n{text}");

    let docs: Vec<Json> = lines.iter().map(|l| parse_json(l).unwrap()).collect();
    assert_eq!(docs[0].get("t").unwrap().as_str(), Some("span"));
    assert_eq!(docs[0].get("name").unwrap().as_str(), Some("podem"));
    // The inner span's parent is the outer span's id.
    assert_eq!(
        docs[0].get("parent").unwrap().as_u64(),
        docs[1].get("id").unwrap().as_u64()
    );
    assert_eq!(docs[1].get("name").unwrap().as_str(), Some("compat_graph"));

    let snap = &docs[2];
    assert_eq!(snap.get("t").unwrap().as_str(), Some("snapshot"));
    assert_eq!(
        snap.get("counters")
            .unwrap()
            .get("podem.backtracks")
            .unwrap()
            .as_u64(),
        Some(17)
    );
    assert_eq!(
        snap.get("gauges")
            .unwrap()
            .get("sim.kernel_words_per_sec")
            .unwrap()
            .as_f64(),
        Some(2.5e7)
    );
}

#[test]
fn spans_complete_in_lifo_order_with_correct_nesting() {
    let rec = Recorder::new();
    rec.enable();
    let a = rec.span("a");
    let b = rec.span("b");
    let c = rec.span("c");
    c.finish();
    b.finish();
    rec.span("d").finish();
    a.finish();

    let spans = rec.spans();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["c", "b", "d", "a"], "completion order");
    let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
    assert_eq!(by_name("c").parent, Some(by_name("b").id));
    assert_eq!(by_name("b").parent, Some(by_name("a").id));
    // `d` starts after b/c closed: its parent is `a`, not `b`.
    assert_eq!(by_name("d").parent, Some(by_name("a").id));
    assert_eq!(by_name("a").parent, None);
    // Start offsets are monotone in id order.
    for pair in spans.windows(2) {
        if pair[0].id < pair[1].id {
            assert!(pair[0].start_ns <= pair[1].start_ns);
        }
    }
}

#[test]
fn concurrent_global_counters_sum_exactly() {
    // The shape every instrumented engine uses: fetch the handle once,
    // hammer it from scoped threads.
    let counter = htforge_obs::counter("test.concurrent_total");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..25_000 {
                    counter.incr();
                }
            });
        }
    });
    assert_eq!(htforge_obs::counter("test.concurrent_total").get(), 100_000);
}

#[test]
fn run_report_from_global_recorder_validates() {
    let rec = Recorder::new();
    rec.enable();
    for phase in [
        "preprocess",
        "rare_extraction",
        "compat_graph",
        "clique_enumeration",
        "insertion",
        "validation",
    ] {
        rec.span(phase).finish();
    }
    rec.counter("podem.backtracks").add(3);
    let report =
        RunReport::from_recorder("pipeline", &rec).with_meta("circuit", Json::Str("c17".into()));
    htforge_obs::validate_str(&report.pretty()).unwrap();
    assert_eq!(report.span_names().len(), 6);
}

#[test]
fn sink_installed_mid_run_only_sees_later_events() {
    let rec = Recorder::new();
    rec.enable();
    rec.span("before").finish();
    let sink = InMemorySink::new();
    rec.add_sink(Box::new(sink.clone()));
    rec.span("after").finish();
    let events = sink.events();
    assert_eq!(events.len(), 1);
    assert!(matches!(&events[0], Event::Span(s) if s.name == "after"));
}

#[test]
fn disabled_spans_still_measure_time() {
    let rec = Recorder::new(); // disabled
    let sink = InMemorySink::new();
    rec.add_sink(Box::new(sink.clone()));
    let guard = rec.span("timed");
    std::thread::sleep(Duration::from_millis(5));
    let dur = guard.finish();
    assert!(dur >= Duration::from_millis(5));
    assert!(sink.events().is_empty());
    assert!(rec.spans().is_empty());
}
