//! The thread-safe [`Recorder`]: hierarchical spans, named metrics, and
//! pluggable event sinks.
//!
//! Design rules, in order of importance:
//!
//! 1. **Disabled must be free.** The workspace default is a disabled
//!    global recorder. Metric handles still accumulate (a relaxed atomic
//!    add — cheap enough for the PODEM backtrack loop), but spans skip
//!    all bookkeeping except the `Instant` pair their caller needs for
//!    `PhaseTimings`, and sinks see nothing.
//! 2. **Hot paths hold handles, not names.** `Recorder::counter` et al.
//!    do one locked name lookup and return a clonable atomic handle;
//!    engines fetch handles at construction time.
//! 3. **Sinks are a stream, not a database.** Span-end events and
//!    metric snapshots are pushed to every installed [`Sink`]; the
//!    in-memory aggregation (span list + metric registry) independently
//!    feeds [`crate::report::RunReport`] and the summary table.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::table::Table;

/// One completed span: a named, timed section of work, with its parent
/// span (if any) for hierarchy reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the recorder (allocation order = start order).
    pub id: u64,
    /// The enclosing span on the starting thread, if any.
    pub parent: Option<u64>,
    /// Span name (dot-separated by convention, e.g. `compat_graph`).
    pub name: String,
    /// Start, in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
    /// Key/value attributes attached via [`SpanGuard::attr`], in
    /// attachment order. Empty for most spans; the JSON encodings omit
    /// the field entirely when empty so pre-attribute consumers see the
    /// exact old layout.
    pub attrs: Vec<(String, String)>,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the recorder epoch.
    pub at_ns: u64,
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → distribution snapshot, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// An observability event pushed to sinks.
#[derive(Debug, Clone)]
pub enum Event {
    /// A span ended.
    Span(SpanRecord),
    /// A periodic or end-of-run metric snapshot.
    Snapshot(MetricsSnapshot),
}

impl Event {
    /// The JSONL encoding of this event.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Event::Span(s) => {
                let mut fields = vec![
                    ("t", Json::Str("span".into())),
                    ("id", Json::Num(s.id as f64)),
                    (
                        "parent",
                        s.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                    ),
                    ("name", Json::Str(s.name.clone())),
                    ("start_us", Json::Num(s.start_ns as f64 / 1_000.0)),
                    ("dur_us", Json::Num(s.dur_ns as f64 / 1_000.0)),
                ];
                if !s.attrs.is_empty() {
                    fields.push((
                        "attrs",
                        Json::Obj(
                            s.attrs
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ));
                }
                Json::obj(fields)
            }
            Event::Snapshot(snap) => Json::obj(vec![
                ("t", Json::Str("snapshot".into())),
                ("at_us", Json::Num(snap.at_ns as f64 / 1_000.0)),
                (
                    "counters",
                    Json::Obj(
                        snap.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                            .collect(),
                    ),
                ),
                (
                    "gauges",
                    Json::Obj(
                        snap.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

/// A consumer of observability events. Implementations must be cheap —
/// they run under the recorder's sink lock.
pub trait Sink: Send {
    /// Called for every event while the recorder is enabled.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output (end of run, progress ticks).
    fn flush(&mut self) {}
}

/// A sink that retains every event in memory — the test sink.
#[derive(Debug, Clone, Default)]
pub struct InMemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl InMemorySink {
    /// A fresh, empty sink. Clone it before installing to keep a handle
    /// for inspection.
    #[must_use]
    pub fn new() -> Self {
        InMemorySink::default()
    }

    /// All events recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").clone()
    }
}

impl Sink for InMemorySink {
    fn record(&mut self, event: &Event) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

/// A sink that writes one compact JSON object per event line.
pub struct JsonlSink {
    out: Box<dyn std::io::Write + Send>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A JSONL sink over any writer (file, stderr, `Vec<u8>` in tests).
    #[must_use]
    pub fn new(out: Box<dyn std::io::Write + Send>) -> Self {
        JsonlSink { out }
    }

    /// A JSONL sink writing to stderr.
    #[must_use]
    pub fn stderr() -> Self {
        JsonlSink::new(Box::new(std::io::stderr()))
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let _ = writeln!(self.out, "{}", event.to_json().compact());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

thread_local! {
    /// Per-thread stack of open spans: `(recorder id, span id)`.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

struct Inner {
    id: u64,
    epoch: Instant,
    enabled: AtomicBool,
    next_span: AtomicU64,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("id", &self.id)
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

/// The metric registry and span collector. Clonable handle; all clones
/// share state.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, **disabled** recorder with no sinks.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                enabled: AtomicBool::new(false),
                next_span: AtomicU64::new(1),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
                sinks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Turns span collection and sink emission on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns span collection and sink emission off (metric handles keep
    /// accumulating).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans and sinks are active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Installs a sink (takes effect immediately).
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.sinks.lock().expect("sink lock").push(sink);
    }

    /// Removes all sinks.
    pub fn clear_sinks(&self) {
        self.inner.sinks.lock().expect("sink lock").clear();
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for sink in self.inner.sinks.lock().expect("sink lock").iter_mut() {
            sink.flush();
        }
    }

    /// Nanoseconds since this recorder was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The counter registered under `name` (created on first use).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("counter lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name` (created on first use).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("gauge lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name` (created on first use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("histogram lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Starts a span. The returned guard records the span on drop (or
    /// [`SpanGuard::finish`], which also returns the elapsed time).
    ///
    /// When the recorder is disabled the guard still measures time (so
    /// callers can derive phase timings from it) but records nothing.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        let start = Instant::now();
        let registered = if self.is_enabled() {
            let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
            let parent = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let parent = stack
                    .iter()
                    .rev()
                    .find(|&&(rec, _)| rec == self.inner.id)
                    .map(|&(_, span)| span);
                stack.push((self.inner.id, id));
                parent
            });
            Some(OpenSpan {
                id,
                parent,
                name: name.to_owned(),
                start_ns: self.now_ns(),
                attrs: Vec::new(),
            })
        } else {
            None
        };
        SpanGuard {
            recorder: self.clone(),
            start,
            open: registered,
        }
    }

    fn end_span(&self, open: OpenSpan, dur: Duration) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(rec, span)| rec == self.inner.id && span == open.id)
            {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_ns: open.start_ns,
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            attrs: open.attrs,
        };
        self.inner
            .spans
            .lock()
            .expect("span lock")
            .push(record.clone());
        self.emit(&Event::Span(record));
    }

    fn emit(&self, event: &Event) {
        for sink in self.inner.sinks.lock().expect("sink lock").iter_mut() {
            sink.record(event);
        }
    }

    /// All completed spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().expect("span lock").clone()
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            at_ns: self.now_ns(),
            counters: self
                .inner
                .counters
                .lock()
                .expect("counter lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("gauge lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("histogram lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Takes a snapshot and pushes it to every sink (no-op when
    /// disabled).
    pub fn emit_snapshot(&self) {
        if self.is_enabled() {
            self.emit(&Event::Snapshot(self.snapshot()));
        }
    }

    /// Clears spans and zeroes every metric, keeping registered handles
    /// valid — the per-circuit reset the table binaries use between
    /// [`crate::report::RunReport`]s.
    pub fn reset(&self) {
        self.inner.spans.lock().expect("span lock").clear();
        for c in self.inner.counters.lock().expect("counter lock").values() {
            c.reset();
        }
        for g in self.inner.gauges.lock().expect("gauge lock").values() {
            g.set(0.0);
        }
        for h in self
            .inner
            .histograms
            .lock()
            .expect("histogram lock")
            .values()
        {
            h.reset();
        }
    }

    /// Renders the end-of-run human-readable summary: span totals
    /// (aggregated by name), non-zero counters, gauges, and histogram
    /// percentiles.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let spans = self.spans();
        if !spans.is_empty() {
            // Aggregate by name, keeping first-start order.
            let mut order: Vec<&str> = Vec::new();
            let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new(); // (calls, total ns)
            for s in &spans {
                let entry = agg.entry(&s.name).or_insert_with(|| {
                    order.push(&s.name);
                    (0, 0)
                });
                entry.0 += 1;
                entry.1 += s.dur_ns;
            }
            let mut table = Table::new(vec!["span", "calls", "total", "mean"]);
            for name in order {
                let (calls, total_ns) = agg[name];
                table.row(vec![
                    name.to_owned(),
                    calls.to_string(),
                    format_ns(total_ns),
                    format_ns(total_ns / calls.max(1)),
                ]);
            }
            out.push_str("spans:\n");
            out.push_str(&table.render());
        }
        let snap = self.snapshot();
        let counters: Vec<_> = snap.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !counters.is_empty() {
            let mut table = Table::new(vec!["counter", "value"]);
            for (k, v) in counters {
                table.row(vec![k.clone(), v.to_string()]);
            }
            out.push_str("counters:\n");
            out.push_str(&table.render());
        }
        let gauges: Vec<_> = snap.gauges.iter().filter(|(_, v)| *v != 0.0).collect();
        if !gauges.is_empty() {
            let mut table = Table::new(vec!["gauge", "value"]);
            for (k, v) in gauges {
                table.row(vec![k.clone(), format!("{v:.3e}")]);
            }
            out.push_str("gauges:\n");
            out.push_str(&table.render());
        }
        let hists: Vec<_> = snap
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !hists.is_empty() {
            let mut table = Table::new(vec![
                "histogram",
                "count",
                "min",
                "p50",
                "p90",
                "p99",
                "max",
                "mean",
            ]);
            for (k, h) in hists {
                table.row(vec![
                    k.clone(),
                    h.count.to_string(),
                    h.min.to_string(),
                    h.percentile(0.5).unwrap_or(0).to_string(),
                    h.percentile(0.9).unwrap_or(0).to_string(),
                    h.percentile(0.99).unwrap_or(0).to_string(),
                    h.max.to_string(),
                    format!("{:.1}", h.mean().unwrap_or(0.0)),
                ]);
            }
            out.push_str("histograms:\n");
            out.push_str(&table.render());
        }
        if out.is_empty() {
            out.push_str("(no observability data recorded)\n");
        }
        out
    }
}

fn format_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    attrs: Vec<(String, String)>,
}

/// Guard for an open span; ends the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Recorder,
    start: Instant,
    open: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attaches a key/value attribute to the span (recorded when the
    /// span ends). No-op while the recorder is disabled, so hot paths
    /// can attach unconditionally.
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(open) = &mut self.open {
            open.attrs.push((key.to_owned(), value.into()));
        }
    }

    /// Ends the span now and returns its wall-clock duration (measured
    /// whether or not the recorder is enabled).
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        if let Some(open) = self.open.take() {
            self.recorder.end_span(open, dur);
        }
        dur
    }

    /// Elapsed time so far, without ending the span.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            self.recorder.end_span(open, self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_collects_no_spans_but_times() {
        let rec = Recorder::new();
        let sp = rec.span("work");
        std::thread::sleep(Duration::from_millis(2));
        let dur = sp.finish();
        assert!(dur >= Duration::from_millis(2));
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn span_nesting_records_parents() {
        let rec = Recorder::new();
        rec.enable();
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        inner.finish();
        outer.finish();
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let rec = Recorder::new();
        rec.enable();
        let root = rec.span("root");
        rec.span("a").finish();
        rec.span("b").finish();
        root.finish();
        let spans = rec.spans();
        let root_id = spans.iter().find(|s| s.name == "root").unwrap().id;
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root_id), "{name}");
        }
    }

    #[test]
    fn spans_on_other_threads_have_no_false_parent() {
        let rec = Recorder::new();
        rec.enable();
        let root = rec.span("root");
        std::thread::scope(|scope| {
            let rec = rec.clone();
            scope.spawn(move || {
                rec.span("worker").finish();
            });
        });
        root.finish();
        let spans = rec.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        // The worker thread's stack is empty: no parent.
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn span_attrs_are_recorded_and_serialized() {
        let rec = Recorder::new();
        rec.enable();
        let mut sp = rec.span("sim.kernel_run");
        sp.attr("strategy", "level");
        sp.attr("threads_requested", 8.to_string());
        sp.finish();
        let spans = rec.spans();
        assert_eq!(
            spans[0].attrs,
            vec![
                ("strategy".to_owned(), "level".to_owned()),
                ("threads_requested".to_owned(), "8".to_owned()),
            ]
        );
        let json = Event::Span(spans[0].clone()).to_json();
        assert_eq!(
            json.get("attrs").unwrap().get("strategy").unwrap().as_str(),
            Some("level")
        );
        // Attribute-free spans keep the pre-attribute JSON layout.
        rec.span("plain").finish();
        let plain = rec.spans().pop().unwrap();
        assert!(Event::Span(plain).to_json().get("attrs").is_none());
    }

    #[test]
    fn attrs_on_disabled_recorder_are_a_no_op() {
        let rec = Recorder::new();
        let mut sp = rec.span("quiet");
        sp.attr("k", "v");
        sp.finish();
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn guard_drop_records_too() {
        let rec = Recorder::new();
        rec.enable();
        {
            let _g = rec.span("scoped");
        }
        assert_eq!(rec.spans().len(), 1);
    }

    #[test]
    fn metrics_snapshot_and_reset() {
        let rec = Recorder::new();
        rec.counter("x").add(3);
        rec.gauge("g").set(2.5);
        rec.histogram("h").record(7);
        let snap = rec.snapshot();
        assert_eq!(snap.counters, vec![("x".to_owned(), 3)]);
        assert_eq!(snap.gauges, vec![("g".to_owned(), 2.5)]);
        assert_eq!(snap.histograms[0].1.count, 1);

        let handle = rec.counter("x");
        rec.reset();
        assert_eq!(rec.counter("x").get(), 0);
        handle.add(1); // pre-reset handles stay live
        assert_eq!(rec.counter("x").get(), 1);
    }

    #[test]
    fn in_memory_sink_sees_spans_and_snapshots() {
        let rec = Recorder::new();
        rec.enable();
        let sink = InMemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        rec.span("phase").finish();
        rec.counter("n").add(2);
        rec.emit_snapshot();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], Event::Span(s) if s.name == "phase"));
        assert!(
            matches!(&events[1], Event::Snapshot(s) if s.counters == vec![("n".to_owned(), 2)])
        );
    }

    #[test]
    fn concurrent_counter_increments_from_scoped_threads() {
        // The SimProgram column-split shape: one shared handle, many
        // scoped workers.
        let rec = Recorder::new();
        let counter = rec.counter("sim.kernel_words");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(rec.counter("sim.kernel_words").get(), 80_000);
    }

    #[test]
    fn summary_renders_all_sections() {
        let rec = Recorder::new();
        rec.enable();
        rec.span("phase_one").finish();
        rec.counter("events").add(5);
        rec.gauge("rate").set(1.5e6);
        rec.histogram("lat").record(12);
        let summary = rec.render_summary();
        for needle in [
            "spans:",
            "phase_one",
            "counters:",
            "events",
            "gauges:",
            "rate",
            "histograms:",
            "lat",
        ] {
            assert!(summary.contains(needle), "missing {needle} in:\n{summary}");
        }
        assert_eq!(
            Recorder::new().render_summary(),
            "(no observability data recorded)\n"
        );
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(500), "0.5us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_200_000_000), "3.20s");
    }
}
