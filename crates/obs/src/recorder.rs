//! The thread-safe [`Recorder`]: hierarchical spans, named metrics, and
//! pluggable event sinks.
//!
//! Design rules, in order of importance:
//!
//! 1. **Disabled must be free.** The workspace default is a disabled
//!    global recorder. Metric handles still accumulate (a relaxed atomic
//!    add — cheap enough for the PODEM backtrack loop), but spans skip
//!    all bookkeeping except the `Instant` pair their caller needs for
//!    `PhaseTimings`, and sinks see nothing.
//! 2. **Hot paths hold handles, not names.** `Recorder::counter` et al.
//!    do one locked name lookup and return a clonable atomic handle;
//!    engines fetch handles at construction time.
//! 3. **Sinks are a stream, not a database.** Span-end events and
//!    metric snapshots are pushed to every installed [`Sink`]; the
//!    in-memory aggregation (span list + metric registry) independently
//!    feeds [`crate::report::RunReport`] and the summary table.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::ring::EventRing;
use crate::table::Table;

/// A trace identity that can cross thread boundaries by hand.
///
/// The thread-local span stack gives spans parents only within one
/// thread. Work that hops a dispatch boundary (the campaign server's
/// worker pool, scoped kernel workers) carries a `TraceContext` instead:
/// the submitting side captures one, the executing side adopts it via
/// [`Recorder::adopt_trace`], and every span the executing thread opens
/// while the guard lives inherits the trace id (and, when `span_id` is
/// non-zero, that span as its cross-thread parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Process-unique, non-zero trace id (zero never occurs in a root).
    pub trace_id: u64,
    /// The span to parent adopted spans under, or 0 for "trace only".
    pub span_id: u64,
}

impl TraceContext {
    /// A fresh root context: a new process-unique trace id, no parent
    /// span. Ids are a Weyl sequence through a splitmix64 finalizer,
    /// seeded from the wall clock and pid, so two daemons started the
    /// same nanosecond still diverge.
    #[must_use]
    pub fn new_root() -> Self {
        static NEXT: OnceLock<AtomicU64> = OnceLock::new();
        let next = NEXT.get_or_init(|| {
            let clock = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0x9e37_79b9_7f4a_7c15, |d| d.as_nanos() as u64);
            AtomicU64::new(clock ^ u64::from(std::process::id()).rotate_left(32))
        });
        let raw = next.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let id = splitmix64(raw);
        TraceContext {
            trace_id: id.max(1),
            span_id: 0,
        }
    }

    /// The same trace, parenting adopted spans under `span_id`.
    #[must_use]
    pub fn with_span(self, span_id: u64) -> Self {
        TraceContext { span_id, ..self }
    }

    /// The canonical 16-hex-digit rendering of the trace id.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One completed span: a named, timed section of work, with its parent
/// span (if any) for hierarchy reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the recorder (allocation order = start order).
    pub id: u64,
    /// The enclosing span on the starting thread, if any.
    pub parent: Option<u64>,
    /// Span name (dot-separated by convention, e.g. `compat_graph`).
    pub name: String,
    /// Start, in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
    /// Key/value attributes attached via [`SpanGuard::attr`], in
    /// attachment order. Empty for most spans; the JSON encodings omit
    /// the field entirely when empty so pre-attribute consumers see the
    /// exact old layout.
    pub attrs: Vec<(String, String)>,
    /// The trace this span belongs to (inherited from the enclosing
    /// span or an adopted [`TraceContext`]), or 0 when untraced. The
    /// JSON encoding omits the field when 0, preserving the pre-trace
    /// layout.
    pub trace: u64,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the recorder epoch.
    pub at_ns: u64,
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → distribution snapshot, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// An observability event pushed to sinks.
#[derive(Debug, Clone)]
pub enum Event {
    /// A span ended.
    Span(SpanRecord),
    /// A periodic or end-of-run metric snapshot.
    Snapshot(MetricsSnapshot),
}

impl Event {
    /// The JSONL encoding of this event.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Event::Span(s) => {
                let mut fields = vec![
                    ("t", Json::Str("span".into())),
                    ("id", Json::Num(s.id as f64)),
                    (
                        "parent",
                        s.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                    ),
                    ("name", Json::Str(s.name.clone())),
                    ("start_us", Json::Num(s.start_ns as f64 / 1_000.0)),
                    ("dur_us", Json::Num(s.dur_ns as f64 / 1_000.0)),
                ];
                if !s.attrs.is_empty() {
                    fields.push((
                        "attrs",
                        Json::Obj(
                            s.attrs
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ));
                }
                if s.trace != 0 {
                    fields.push(("trace", Json::Str(format!("{:016x}", s.trace))));
                }
                Json::obj(fields)
            }
            Event::Snapshot(snap) => Json::obj(vec![
                ("t", Json::Str("snapshot".into())),
                ("at_us", Json::Num(snap.at_ns as f64 / 1_000.0)),
                (
                    "counters",
                    Json::Obj(
                        snap.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                            .collect(),
                    ),
                ),
                (
                    "gauges",
                    Json::Obj(
                        snap.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

/// A consumer of observability events. Implementations must be cheap —
/// they run under the recorder's sink lock.
pub trait Sink: Send {
    /// Called for every event while the recorder is enabled.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output (end of run, progress ticks).
    fn flush(&mut self) {}
}

/// A sink that retains every event in memory — the test sink.
#[derive(Debug, Clone, Default)]
pub struct InMemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl InMemorySink {
    /// A fresh, empty sink. Clone it before installing to keep a handle
    /// for inspection.
    #[must_use]
    pub fn new() -> Self {
        InMemorySink::default()
    }

    /// All events recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").clone()
    }
}

impl Sink for InMemorySink {
    fn record(&mut self, event: &Event) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

/// A sink that writes one compact JSON object per event line.
pub struct JsonlSink {
    out: Box<dyn std::io::Write + Send>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A JSONL sink over any writer (file, stderr, `Vec<u8>` in tests).
    #[must_use]
    pub fn new(out: Box<dyn std::io::Write + Send>) -> Self {
        JsonlSink { out }
    }

    /// A JSONL sink writing to stderr.
    #[must_use]
    pub fn stderr() -> Self {
        JsonlSink::new(Box::new(std::io::stderr()))
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let _ = writeln!(self.out, "{}", event.to_json().compact());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

thread_local! {
    /// Per-thread stack of open spans: `(recorder id, span id, trace id)`.
    static SPAN_STACK: RefCell<Vec<(u64, u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread stack of adopted trace contexts (see
    /// [`Recorder::adopt_trace`]): `(recorder id, context)`.
    static TRACE_STACK: RefCell<Vec<(u64, TraceContext)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread span lifecycle hook (see [`install_span_hook`]).
    static SPAN_HOOK: RefCell<Option<SpanHook>> = const { RefCell::new(None) };
}

/// A span lifecycle notification delivered to an installed [`SpanHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// The span just opened.
    Enter,
    /// The span just closed, after running for this long.
    Exit(Duration),
}

/// A per-thread observer of span starts and ends, called with the span
/// name. Unlike sinks it fires even while the recorder is **disabled** —
/// it exists so live-progress plumbing (the campaign server streams
/// phase frames from it) works without turning full span collection on.
pub type SpanHook = Arc<dyn Fn(&str, SpanEvent)>;

/// Installs `hook` as this thread's span hook for the guard's lifetime,
/// restoring the previous hook (if any) on drop. Spans from every
/// recorder on this thread fire it; the hook must not open spans itself.
#[must_use]
pub fn install_span_hook(hook: SpanHook) -> SpanHookGuard {
    let prev = SPAN_HOOK.with(|h| h.borrow_mut().replace(hook));
    SpanHookGuard {
        prev,
        _not_send: PhantomData,
    }
}

fn current_span_hook() -> Option<SpanHook> {
    SPAN_HOOK.with(|h| h.borrow().clone())
}

/// Uninstalls the hook installed by [`install_span_hook`] on drop.
pub struct SpanHookGuard {
    prev: Option<SpanHook>,
    /// Thread-local state: the guard must drop on its install thread.
    _not_send: PhantomData<*const ()>,
}

impl std::fmt::Debug for SpanHookGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanHookGuard").finish_non_exhaustive()
    }
}

impl Drop for SpanHookGuard {
    fn drop(&mut self) {
        SPAN_HOOK.with(|h| *h.borrow_mut() = self.prev.take());
    }
}

fn adopted_trace(rec: u64) -> Option<TraceContext> {
    TRACE_STACK.with(|s| {
        s.borrow()
            .iter()
            .rev()
            .find(|&&(r, _)| r == rec)
            .map(|&(_, ctx)| ctx)
    })
}

/// Un-adopts a [`TraceContext`] (see [`Recorder::adopt_trace`]) on drop.
#[derive(Debug)]
pub struct TraceGuard {
    rec: u64,
    ctx: TraceContext,
    /// Thread-local state: the guard must drop on its adopt thread.
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s
                .iter()
                .rposition(|&(r, ctx)| r == self.rec && ctx == self.ctx)
            {
                s.remove(pos);
            }
        });
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

struct Inner {
    id: u64,
    epoch: Instant,
    enabled: AtomicBool,
    next_span: AtomicU64,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    ring: OnceLock<Arc<EventRing>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("id", &self.id)
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

/// The metric registry and span collector. Clonable handle; all clones
/// share state.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, **disabled** recorder with no sinks.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                enabled: AtomicBool::new(false),
                next_span: AtomicU64::new(1),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
                sinks: Mutex::new(Vec::new()),
                ring: OnceLock::new(),
            }),
        }
    }

    /// Turns span collection and sink emission on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns span collection and sink emission off (metric handles keep
    /// accumulating).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans and sinks are active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Installs a sink (takes effect immediately).
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.sinks.lock().expect("sink lock").push(sink);
    }

    /// Removes all sinks.
    pub fn clear_sinks(&self) {
        self.inner.sinks.lock().expect("sink lock").clear();
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for sink in self.inner.sinks.lock().expect("sink lock").iter_mut() {
            sink.flush();
        }
    }

    /// Nanoseconds since this recorder was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The counter registered under `name` (created on first use).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("counter lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name` (created on first use).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("gauge lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name` (created on first use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("histogram lock")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Starts a span. The returned guard records the span on drop (or
    /// [`SpanGuard::finish`], which also returns the elapsed time).
    ///
    /// When the recorder is disabled the guard still measures time (so
    /// callers can derive phase timings from it) but records nothing.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        let start = Instant::now();
        let registered = if self.is_enabled() {
            let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
            let (parent, trace) = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let inherited = stack
                    .iter()
                    .rev()
                    .find(|&&(rec, _, _)| rec == self.inner.id)
                    .map(|&(_, span, trace)| (Some(span), trace));
                let (parent, trace) = inherited.unwrap_or_else(|| {
                    adopted_trace(self.inner.id).map_or((None, 0), |ctx| {
                        ((ctx.span_id != 0).then_some(ctx.span_id), ctx.trace_id)
                    })
                });
                stack.push((self.inner.id, id, trace));
                (parent, trace)
            });
            Some(OpenSpan {
                id,
                parent,
                name: name.to_owned(),
                start_ns: self.now_ns(),
                attrs: Vec::new(),
                trace,
            })
        } else {
            None
        };
        let hook = current_span_hook();
        if let Some(hook) = &hook {
            hook(name, SpanEvent::Enter);
        }
        SpanGuard {
            recorder: self.clone(),
            start,
            open: registered,
            hook: hook.map(|h| (h, name.to_owned())),
        }
    }

    /// Adopts `ctx` as the fallback trace context for spans this thread
    /// opens on this recorder while the guard lives: a span with no
    /// open enclosing span inherits `ctx.trace_id` (and parents under
    /// `ctx.span_id` when non-zero). This is how a worker thread joins
    /// the trace of the job that was dispatched to it.
    #[must_use]
    pub fn adopt_trace(&self, ctx: TraceContext) -> TraceGuard {
        TRACE_STACK.with(|s| s.borrow_mut().push((self.inner.id, ctx)));
        TraceGuard {
            rec: self.inner.id,
            ctx,
            _not_send: PhantomData,
        }
    }

    /// The trace context spans opened *now* on this thread would join:
    /// the innermost open traced span, else the innermost adopted
    /// context, else `None`. Capture this before handing work to
    /// another thread, adopt it there.
    #[must_use]
    pub fn current_trace(&self) -> Option<TraceContext> {
        let from_span = SPAN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|&&(rec, _, trace)| rec == self.inner.id && trace != 0)
                .map(|&(_, span, trace)| TraceContext {
                    trace_id: trace,
                    span_id: span,
                })
        });
        from_span.or_else(|| adopted_trace(self.inner.id))
    }

    /// Installs (on first call) and returns the bounded event ring —
    /// every event emitted to sinks is also pushed here, and readers
    /// tail it without ever blocking the emitting thread. Subsequent
    /// calls return the existing ring regardless of `capacity`.
    pub fn install_ring(&self, capacity: usize) -> Arc<EventRing> {
        self.inner
            .ring
            .get_or_init(|| Arc::new(EventRing::new(capacity)))
            .clone()
    }

    /// The installed event ring, if any.
    #[must_use]
    pub fn ring(&self) -> Option<Arc<EventRing>> {
        self.inner.ring.get().cloned()
    }

    fn end_span(&self, open: OpenSpan, dur: Duration) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(rec, span, _)| rec == self.inner.id && span == open.id)
            {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_ns: open.start_ns,
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            attrs: open.attrs,
            trace: open.trace,
        };
        self.inner
            .spans
            .lock()
            .expect("span lock")
            .push(record.clone());
        self.emit(&Event::Span(record));
    }

    fn emit(&self, event: &Event) {
        if let Some(ring) = self.inner.ring.get() {
            ring.push(event);
        }
        for sink in self.inner.sinks.lock().expect("sink lock").iter_mut() {
            sink.record(event);
        }
    }

    /// All completed spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().expect("span lock").clone()
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            at_ns: self.now_ns(),
            counters: self
                .inner
                .counters
                .lock()
                .expect("counter lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("gauge lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("histogram lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Takes a snapshot and pushes it to every sink (no-op when
    /// disabled).
    pub fn emit_snapshot(&self) {
        if self.is_enabled() {
            self.emit(&Event::Snapshot(self.snapshot()));
        }
    }

    /// Clears spans and zeroes every metric, keeping registered handles
    /// valid — the per-circuit reset the table binaries use between
    /// [`crate::report::RunReport`]s.
    pub fn reset(&self) {
        self.inner.spans.lock().expect("span lock").clear();
        for c in self.inner.counters.lock().expect("counter lock").values() {
            c.reset();
        }
        for g in self.inner.gauges.lock().expect("gauge lock").values() {
            g.set(0.0);
        }
        for h in self
            .inner
            .histograms
            .lock()
            .expect("histogram lock")
            .values()
        {
            h.reset();
        }
    }

    /// Renders the end-of-run human-readable summary: span totals
    /// (aggregated by name), non-zero counters, gauges, and histogram
    /// percentiles.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let spans = self.spans();
        if !spans.is_empty() {
            // Aggregate by name, keeping first-start order.
            let mut order: Vec<&str> = Vec::new();
            let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new(); // (calls, total ns)
            for s in &spans {
                let entry = agg.entry(&s.name).or_insert_with(|| {
                    order.push(&s.name);
                    (0, 0)
                });
                entry.0 += 1;
                entry.1 += s.dur_ns;
            }
            let mut table = Table::new(vec!["span", "calls", "total", "mean"]);
            for name in order {
                let (calls, total_ns) = agg[name];
                table.row(vec![
                    name.to_owned(),
                    calls.to_string(),
                    format_ns(total_ns),
                    format_ns(total_ns / calls.max(1)),
                ]);
            }
            out.push_str("spans:\n");
            out.push_str(&table.render());
        }
        let snap = self.snapshot();
        let counters: Vec<_> = snap.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !counters.is_empty() {
            let mut table = Table::new(vec!["counter", "value"]);
            for (k, v) in counters {
                table.row(vec![k.clone(), v.to_string()]);
            }
            out.push_str("counters:\n");
            out.push_str(&table.render());
        }
        let gauges: Vec<_> = snap.gauges.iter().filter(|(_, v)| *v != 0.0).collect();
        if !gauges.is_empty() {
            let mut table = Table::new(vec!["gauge", "value"]);
            for (k, v) in gauges {
                table.row(vec![k.clone(), format!("{v:.3e}")]);
            }
            out.push_str("gauges:\n");
            out.push_str(&table.render());
        }
        let hists: Vec<_> = snap
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !hists.is_empty() {
            let mut table = Table::new(vec![
                "histogram",
                "count",
                "min",
                "p50",
                "p90",
                "p99",
                "max",
                "mean",
            ]);
            for (k, h) in hists {
                table.row(vec![
                    k.clone(),
                    h.count.to_string(),
                    h.min.to_string(),
                    h.percentile(0.5).unwrap_or(0).to_string(),
                    h.percentile(0.9).unwrap_or(0).to_string(),
                    h.percentile(0.99).unwrap_or(0).to_string(),
                    h.max.to_string(),
                    format!("{:.1}", h.mean().unwrap_or(0.0)),
                ]);
            }
            out.push_str("histograms:\n");
            out.push_str(&table.render());
        }
        if out.is_empty() {
            out.push_str("(no observability data recorded)\n");
        }
        out
    }
}

fn format_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    attrs: Vec<(String, String)>,
    trace: u64,
}

/// Guard for an open span; ends the span on drop.
pub struct SpanGuard {
    recorder: Recorder,
    start: Instant,
    open: Option<OpenSpan>,
    hook: Option<(SpanHook, String)>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("open", &self.open)
            .finish_non_exhaustive()
    }
}

impl SpanGuard {
    /// Attaches a key/value attribute to the span (recorded when the
    /// span ends). No-op while the recorder is disabled, so hot paths
    /// can attach unconditionally.
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(open) = &mut self.open {
            open.attrs.push((key.to_owned(), value.into()));
        }
    }

    /// Ends the span now and returns its wall-clock duration (measured
    /// whether or not the recorder is enabled).
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        if let Some(open) = self.open.take() {
            self.recorder.end_span(open, dur);
        }
        self.fire_exit(dur);
        dur
    }

    /// Elapsed time so far, without ending the span.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    fn fire_exit(&mut self, dur: Duration) {
        if let Some((hook, name)) = self.hook.take() {
            hook(&name, SpanEvent::Exit(dur));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        if let Some(open) = self.open.take() {
            self.recorder.end_span(open, dur);
        }
        self.fire_exit(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_collects_no_spans_but_times() {
        let rec = Recorder::new();
        let sp = rec.span("work");
        std::thread::sleep(Duration::from_millis(2));
        let dur = sp.finish();
        assert!(dur >= Duration::from_millis(2));
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn span_nesting_records_parents() {
        let rec = Recorder::new();
        rec.enable();
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        inner.finish();
        outer.finish();
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let rec = Recorder::new();
        rec.enable();
        let root = rec.span("root");
        rec.span("a").finish();
        rec.span("b").finish();
        root.finish();
        let spans = rec.spans();
        let root_id = spans.iter().find(|s| s.name == "root").unwrap().id;
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root_id), "{name}");
        }
    }

    #[test]
    fn spans_on_other_threads_have_no_false_parent() {
        let rec = Recorder::new();
        rec.enable();
        let root = rec.span("root");
        std::thread::scope(|scope| {
            let rec = rec.clone();
            scope.spawn(move || {
                rec.span("worker").finish();
            });
        });
        root.finish();
        let spans = rec.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        // The worker thread's stack is empty: no parent.
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn span_attrs_are_recorded_and_serialized() {
        let rec = Recorder::new();
        rec.enable();
        let mut sp = rec.span("sim.kernel_run");
        sp.attr("strategy", "level");
        sp.attr("threads_requested", 8.to_string());
        sp.finish();
        let spans = rec.spans();
        assert_eq!(
            spans[0].attrs,
            vec![
                ("strategy".to_owned(), "level".to_owned()),
                ("threads_requested".to_owned(), "8".to_owned()),
            ]
        );
        let json = Event::Span(spans[0].clone()).to_json();
        assert_eq!(
            json.get("attrs").unwrap().get("strategy").unwrap().as_str(),
            Some("level")
        );
        // Attribute-free spans keep the pre-attribute JSON layout.
        rec.span("plain").finish();
        let plain = rec.spans().pop().unwrap();
        assert!(Event::Span(plain).to_json().get("attrs").is_none());
    }

    #[test]
    fn attrs_on_disabled_recorder_are_a_no_op() {
        let rec = Recorder::new();
        let mut sp = rec.span("quiet");
        sp.attr("k", "v");
        sp.finish();
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn guard_drop_records_too() {
        let rec = Recorder::new();
        rec.enable();
        {
            let _g = rec.span("scoped");
        }
        assert_eq!(rec.spans().len(), 1);
    }

    #[test]
    fn metrics_snapshot_and_reset() {
        let rec = Recorder::new();
        rec.counter("x").add(3);
        rec.gauge("g").set(2.5);
        rec.histogram("h").record(7);
        let snap = rec.snapshot();
        assert_eq!(snap.counters, vec![("x".to_owned(), 3)]);
        assert_eq!(snap.gauges, vec![("g".to_owned(), 2.5)]);
        assert_eq!(snap.histograms[0].1.count, 1);

        let handle = rec.counter("x");
        rec.reset();
        assert_eq!(rec.counter("x").get(), 0);
        handle.add(1); // pre-reset handles stay live
        assert_eq!(rec.counter("x").get(), 1);
    }

    #[test]
    fn in_memory_sink_sees_spans_and_snapshots() {
        let rec = Recorder::new();
        rec.enable();
        let sink = InMemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        rec.span("phase").finish();
        rec.counter("n").add(2);
        rec.emit_snapshot();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], Event::Span(s) if s.name == "phase"));
        assert!(
            matches!(&events[1], Event::Snapshot(s) if s.counters == vec![("n".to_owned(), 2)])
        );
    }

    #[test]
    fn concurrent_counter_increments_from_scoped_threads() {
        // The SimProgram column-split shape: one shared handle, many
        // scoped workers.
        let rec = Recorder::new();
        let counter = rec.counter("sim.kernel_words");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(rec.counter("sim.kernel_words").get(), 80_000);
    }

    #[test]
    fn summary_renders_all_sections() {
        let rec = Recorder::new();
        rec.enable();
        rec.span("phase_one").finish();
        rec.counter("events").add(5);
        rec.gauge("rate").set(1.5e6);
        rec.histogram("lat").record(12);
        let summary = rec.render_summary();
        for needle in [
            "spans:",
            "phase_one",
            "counters:",
            "events",
            "gauges:",
            "rate",
            "histograms:",
            "lat",
        ] {
            assert!(summary.contains(needle), "missing {needle} in:\n{summary}");
        }
        assert_eq!(
            Recorder::new().render_summary(),
            "(no observability data recorded)\n"
        );
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(500), "0.5us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_200_000_000), "3.20s");
    }

    #[test]
    fn root_trace_contexts_are_unique_and_nonzero() {
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.span_id, 0);
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn adopted_trace_crosses_the_dispatch_boundary() {
        // The worker-pool shape: the submitting side mints a context,
        // the executing thread adopts it, and every span it opens joins
        // the trace — with the submit-side span as cross-thread parent.
        let rec = Recorder::new();
        rec.enable();
        let submit = rec.span("submit");
        let ctx = rec.current_trace(); // submit span is untraced: None
        assert_eq!(ctx, None);
        submit.finish();

        let root = TraceContext::new_root();
        let handle = std::thread::spawn({
            let rec = rec.clone();
            let ctx = root.with_span(7);
            move || {
                let _adopt = rec.adopt_trace(ctx);
                assert_eq!(rec.current_trace(), Some(ctx));
                let outer = rec.span("outer");
                rec.span("inner").finish();
                outer.finish();
            }
        });
        handle.join().unwrap();

        let spans = rec.spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.trace, root.trace_id);
        assert_eq!(outer.parent, Some(7), "adopted span parents under ctx");
        assert_eq!(inner.trace, root.trace_id, "children inherit the trace");
        assert_eq!(inner.parent, Some(outer.id));
        // The guard dropped: new spans on a fresh thread are untraced.
        let json = Event::Span(outer.clone()).to_json();
        assert_eq!(
            json.get("trace").and_then(Json::as_str),
            Some(root.hex().as_str())
        );
        let untraced = spans.iter().find(|s| s.name == "submit").unwrap();
        assert!(Event::Span(untraced.clone())
            .to_json()
            .get("trace")
            .is_none());
    }

    #[test]
    fn trace_guard_restores_on_drop() {
        let rec = Recorder::new();
        rec.enable();
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        let _ga = rec.adopt_trace(a);
        {
            let _gb = rec.adopt_trace(b);
            assert_eq!(rec.current_trace(), Some(b));
        }
        assert_eq!(rec.current_trace(), Some(a));
        rec.span("traced").finish();
        assert_eq!(rec.spans()[0].trace, a.trace_id);
    }

    #[test]
    fn span_hook_fires_even_when_disabled() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(String, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = Recorder::new(); // stays disabled
        {
            let seen = Arc::clone(&seen);
            let _hook = install_span_hook(Arc::new(move |name: &str, ev: SpanEvent| {
                seen.lock()
                    .unwrap()
                    .push((name.to_owned(), ev == SpanEvent::Enter));
            }));
            let sp = rec.span("phase");
            rec.span("nested").finish();
            sp.finish();
        }
        rec.span("after_uninstall").finish();
        assert_eq!(
            *seen.lock().unwrap(),
            vec![
                ("phase".to_owned(), true),
                ("nested".to_owned(), true),
                ("nested".to_owned(), false),
                ("phase".to_owned(), false),
            ]
        );
        assert!(rec.spans().is_empty(), "hook must not enable recording");
    }

    #[test]
    fn installed_ring_sees_emitted_events() {
        let rec = Recorder::new();
        rec.enable();
        let ring = rec.install_ring(8);
        rec.span("ringed").finish();
        rec.emit_snapshot();
        let tail = ring.tail_from(0);
        assert_eq!(tail.events.len(), 2);
        assert!(matches!(&tail.events[0].1, Event::Span(s) if s.name == "ringed"));
        assert!(matches!(&tail.events[1].1, Event::Snapshot(_)));
        // Same ring on re-install, regardless of capacity argument.
        assert_eq!(rec.install_ring(1024).capacity(), 8);
    }
}
