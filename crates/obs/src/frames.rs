//! The live-telemetry JSON frames: `htforge.metrics_snapshot/v1`,
//! `htforge.job_timeline/v1` and `htforge.job_progress/v1`.
//!
//! These are the wire artifacts of the telemetry plane, validated with
//! the same rigor as `htforge.run_report/v1` (see [`crate::report`]):
//! the campaign server's `metrics` introspection job returns a metrics
//! snapshot, every terminal job response embeds a per-phase timeline,
//! and long-running jobs stream progress frames before their terminal
//! response. [`validate_any_json`] dispatches on the `schema` tag so
//! one validator (`obs_validate`) covers every document kind, including
//! the netlist-core scaling benchmark (`htforge.netlist_scaling/v1`).

use crate::json::{self, Json};
use crate::recorder::MetricsSnapshot;

/// Schema tag of a full metrics snapshot document.
pub const METRICS_SNAPSHOT_SCHEMA: &str = "htforge.metrics_snapshot/v1";
/// Schema tag of a per-job phase timeline document.
pub const JOB_TIMELINE_SCHEMA: &str = "htforge.job_timeline/v1";
/// Schema tag of a streamed job progress frame.
pub const JOB_PROGRESS_SCHEMA: &str = "htforge.job_progress/v1";
/// Schema tag of one write-ahead journal record of the campaign server.
pub const SERVER_JOURNAL_SCHEMA: &str = "htforge.server_journal/v1";
/// Schema tag of the netlist-core scaling benchmark document
/// (`BENCH_netlist.json` at the repository root).
pub const NETLIST_SCALING_SCHEMA: &str = "htforge.netlist_scaling/v1";

/// The journal event vocabulary, in per-job lifecycle order.
pub const JOURNAL_EVENTS: &[&str] = &["submit", "start", "terminal"];

/// The terminal status vocabulary a journal `terminal` record may
/// carry (mirrors the job-response wire statuses).
pub const JOURNAL_TERMINAL_STATUSES: &[&str] = &["done", "failed", "cancelled", "timeout"];

/// The progress-frame event vocabulary, in the order a phase emits
/// them.
pub const PROGRESS_EVENTS: &[&str] = &["enter", "progress", "complete", "degraded"];

/// Encodes a [`MetricsSnapshot`] as a self-describing
/// `htforge.metrics_snapshot/v1` document: every counter and gauge,
/// and per-histogram summary statistics (count/min/max/mean and
/// p50/p90/p99 percentiles — the per-class latency percentiles the
/// server's `metrics` job exposes come straight from here).
#[must_use]
pub fn metrics_snapshot_json(snap: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(METRICS_SNAPSHOT_SCHEMA.to_owned())),
        ("at_us", Json::Num(snap.at_ns as f64 / 1_000.0)),
        (
            "counters",
            Json::Obj(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                snap.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                snap.histograms
                    .iter()
                    .filter(|(_, h)| h.count > 0)
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::obj(vec![
                                ("count", Json::Num(h.count as f64)),
                                ("min", Json::Num(h.min as f64)),
                                ("max", Json::Num(h.max as f64)),
                                ("mean", Json::Num(h.mean().unwrap_or(0.0))),
                                ("p50", Json::Num(h.percentile(0.5).unwrap_or(0) as f64)),
                                ("p90", Json::Num(h.percentile(0.9).unwrap_or(0) as f64)),
                                ("p99", Json::Num(h.percentile(0.99).unwrap_or(0) as f64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Checks that `doc` is a structurally valid `v1` metrics snapshot.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_metrics_snapshot(doc: &Json) -> Result<(), String> {
    expect_schema(doc, METRICS_SNAPSHOT_SCHEMA)?;
    let at = doc
        .get("at_us")
        .and_then(Json::as_f64)
        .ok_or("missing number `at_us`")?;
    if at < 0.0 {
        return Err("`at_us` is negative".into());
    }
    for (section, integral) in [("counters", true), ("gauges", false)] {
        let obj = doc
            .get(section)
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("`{section}` must be an object"))?;
        for (key, value) in obj {
            let ok = if integral {
                value.as_u64().is_some()
            } else {
                value.as_f64().is_some()
            };
            if !ok {
                return Err(format!("{section}.{key}: wrong value type"));
            }
        }
    }
    let hists = doc
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("`histograms` must be an object")?;
    for (key, value) in hists {
        for field in ["count", "min", "max", "p50", "p90", "p99"] {
            value
                .get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histograms.{key}: missing integer `{field}`"))?;
        }
        value
            .get("mean")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histograms.{key}: missing number `mean`"))?;
    }
    Ok(())
}

/// One phase row in a [`JobTimeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePhase {
    /// Phase name (e.g. `rare_extraction`).
    pub phase: String,
    /// Start offset in milliseconds from job dispatch.
    pub start_ms: f64,
    /// Phase duration in milliseconds.
    pub dur_ms: f64,
}

/// A per-job phase timeline: what ran when, correlated to the job's
/// trace id. Embedded in the terminal job response, so a campaign is
/// reconstructable offline from the JSONL stream alone.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTimeline {
    /// The job's 16-hex-digit trace id.
    pub trace: String,
    /// Phases in execution order.
    pub phases: Vec<TimelinePhase>,
}

impl JobTimeline {
    /// Builds a timeline from consecutive `(phase, dur_ms)` pairs,
    /// deriving each start offset as the running sum of the durations
    /// before it.
    #[must_use]
    pub fn from_durations(trace: &str, phases: &[(String, f64)]) -> Self {
        let mut start_ms = 0.0;
        JobTimeline {
            trace: trace.to_owned(),
            phases: phases
                .iter()
                .map(|(phase, dur_ms)| {
                    let row = TimelinePhase {
                        phase: phase.clone(),
                        start_ms,
                        dur_ms: *dur_ms,
                    };
                    start_ms += dur_ms;
                    row
                })
                .collect(),
        }
    }

    /// The timeline as a `htforge.job_timeline/v1` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(JOB_TIMELINE_SCHEMA.to_owned())),
            ("trace", Json::Str(self.trace.clone())),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("phase", Json::Str(p.phase.clone())),
                                ("start_ms", Json::Num(p.start_ms)),
                                ("dur_ms", Json::Num(p.dur_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Checks that `doc` is a structurally valid `v1` job timeline.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_job_timeline(doc: &Json) -> Result<(), String> {
    expect_schema(doc, JOB_TIMELINE_SCHEMA)?;
    let trace = doc
        .get("trace")
        .and_then(Json::as_str)
        .ok_or("missing string `trace`")?;
    if trace.is_empty() || !trace.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("`trace` is not a hex id: `{trace}`"));
    }
    let phases = doc
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("`phases` must be an array")?;
    for (i, phase) in phases.iter().enumerate() {
        phase
            .get("phase")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("phases[{i}]: missing string `phase`"))?;
        for key in ["start_ms", "dur_ms"] {
            let v = phase
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("phases[{i}]: missing number `{key}`"))?;
            if v < 0.0 {
                return Err(format!("phases[{i}]: `{key}` is negative"));
            }
        }
    }
    Ok(())
}

/// One streamed progress frame: a phase lifecycle event, an in-phase
/// percentage tick, or a degradation note, optionally with an ETA.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressFrame {
    /// Phase the event belongs to (e.g. `simulate`, `compat_graph`).
    pub phase: String,
    /// One of [`PROGRESS_EVENTS`].
    pub event: String,
    /// Estimated completion of the *job* in `[0, 100]`, when known.
    pub percent: Option<f64>,
    /// Estimated milliseconds until the job completes, when known
    /// (derived from the staged budget weights or extrapolated).
    pub eta_ms: Option<f64>,
    /// Free-form detail (degradation notes carry `action: detail`).
    pub detail: Option<String>,
}

impl ProgressFrame {
    /// A bare phase lifecycle frame.
    #[must_use]
    pub fn event(phase: &str, event: &str) -> Self {
        ProgressFrame {
            phase: phase.to_owned(),
            event: event.to_owned(),
            percent: None,
            eta_ms: None,
            detail: None,
        }
    }

    /// The frame as a `htforge.job_progress/v1` document. Optional
    /// fields are omitted when absent.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Str(JOB_PROGRESS_SCHEMA.to_owned())),
            ("phase", Json::Str(self.phase.clone())),
            ("event", Json::Str(self.event.clone())),
        ];
        if let Some(percent) = self.percent {
            fields.push(("percent", Json::Num(percent)));
        }
        if let Some(eta_ms) = self.eta_ms {
            fields.push(("eta_ms", Json::Num(eta_ms)));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail", Json::Str(detail.clone())));
        }
        Json::obj(fields)
    }
}

/// Checks that `doc` is a structurally valid `v1` progress frame.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_job_progress(doc: &Json) -> Result<(), String> {
    expect_schema(doc, JOB_PROGRESS_SCHEMA)?;
    doc.get("phase")
        .and_then(Json::as_str)
        .ok_or("missing string `phase`")?;
    let event = doc
        .get("event")
        .and_then(Json::as_str)
        .ok_or("missing string `event`")?;
    if !PROGRESS_EVENTS.contains(&event) {
        return Err(format!(
            "`event` is `{event}`, expected one of {PROGRESS_EVENTS:?}"
        ));
    }
    if let Some(percent) = doc.get("percent") {
        let p = percent.as_f64().ok_or("`percent` must be a number")?;
        if !(0.0..=100.0).contains(&p) {
            return Err(format!("`percent` {p} outside [0, 100]"));
        }
    }
    if let Some(eta) = doc.get("eta_ms") {
        let e = eta.as_f64().ok_or("`eta_ms` must be a number")?;
        if e < 0.0 {
            return Err("`eta_ms` is negative".into());
        }
    }
    if let Some(detail) = doc.get("detail") {
        detail.as_str().ok_or("`detail` must be a string")?;
    }
    Ok(())
}

/// Checks that `doc` is a structurally valid `v1` server-journal
/// record: the decoded payload of one length+checksum-framed entry in
/// the campaign server's write-ahead journal.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_server_journal(doc: &Json) -> Result<(), String> {
    expect_schema(doc, SERVER_JOURNAL_SCHEMA)?;
    let seq = doc
        .get("seq")
        .and_then(Json::as_f64)
        .ok_or("missing numeric `seq`")?;
    if seq < 0.0 || seq.fract() != 0.0 {
        return Err(format!("`seq` {seq} is not a non-negative integer"));
    }
    let at = doc
        .get("at_ms")
        .and_then(Json::as_f64)
        .ok_or("missing numeric `at_ms`")?;
    if at < 0.0 {
        return Err("`at_ms` is negative".into());
    }
    let event = doc
        .get("event")
        .and_then(Json::as_str)
        .ok_or("missing string `event`")?;
    if !JOURNAL_EVENTS.contains(&event) {
        return Err(format!(
            "`event` is `{event}`, expected one of {JOURNAL_EVENTS:?}"
        ));
    }
    for key in ["tenant", "id"] {
        let v = doc
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string `{key}`"))?;
        if v.is_empty() {
            return Err(format!("`{key}` is empty"));
        }
    }
    match event {
        "submit" => {
            let spec = doc.get("spec").ok_or("submit record missing `spec`")?;
            if spec.as_obj().is_none() {
                return Err("`spec` must be an object".into());
            }
            if spec.get("op").and_then(Json::as_str) != Some("submit") {
                return Err("`spec.op` must be `submit`".into());
            }
        }
        "terminal" => {
            let status = doc
                .get("status")
                .and_then(Json::as_str)
                .ok_or("terminal record missing string `status`")?;
            if !JOURNAL_TERMINAL_STATUSES.contains(&status) {
                return Err(format!(
                    "`status` is `{status}`, expected one of {JOURNAL_TERMINAL_STATUSES:?}"
                ));
            }
        }
        _ => {}
    }
    Ok(())
}

/// Checks that `doc` is a structurally valid `v1` netlist-scaling
/// benchmark document: a non-empty `results` array of rows ascending in
/// `gates`, each carrying the integer size/memory columns and a
/// `seconds` object with non-negative phase timings.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_netlist_scaling(doc: &Json) -> Result<(), String> {
    expect_schema(doc, NETLIST_SCALING_SCHEMA)?;
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing array `results`")?;
    if results.is_empty() {
        return Err("`results` is empty".into());
    }
    let mut prev_gates = 0u64;
    for (i, row) in results.iter().enumerate() {
        let gates = row
            .get("gates")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("results[{i}]: missing integer `gates`"))?;
        if gates == 0 {
            return Err(format!("results[{i}]: `gates` is zero"));
        }
        if gates <= prev_gates {
            return Err(format!(
                "results[{i}]: `gates` must ascend strictly ({gates} after {prev_gates})"
            ));
        }
        prev_gates = gates;
        for key in [
            "nodes",
            "bench_bytes",
            "memory_bytes",
            "rss_peak_kb",
            "levels",
            "rare_nodes",
        ] {
            row.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("results[{i}]: missing integer `{key}`"))?;
        }
        let seconds = row
            .get("seconds")
            .ok_or_else(|| format!("results[{i}]: missing object `seconds`"))?;
        if seconds.as_obj().is_none() {
            return Err(format!("results[{i}]: `seconds` must be an object"));
        }
        for key in ["flatten", "parse", "levelize", "rare_extract"] {
            let v = seconds
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}]: missing number `seconds.{key}`"))?;
            if v < 0.0 {
                return Err(format!("results[{i}]: `seconds.{key}` is negative"));
            }
        }
    }
    Ok(())
}

/// Validates any schema-tagged htforge telemetry document, dispatching
/// on its `schema` field: run reports, metrics snapshots, job
/// timelines, progress frames, server-journal records and
/// netlist-scaling benchmark documents.
///
/// # Errors
///
/// Returns the violation, or an error naming the known schemas when
/// the tag is unrecognized.
pub fn validate_any_json(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` field")?;
    match schema {
        crate::report::SCHEMA => crate::report::validate_json(doc),
        METRICS_SNAPSHOT_SCHEMA => validate_metrics_snapshot(doc),
        JOB_TIMELINE_SCHEMA => validate_job_timeline(doc),
        JOB_PROGRESS_SCHEMA => validate_job_progress(doc),
        SERVER_JOURNAL_SCHEMA => validate_server_journal(doc),
        NETLIST_SCALING_SCHEMA => validate_netlist_scaling(doc),
        other => Err(format!(
            "unknown schema `{other}` (expected {}, {METRICS_SNAPSHOT_SCHEMA}, \
             {JOB_TIMELINE_SCHEMA}, {JOB_PROGRESS_SCHEMA}, {SERVER_JOURNAL_SCHEMA} \
             or {NETLIST_SCALING_SCHEMA})",
            crate::report::SCHEMA
        )),
    }
}

/// Parses and validates any schema-tagged telemetry document.
///
/// # Errors
///
/// Returns a description of the parse or schema violation.
pub fn validate_any_str(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    validate_any_json(&doc)
}

fn expect_schema(doc: &Json, want: &str) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` field")?;
    if schema != want {
        return Err(format!("schema is `{schema}`, expected `{want}`"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn metrics_snapshot_round_trips_and_validates() {
        let rec = Recorder::new();
        rec.counter("server.jobs_completed").add(17);
        rec.gauge("server.queue_depth").set(3.0);
        let h = rec.histogram("server.latency_ms.simulate");
        for v in [5, 9, 12, 40] {
            h.record(v);
        }
        let _ = rec.histogram("untouched"); // empty → omitted
        let doc = metrics_snapshot_json(&rec.snapshot());
        validate_metrics_snapshot(&doc).unwrap();
        validate_any_str(&doc.compact()).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("server.jobs_completed")
                .unwrap()
                .as_u64(),
            Some(17)
        );
        let hist = doc
            .get("histograms")
            .unwrap()
            .get("server.latency_ms.simulate")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(4));
        assert!(hist.get("p99").unwrap().as_u64().is_some());
        assert!(doc.get("histograms").unwrap().get("untouched").is_none());
    }

    #[test]
    fn metrics_snapshot_validation_rejects_bad_documents() {
        let mut doc = metrics_snapshot_json(&Recorder::new().snapshot());
        validate_metrics_snapshot(&doc).unwrap();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "counters" {
                    *v = Json::obj(vec![("neg", Json::Num(-1.0))]);
                }
            }
        }
        assert!(validate_metrics_snapshot(&doc)
            .unwrap_err()
            .contains("counters.neg"));
        assert!(validate_metrics_snapshot(&Json::obj(vec![(
            "schema",
            Json::Str("htforge.run_report/v1".into())
        )]))
        .unwrap_err()
        .contains("expected"));
    }

    #[test]
    fn timeline_from_durations_accumulates_offsets() {
        let tl = JobTimeline::from_durations(
            "00000000deadbeef",
            &[
                ("preprocess".to_owned(), 2.0),
                ("rare_extraction".to_owned(), 10.0),
                ("insertion".to_owned(), 5.0),
            ],
        );
        assert_eq!(tl.phases[0].start_ms, 0.0);
        assert_eq!(tl.phases[1].start_ms, 2.0);
        assert_eq!(tl.phases[2].start_ms, 12.0);
        let doc = tl.to_json();
        validate_job_timeline(&doc).unwrap();
        validate_any_json(&doc).unwrap();
    }

    #[test]
    fn timeline_validation_rejects_bad_documents() {
        let ok = JobTimeline::from_durations("ab12", &[("p".to_owned(), 1.0)]);
        validate_job_timeline(&ok.to_json()).unwrap();
        let bad_trace = JobTimeline::from_durations("not hex!", &[]);
        assert!(validate_job_timeline(&bad_trace.to_json())
            .unwrap_err()
            .contains("hex"));
        let mut neg = ok;
        neg.phases[0].dur_ms = -1.0;
        assert!(validate_job_timeline(&neg.to_json())
            .unwrap_err()
            .contains("negative"));
    }

    #[test]
    fn progress_frames_round_trip_and_validate() {
        let bare = ProgressFrame::event("compat_graph", "enter");
        let doc = bare.to_json();
        validate_job_progress(&doc).unwrap();
        assert!(doc.get("percent").is_none(), "optional fields omitted");

        let full = ProgressFrame {
            phase: "simulate".into(),
            event: "progress".into(),
            percent: Some(42.5),
            eta_ms: Some(1500.0),
            detail: Some("chunk 17/40".into()),
        };
        let doc = full.to_json();
        validate_job_progress(&doc).unwrap();
        validate_any_str(&doc.compact()).unwrap();
        assert_eq!(doc.get("percent").unwrap().as_f64(), Some(42.5));

        let mut bad = full.clone();
        bad.event = "explode".into();
        assert!(validate_job_progress(&bad.to_json())
            .unwrap_err()
            .contains("explode"));
        let mut over = full;
        over.percent = Some(120.0);
        assert!(validate_job_progress(&over.to_json())
            .unwrap_err()
            .contains("outside"));
    }

    #[test]
    fn netlist_scaling_validates_and_rejects_bad_rows() {
        let row = |gates: f64| {
            Json::obj(vec![
                ("gates", Json::Num(gates)),
                ("nodes", Json::Num(gates + 4.0)),
                ("bench_bytes", Json::Num(gates * 30.0)),
                ("memory_bytes", Json::Num(gates * 60.0)),
                ("rss_peak_kb", Json::Num(10_000.0)),
                ("levels", Json::Num(120.0)),
                ("rare_nodes", Json::Num(17.0)),
                (
                    "seconds",
                    Json::obj(vec![
                        ("flatten", Json::Num(0.01)),
                        ("parse", Json::Num(0.05)),
                        ("levelize", Json::Num(0.002)),
                        ("rare_extract", Json::Num(0.03)),
                    ]),
                ),
            ])
        };
        let doc = Json::obj(vec![
            ("schema", Json::Str(NETLIST_SCALING_SCHEMA.into())),
            ("results", Json::Arr(vec![row(10_000.0), row(100_000.0)])),
        ]);
        validate_netlist_scaling(&doc).unwrap();
        validate_any_str(&doc.compact()).unwrap();

        let empty = Json::obj(vec![
            ("schema", Json::Str(NETLIST_SCALING_SCHEMA.into())),
            ("results", Json::Arr(vec![])),
        ]);
        assert!(validate_netlist_scaling(&empty)
            .unwrap_err()
            .contains("empty"));

        let unsorted = Json::obj(vec![
            ("schema", Json::Str(NETLIST_SCALING_SCHEMA.into())),
            ("results", Json::Arr(vec![row(100_000.0), row(10_000.0)])),
        ]);
        assert!(validate_netlist_scaling(&unsorted)
            .unwrap_err()
            .contains("ascend"));

        let mut bad_row = row(10_000.0);
        if let Json::Obj(fields) = &mut bad_row {
            fields.retain(|(k, _)| k != "seconds");
        }
        let missing = Json::obj(vec![
            ("schema", Json::Str(NETLIST_SCALING_SCHEMA.into())),
            ("results", Json::Arr(vec![bad_row])),
        ]);
        assert!(validate_netlist_scaling(&missing)
            .unwrap_err()
            .contains("seconds"));
    }

    #[test]
    fn validate_any_dispatches_and_rejects_unknown_schemas() {
        assert!(validate_any_str("{}").unwrap_err().contains("schema"));
        let unknown = Json::obj(vec![("schema", Json::Str("htforge.other/v9".into()))]);
        assert!(validate_any_json(&unknown)
            .unwrap_err()
            .contains("htforge.other/v9"));
        // Run reports dispatch through to the report validator.
        let rec = Recorder::new();
        let report = crate::report::RunReport::from_recorder("unit", &rec);
        validate_any_str(&report.pretty()).unwrap();
    }
}
