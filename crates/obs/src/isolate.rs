//! Panic isolation: run a closure, convert an unwind into an error
//! string carrying the panic payload. Used by campaign drivers so one
//! panicking circuit cannot kill a multi-circuit run.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Extracts a human-readable message from a panic payload.
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f`, catching any panic and reporting it as
/// `Err("panic in <label>: <payload>")`.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers must not
/// rely on state the closure was mutating when it panicked (campaign
/// drivers discard the circuit's partial state, which is exactly the
/// intended use).
///
/// # Errors
///
/// The captured panic message, prefixed with `label`.
pub fn isolate<T>(label: &str, f: impl FnOnce() -> T) -> Result<T, String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(format!("panic in {label}: {}", panic_message(&*payload))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_success() {
        assert_eq!(isolate("unit", || 41 + 1), Ok(42));
    }

    #[test]
    fn captures_str_and_string_payloads() {
        let err = isolate("circuit c17", || panic!("static payload")).unwrap_err();
        assert_eq!(err, "panic in circuit c17: static payload");
        let err = isolate("x", || panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(err, "panic in x: formatted 7");
    }

    #[test]
    fn reports_non_string_payloads() {
        let err = isolate("x", || std::panic::panic_any(17_u32)).unwrap_err();
        assert!(err.contains("non-string panic payload"), "{err}");
    }
}
