//! Cooperative run budgets: wall-clock deadlines, cancellation tokens
//! and the structured [`DegradationNote`]s a budget-constrained run
//! attaches to its partial results (see `DESIGN.md` §9).
//!
//! A [`RunBudget`] is cheap to clone and share: the deadline is a plain
//! `Option<Instant>` and cancellation is one shared atomic flag. Hot
//! loops amortize the `Instant` read with a [`BudgetTicker`] so the
//! disabled path (unlimited budget) costs a branch on a `None`.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::json::Json;

/// A shared cancellation flag. Cloning hands out another handle to the
/// same flag; any holder can cancel, every holder observes it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a budget check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "deadline exceeded"),
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A wall-clock deadline plus a cooperative cancellation token, threaded
/// through every pipeline phase. The default ([`RunBudget::unlimited`])
/// never expires.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    deadline: Option<Instant>,
    cancel: CancelToken,
}

impl RunBudget {
    /// A budget that never expires (cancellation still works via the
    /// attached token).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget expiring `limit` from now.
    #[must_use]
    pub fn with_deadline(limit: Duration) -> Self {
        RunBudget {
            deadline: Some(Instant::now() + limit),
            cancel: CancelToken::new(),
        }
    }

    /// A budget expiring at `deadline` (if any), cancelled via `token`.
    #[must_use]
    pub fn new(deadline: Option<Instant>, token: CancelToken) -> Self {
        RunBudget {
            deadline,
            cancel: token,
        }
    }

    /// A handle to this budget's cancellation token.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether this budget has no deadline. (It may still be cancelled.)
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
    }

    /// The absolute deadline, if one is set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline (if any) has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Returns `Err` when the budget is spent. Cancellation wins over
    /// the deadline so an explicit Ctrl-C is reported as such.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded::Cancelled`] or [`BudgetExceeded::Deadline`].
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if self.cancelled() {
            return Err(BudgetExceeded::Cancelled);
        }
        if self.expired() {
            return Err(BudgetExceeded::Deadline);
        }
        Ok(())
    }

    /// Time left until the deadline (`None` when unlimited; zero when
    /// already expired).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Derives a sub-budget covering `fraction` of the time remaining
    /// now, sharing this budget's cancellation token. The child's
    /// deadline never exceeds the parent's; an unlimited parent yields
    /// an unlimited child.
    #[must_use]
    pub fn sub(&self, fraction: f64) -> RunBudget {
        let deadline = self.deadline.map(|parent| {
            let now = Instant::now();
            let left = parent.saturating_duration_since(now);
            let slice = left.mul_f64(fraction.clamp(0.0, 1.0));
            (now + slice).min(parent)
        });
        RunBudget {
            deadline,
            cancel: self.cancel.clone(),
        }
    }

    /// Splits this budget across an ordered sequence of phases by
    /// weight, reclaiming time a phase leaves unused (see
    /// [`StagedBudget`]).
    #[must_use]
    pub fn staged(&self, weights: &[f64]) -> StagedBudget {
        StagedBudget {
            parent: self.clone(),
            weights: weights.to_vec(),
            next: 0,
        }
    }
}

/// Splits one [`RunBudget`] across an ordered sequence of pipeline
/// phases by weight, *reclaiming* slack as it goes: each call to
/// [`StagedBudget::next_stage`] slices `w_i / Σ_{j≥i} w_j` of the time
/// remaining **now**, so a phase that finishes early automatically
/// donates its leftover share to every later phase instead of
/// stranding it. Under full pressure (every phase consuming its whole
/// slice) the schedule matches a static pre-allocation of the same
/// weights, so tight-deadline behavior is a strict improvement, never
/// a redistribution away from a starving phase.
///
/// Calling [`StagedBudget::next_stage`] past the last weight (or with
/// a non-positive weight tail) hands out the full remainder.
#[derive(Debug)]
pub struct StagedBudget {
    parent: RunBudget,
    weights: Vec<f64>,
    next: usize,
}

impl StagedBudget {
    /// Derives the sub-budget for the next stage in the sequence: its
    /// share is `w_i / Σ_{j≥i} w_j` of the parent's time remaining at
    /// the moment of the call.
    #[must_use]
    pub fn next_stage(&mut self) -> RunBudget {
        let tail: f64 = self.weights[self.next.min(self.weights.len())..]
            .iter()
            .sum();
        let w = self.weights.get(self.next).copied().unwrap_or(0.0);
        self.next = (self.next + 1).min(self.weights.len());
        if tail <= 0.0 {
            return self.parent.sub(1.0);
        }
        self.parent.sub(w / tail)
    }

    /// The budget being split.
    #[must_use]
    pub fn parent(&self) -> &RunBudget {
        &self.parent
    }

    /// How many stages have been handed out so far.
    #[must_use]
    pub fn stages_taken(&self) -> usize {
        self.next
    }
}

/// Amortizes budget checks in hot loops: `tick()` does one integer
/// increment per call and only consults the clock every `period` calls
/// (rounded up to a power of two). Once exceeded, the verdict is sticky.
#[derive(Debug)]
pub struct BudgetTicker {
    budget: RunBudget,
    mask: u32,
    count: u32,
    exceeded: Option<BudgetExceeded>,
}

impl BudgetTicker {
    /// A ticker over `budget` checking the clock every `period` ticks.
    #[must_use]
    pub fn new(budget: RunBudget, period: u32) -> Self {
        BudgetTicker {
            budget,
            mask: period.max(1).next_power_of_two() - 1,
            count: 0,
            exceeded: None,
        }
    }

    /// Registers one unit of work; periodically performs a full check.
    ///
    /// # Errors
    ///
    /// The sticky [`BudgetExceeded`] verdict once the budget is spent.
    #[inline]
    pub fn tick(&mut self) -> Result<(), BudgetExceeded> {
        if let Some(e) = self.exceeded {
            return Err(e);
        }
        self.count = self.count.wrapping_add(1);
        if self.count & self.mask == 0 {
            self.check_now()?;
        }
        Ok(())
    }

    /// Performs an immediate (non-amortized) check.
    ///
    /// # Errors
    ///
    /// The sticky [`BudgetExceeded`] verdict once the budget is spent.
    pub fn check_now(&mut self) -> Result<(), BudgetExceeded> {
        if let Some(e) = self.exceeded {
            return Err(e);
        }
        match self.budget.check() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.exceeded = Some(e);
                Err(e)
            }
        }
    }

    /// The sticky verdict, if the budget was exceeded.
    #[must_use]
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        self.exceeded
    }

    /// The underlying budget.
    #[must_use]
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }
}

/// A structured record of one degradation decision: which phase gave
/// ground, what it did instead, and why. Attached to partial results
/// and emitted into run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationNote {
    /// Pipeline phase that degraded (e.g. `clique_enumeration`).
    pub phase: String,
    /// What the phase did instead (e.g. `greedy_fallback`).
    pub action: String,
    /// Human-readable specifics (counts, limits hit).
    pub detail: String,
}

impl DegradationNote {
    /// Builds a note.
    #[must_use]
    pub fn new(phase: &str, action: &str, detail: impl Into<String>) -> Self {
        DegradationNote {
            phase: phase.to_owned(),
            action: action.to_owned(),
            detail: detail.into(),
        }
    }

    /// The note as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("phase", Json::Str(self.phase.clone())),
            ("action", Json::Str(self.action.clone())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

impl fmt::Display for DegradationNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.phase, self.action, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.expired());
        assert!(b.check().is_ok());
        assert_eq!(b.remaining(), None);
        let sub = b.sub(0.5);
        assert!(sub.is_unlimited());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let b = RunBudget::with_deadline(Duration::ZERO);
        assert!(b.expired());
        assert_eq!(b.check(), Err(BudgetExceeded::Deadline));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_propagates_through_clones_and_subs() {
        let b = RunBudget::with_deadline(Duration::from_secs(3600));
        let sub = b.sub(0.25);
        assert!(sub.check().is_ok());
        b.cancel_token().cancel();
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
        assert_eq!(sub.check(), Err(BudgetExceeded::Cancelled));
        // Cancellation outranks an expired deadline.
        let spent = RunBudget::with_deadline(Duration::ZERO);
        spent.cancel_token().cancel();
        assert_eq!(spent.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn sub_budget_never_outlives_parent() {
        let b = RunBudget::with_deadline(Duration::from_millis(50));
        let sub = b.sub(1.0);
        assert!(sub.deadline().unwrap() <= b.deadline().unwrap());
        let tiny = b.sub(0.0);
        assert!(tiny.expired());
    }

    #[test]
    fn ticker_is_sticky_and_amortized() {
        let mut t = BudgetTicker::new(RunBudget::with_deadline(Duration::ZERO), 8);
        // The first 7 ticks are free (amortized); the 8th checks.
        let mut tripped_at = None;
        for i in 1..=16 {
            if t.tick().is_err() {
                tripped_at = Some(i);
                break;
            }
        }
        assert_eq!(tripped_at, Some(8));
        assert_eq!(t.exceeded(), Some(BudgetExceeded::Deadline));
        assert_eq!(t.tick(), Err(BudgetExceeded::Deadline));
    }

    #[test]
    fn ticker_unlimited_is_free() {
        let mut t = BudgetTicker::new(RunBudget::unlimited(), 1024);
        for _ in 0..10_000 {
            assert!(t.tick().is_ok());
        }
        assert_eq!(t.exceeded(), None);
    }

    #[test]
    fn staged_split_matches_static_chain_under_full_pressure() {
        // The framework's weights [0.25, 0.52, 0.14, 0.09] renormalize
        // to the historical static fractions 0.25 / ~0.70 / ~0.60 / 1.0
        // when every phase consumes its whole slice.
        let b = RunBudget::with_deadline(Duration::from_secs(100));
        let mut stages = b.staged(&[0.25, 0.52, 0.14, 0.09]);
        let rare = stages.next_stage().remaining().unwrap();
        assert!(
            rare >= Duration::from_secs(24) && rare <= Duration::from_secs(26),
            "rare slice should be ~25s, got {rare:?}"
        );
        assert_eq!(stages.stages_taken(), 1);
    }

    #[test]
    fn fast_rare_extraction_donates_budget_to_clique_stage() {
        // With a static chain, the clique phase is pre-allocated 14% of
        // the pipeline budget. When the rare-extraction and compat
        // stages complete (here: instantly, without consuming their
        // slices), the staged split hands the clique stage ~61% of the
        // nearly-untouched remainder — the donated slack.
        let b = RunBudget::with_deadline(Duration::from_secs(100));
        let mut stages = b.staged(&[0.25, 0.52, 0.14, 0.09]);
        let _rare = stages.next_stage(); // completes immediately
        let _compat = stages.next_stage(); // completes immediately
        let clique = stages.next_stage().remaining().unwrap();
        assert!(
            clique > Duration::from_secs(50),
            "clique stage should inherit donated slack (~61s), got {clique:?}; \
             a static pre-allocation would cap it at 14s"
        );
        // The final stage receives the full remainder.
        let insertion = stages.next_stage().remaining().unwrap();
        assert!(insertion > Duration::from_secs(90), "got {insertion:?}");
        // Past the last weight: still the full remainder, no panic.
        assert!(stages.next_stage().remaining().unwrap() > Duration::from_secs(90));
    }

    #[test]
    fn staged_split_of_unlimited_budget_is_unlimited() {
        let b = RunBudget::unlimited();
        let mut stages = b.staged(&[0.5, 0.5]);
        assert!(stages.next_stage().is_unlimited());
        assert!(stages.next_stage().is_unlimited());
        // Cancellation still propagates through staged children.
        let b = RunBudget::unlimited();
        let mut stages = b.staged(&[1.0]);
        let child = stages.next_stage();
        b.cancel_token().cancel();
        assert_eq!(child.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn degradation_note_serializes() {
        let note = DegradationNote::new("clique_enumeration", "greedy_fallback", "budget spent");
        let json = note.to_json();
        assert_eq!(
            json.get("phase").unwrap().as_str(),
            Some("clique_enumeration")
        );
        assert_eq!(
            json.get("action").unwrap().as_str(),
            Some("greedy_fallback")
        );
        assert!(note.to_string().contains("greedy_fallback"));
    }
}
