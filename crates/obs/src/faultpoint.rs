//! Named fault-injection points for chaos testing (see `DESIGN.md` §9).
//!
//! Library code marks interesting failure sites with the
//! [`faultpoint!`](crate::faultpoint!) macro. In production nothing is
//! armed and a faultpoint costs one relaxed atomic load. Tests (or an
//! operator) arm points either programmatically ([`arm`]) or through
//! the environment:
//!
//! ```text
//! HTFORGE_FAULT=campaign.circuit:panic,podem.generate:delay:250
//! ```
//!
//! Each entry is `<point>:<action>` where `<action>` is `panic`,
//! `delay:<ms>` or `err`. `panic` and `delay` take effect inside
//! [`fire`] itself; `err` makes [`fire`] return `true` so the macro's
//! two-argument form can return a caller-supplied error.
//!
//! Arming is process-global; chaos tests that arm points must serialize
//! (the suite uses a shared mutex) and call [`disarm_all`] when done.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Every faultpoint compiled into the workspace, in pipeline order.
/// Chaos tests iterate this list; [`arm`] rejects names not on it.
pub const CATALOG: &[&str] = &[
    "sim.level_worker",
    "sim.delta_propagate",
    "rare.extract_chunk",
    "podem.generate",
    "compat.cube",
    "compat.matrix_row",
    "clique.extend",
    "insert.instance",
    "framework.validate",
    "detect.design",
    "campaign.circuit",
    "checkpoint.write",
    "server.dispatch",
    "server.respond",
    "server.progress",
    "server.journal_append",
    "server.journal_replay",
    "server.accept",
];

/// What an armed faultpoint does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic with a recognizable message (exercises isolation paths).
    Panic,
    /// Sleep for the given duration (exercises deadline paths).
    Delay(Duration),
    /// Make [`fire`] return `true` (exercises error-return paths).
    Err,
}

const UNINIT: u8 = 0;
const DISARMED: u8 = 1;
const ARMED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

fn armed_map() -> &'static Mutex<HashMap<String, Action>> {
    static MAP: OnceLock<Mutex<HashMap<String, Action>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Parses one `<point>:<action>` spec.
fn parse_entry(entry: &str) -> Result<(String, Action), String> {
    let (point, action) = entry
        .split_once(':')
        .ok_or_else(|| format!("`{entry}`: expected <point>:<action>"))?;
    if !CATALOG.contains(&point) {
        return Err(format!("`{point}`: unknown faultpoint (see CATALOG)"));
    }
    let action = match action {
        "panic" => Action::Panic,
        "err" => Action::Err,
        delay if delay.starts_with("delay:") => {
            let ms: u64 = delay["delay:".len()..]
                .parse()
                .map_err(|_| format!("`{entry}`: delay wants integer milliseconds"))?;
            Action::Delay(Duration::from_millis(ms))
        }
        other => return Err(format!("`{other}`: expected panic, delay:<ms> or err")),
    };
    Ok((point.to_owned(), action))
}

/// Initializes the armed set from `HTFORGE_FAULT` if still uninitialized.
fn ensure_init() {
    if STATE.load(Ordering::Relaxed) != UNINIT {
        return;
    }
    let mut map = armed_map().lock().unwrap();
    // Re-check under the lock so a racing initializer wins cleanly.
    if STATE.load(Ordering::Relaxed) != UNINIT {
        return;
    }
    let spec = std::env::var("HTFORGE_FAULT").unwrap_or_default();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        match parse_entry(entry) {
            Ok((point, action)) => {
                map.insert(point, action);
            }
            Err(msg) => eprintln!("HTFORGE_FAULT: {msg}"),
        }
    }
    let state = if map.is_empty() { DISARMED } else { ARMED };
    STATE.store(state, Ordering::Release);
}

/// Arms `point` with `action` (test API). Takes effect process-wide.
///
/// # Panics
///
/// Panics if `point` is not in [`CATALOG`] — an armed typo would
/// otherwise silently test nothing.
pub fn arm(point: &str, action: Action) {
    assert!(
        CATALOG.contains(&point),
        "faultpoint::arm: `{point}` is not in CATALOG"
    );
    ensure_init();
    let mut map = armed_map().lock().unwrap();
    map.insert(point.to_owned(), action);
    STATE.store(ARMED, Ordering::Release);
}

/// Disarms every faultpoint (including ones armed via `HTFORGE_FAULT`).
pub fn disarm_all() {
    ensure_init();
    let mut map = armed_map().lock().unwrap();
    map.clear();
    STATE.store(DISARMED, Ordering::Release);
}

/// The action currently armed for `point`, if any.
#[must_use]
pub fn armed_action(point: &str) -> Option<Action> {
    ensure_init();
    armed_map().lock().unwrap().get(point).copied()
}

/// Hits the faultpoint: executes an armed `panic`/`delay` action in
/// place and returns `true` when an `err` action is armed (the caller —
/// normally the [`faultpoint!`](crate::faultpoint!) macro — then
/// returns its own error). Disarmed cost: one relaxed atomic load.
///
/// # Panics
///
/// Panics (by design) when `point` is armed with [`Action::Panic`].
#[inline]
pub fn fire(point: &str) -> bool {
    if STATE.load(Ordering::Relaxed) == DISARMED {
        return false;
    }
    fire_slow(point)
}

#[cold]
fn fire_slow(point: &str) -> bool {
    ensure_init();
    let action = match armed_action(point) {
        Some(a) => a,
        None => return false,
    };
    match action {
        Action::Panic => panic!("injected fault at `{point}`"),
        Action::Delay(d) => {
            std::thread::sleep(d);
            false
        }
        Action::Err => true,
    }
}

/// Marks a named fault-injection site.
///
/// * `faultpoint!("name")` — executes an armed `panic`/`delay` action;
///   an armed `err` action is ignored (no error channel here).
/// * `faultpoint!("name", expr)` — additionally does `return Err(expr)`
///   when an `err` action is armed; usable in functions returning
///   `Result`.
#[macro_export]
macro_rules! faultpoint {
    ($name:expr) => {
        let _ = $crate::faultpoint::fire($name);
    };
    ($name:expr, $err:expr) => {
        if $crate::faultpoint::fire($name) {
            return Err($err);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Arming is process-global state: every test that arms must hold
    // this lock and disarm on the way out.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_entry_accepts_the_three_actions() {
        assert_eq!(
            parse_entry("campaign.circuit:panic"),
            Ok(("campaign.circuit".into(), Action::Panic))
        );
        assert_eq!(
            parse_entry("podem.generate:delay:250"),
            Ok((
                "podem.generate".into(),
                Action::Delay(Duration::from_millis(250))
            ))
        );
        assert_eq!(
            parse_entry("compat.cube:err"),
            Ok(("compat.cube".into(), Action::Err))
        );
        assert!(parse_entry("nope").is_err());
        assert!(parse_entry("not.a.point:panic").is_err());
        assert!(parse_entry("compat.cube:explode").is_err());
        assert!(parse_entry("compat.cube:delay:soon").is_err());
    }

    #[test]
    fn disarmed_fire_is_silent() {
        let _gate = GATE.lock().unwrap();
        disarm_all();
        assert!(!fire("campaign.circuit"));
    }

    #[test]
    fn err_action_reports_through_fire_and_macro() {
        let _gate = GATE.lock().unwrap();
        arm("compat.cube", Action::Err);
        assert!(fire("compat.cube"));
        assert!(!fire("campaign.circuit")); // other points unaffected
        fn guarded() -> Result<u32, String> {
            faultpoint!("compat.cube", "injected".to_owned());
            Ok(7)
        }
        assert_eq!(guarded(), Err("injected".to_owned()));
        disarm_all();
        assert_eq!(guarded(), Ok(7));
    }

    #[test]
    fn panic_action_panics_with_point_name() {
        let _gate = GATE.lock().unwrap();
        arm("clique.extend", Action::Panic);
        let payload = std::panic::catch_unwind(|| fire("clique.extend")).unwrap_err();
        disarm_all();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("clique.extend"), "{msg}");
    }

    #[test]
    fn delay_action_sleeps() {
        let _gate = GATE.lock().unwrap();
        arm("podem.generate", Action::Delay(Duration::from_millis(30)));
        let t0 = std::time::Instant::now();
        assert!(!fire("podem.generate"));
        disarm_all();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "not in CATALOG")]
    fn arm_rejects_unknown_points() {
        arm("no.such.point", Action::Err);
    }
}
