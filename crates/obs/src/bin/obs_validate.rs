//! Validates htforge telemetry JSON files (CI schema gate).
//!
//! Usage:
//!
//! * `obs_validate <doc.json>...` — each file is one schema-tagged
//!   document (`htforge.run_report/v1`, `htforge.metrics_snapshot/v1`,
//!   `htforge.job_timeline/v1` or `htforge.job_progress/v1`), dispatched
//!   on its `schema` field.
//! * `obs_validate --frames <session.jsonl>...` — each file is a
//!   campaign-server JSONL session transcript; every embedded telemetry
//!   frame (`progress` bodies, terminal `timeline`s, `metrics`
//!   snapshots, run `report`s) is extracted and validated. Bare
//!   schema-tagged lines — including `htforge.server_journal/v1`
//!   records from `htforge-server --dump-journal` — validate too, so a
//!   journal dump is checkable end to end with the same gate.
//!
//! Exits non-zero if any file is missing, unparseable, or violates its
//! schema.

use std::process::ExitCode;

use htforge_obs::{parse_json, validate_any_json, Json};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let frames_mode = args.first().map(String::as_str) == Some("--frames");
    if frames_mode {
        args.remove(0);
    }
    if args.is_empty() {
        eprintln!("usage: obs_validate [--frames] <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let result = if frames_mode {
            validate_session(&text)
        } else {
            htforge_obs::validate_any_str(&text).map(|()| 1)
        };
        match result {
            Ok(n) => println!("{path}: ok ({n} frame{})", if n == 1 { "" } else { "s" }),
            Err(msg) => {
                eprintln!("{path}: INVALID: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates every embedded telemetry frame in a JSONL session
/// transcript, returning how many frames were checked. A transcript
/// with zero extractable frames is an error — it means the capture
/// went wrong, not that everything validated.
fn validate_session(text: &str) -> Result<usize, String> {
    let mut frames = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        for field in ["progress", "timeline", "snapshot", "report"] {
            if let Some(embedded) = doc.get(field) {
                validate_any_json(embedded)
                    .map_err(|e| format!("line {}: `{field}`: {e}", lineno + 1))?;
                frames += 1;
            }
        }
        // A bare schema-tagged telemetry document on its own line (the
        // obs JSONL stream interleaved into a capture) also counts.
        if let Some(schema) = doc.get("schema").and_then(Json::as_str) {
            if schema.starts_with("htforge.")
                && schema != "htforge.job_request/v1"
                && schema != "htforge.job_response/v1"
                && schema != "htforge.campaign_ckpt/v1"
            {
                validate_any_json(&doc).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                frames += 1;
            }
        }
    }
    if frames == 0 {
        return Err("no telemetry frames found in transcript".into());
    }
    Ok(frames)
}
