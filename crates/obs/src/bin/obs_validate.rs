//! Validates `htforge.run_report/v1` JSON files (CI schema gate).
//!
//! Usage: `obs_validate <report.json>...` — exits non-zero if any file
//! is missing, unparseable, or violates the schema.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs_validate <report.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match htforge_obs::validate_str(&text) {
                Ok(()) => println!("{path}: ok"),
                Err(msg) => {
                    eprintln!("{path}: INVALID: {msg}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
