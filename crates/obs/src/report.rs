//! The `RunReport` JSON artifact: a self-describing snapshot of one
//! pipeline run (spans, counters, gauges, histogram summaries), written
//! by the benchmark binaries and examples as `results/report_<name>.json`
//! and validated by `obs_validate` in CI.

use std::io;
use std::path::Path;

use crate::budget::DegradationNote;
use crate::json::{self, Json};
use crate::recorder::Recorder;

/// The schema identifier written into (and required from) every report.
pub const SCHEMA: &str = "htforge.run_report/v1";

/// One histogram's summary statistics as reported.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramReport {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (log-linear bucket resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A serializable snapshot of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Report name, typically `<binary>_<circuit>`.
    pub name: String,
    /// Free-form metadata (circuit, mode, parameters), insertion order.
    pub meta: Vec<(String, Json)>,
    /// Completed spans: `(id, parent, name, start_us, dur_us)`.
    pub spans: Vec<SpanEntry>,
    /// Counter name → value, sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary, sorted.
    pub histograms: Vec<(String, HistogramReport)>,
    /// Degradation decisions the run took under budget pressure
    /// (empty for a run that completed in full).
    pub degradations: Vec<DegradationNote>,
}

/// One span row in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEntry {
    /// Span id (start order within the run).
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start offset in microseconds from the recorder epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Key/value span attributes (e.g. the kernel's chosen strategy).
    /// Omitted from the JSON when empty.
    pub attrs: Vec<(String, String)>,
}

impl RunReport {
    /// Builds a report from the recorder's current spans and metrics.
    /// Empty metrics (zero counters, zero gauges, empty histograms) are
    /// omitted so reports only list what the run actually touched.
    #[must_use]
    pub fn from_recorder(name: &str, recorder: &Recorder) -> Self {
        let snap = recorder.snapshot();
        RunReport {
            name: name.to_owned(),
            meta: Vec::new(),
            spans: recorder
                .spans()
                .into_iter()
                .map(|s| SpanEntry {
                    id: s.id,
                    parent: s.parent,
                    name: s.name,
                    start_us: s.start_ns as f64 / 1_000.0,
                    dur_us: s.dur_ns as f64 / 1_000.0,
                    attrs: s.attrs,
                })
                .collect(),
            counters: snap.counters.into_iter().filter(|(_, v)| *v > 0).collect(),
            gauges: snap.gauges.into_iter().filter(|(_, v)| *v != 0.0).collect(),
            histograms: snap
                .histograms
                .into_iter()
                .filter(|(_, h)| h.count > 0)
                .map(|(name, h)| {
                    let report = HistogramReport {
                        count: h.count,
                        min: h.min,
                        max: h.max,
                        mean: h.mean().unwrap_or(0.0),
                        p50: h.percentile(0.5).unwrap_or(0),
                        p90: h.percentile(0.9).unwrap_or(0),
                        p99: h.percentile(0.99).unwrap_or(0),
                    };
                    (name, report)
                })
                .collect(),
            degradations: Vec::new(),
        }
    }

    /// Adds a metadata field (builder style).
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: Json) -> Self {
        self.meta.push((key.to_owned(), value));
        self
    }

    /// Attaches degradation notes (builder style).
    #[must_use]
    pub fn with_degradations(mut self, notes: &[DegradationNote]) -> Self {
        self.degradations.extend(notes.iter().cloned());
        self
    }

    /// The report as a JSON document. The `degradations` array is only
    /// emitted when non-empty, so fully-completed runs keep the exact
    /// pre-resilience layout.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Str(SCHEMA.to_owned())),
            ("name", Json::Str(self.name.clone())),
            ("meta", Json::Obj(self.meta.clone())),
            (
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            let mut span_fields = vec![
                                ("id", Json::Num(s.id as f64)),
                                (
                                    "parent",
                                    s.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                                ),
                                ("name", Json::Str(s.name.clone())),
                                ("start_us", Json::Num(s.start_us)),
                                ("dur_us", Json::Num(s.dur_us)),
                            ];
                            if !s.attrs.is_empty() {
                                span_fields.push((
                                    "attrs",
                                    Json::Obj(
                                        s.attrs
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                            .collect(),
                                    ),
                                ));
                            }
                            Json::obj(span_fields)
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Json::obj(vec![
                                    ("count", Json::Num(h.count as f64)),
                                    ("min", Json::Num(h.min as f64)),
                                    ("max", Json::Num(h.max as f64)),
                                    ("mean", Json::Num(h.mean)),
                                    ("p50", Json::Num(h.p50 as f64)),
                                    ("p90", Json::Num(h.p90 as f64)),
                                    ("p99", Json::Num(h.p99 as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.degradations.is_empty() {
            fields.push((
                "degradations",
                Json::Arr(
                    self.degradations
                        .iter()
                        .map(DegradationNote::to_json)
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }

    /// Serializes the report (pretty, trailing newline).
    #[must_use]
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Writes the report to `path` atomically (temp file + rename),
    /// creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.pretty())
    }

    /// The counter value recorded under `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Names of all spans in the report, in start order.
    #[must_use]
    pub fn span_names(&self) -> Vec<&str> {
        self.spans.iter().map(|s| s.name.as_str()).collect()
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file which is then renamed over `path`, so readers (and an
/// interrupted run) only ever observe the old complete file or the new
/// complete file — never a truncated one. Parent directories are
/// created as needed.
///
/// # Errors
///
/// Propagates filesystem errors; the temporary file is removed on a
/// failed rename.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            std::fs::create_dir_all(p)?;
            p.to_owned()
        }
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = parent.join(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Checks that `doc` is a structurally valid `v1` run report.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_json(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` field")?;
    if schema != SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
    }
    doc.get("name")
        .and_then(Json::as_str)
        .ok_or("missing `name` field")?;
    doc.get("meta")
        .and_then(Json::as_obj)
        .ok_or("`meta` must be an object")?;
    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("`spans` must be an array")?;
    let mut ids = std::collections::BTreeSet::new();
    for (i, span) in spans.iter().enumerate() {
        let id = span
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("spans[{i}]: missing integer `id`"))?;
        ids.insert(id);
        span.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("spans[{i}]: missing `name`"))?;
        for key in ["start_us", "dur_us"] {
            let v = span
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("spans[{i}]: missing number `{key}`"))?;
            if v < 0.0 {
                return Err(format!("spans[{i}]: `{key}` is negative"));
            }
        }
        match span.get("parent") {
            Some(Json::Null) | None => {}
            Some(p) => {
                p.as_u64()
                    .ok_or_else(|| format!("spans[{i}]: `parent` must be null or integer"))?;
            }
        }
        // `attrs` is optional; when present it must be a string→string
        // object.
        if let Some(attrs) = span.get("attrs") {
            let obj = attrs
                .as_obj()
                .ok_or_else(|| format!("spans[{i}]: `attrs` must be an object"))?;
            for (key, value) in obj {
                if value.as_str().is_none() {
                    return Err(format!("spans[{i}]: attrs.{key} must be a string"));
                }
            }
        }
    }
    // Parents must reference spans in the same report.
    for (i, span) in spans.iter().enumerate() {
        if let Some(parent) = span.get("parent").and_then(Json::as_u64) {
            if !ids.contains(&parent) {
                return Err(format!("spans[{i}]: parent {parent} not in report"));
            }
        }
    }
    for (section, check_num) in [("counters", true), ("gauges", false)] {
        let obj = doc
            .get(section)
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("`{section}` must be an object"))?;
        for (key, value) in obj {
            let ok = if check_num {
                value.as_u64().is_some()
            } else {
                value.as_f64().is_some()
            };
            if !ok {
                return Err(format!("{section}.{key}: wrong value type"));
            }
        }
    }
    let hists = doc
        .get("histograms")
        .and_then(Json::as_obj)
        .ok_or("`histograms` must be an object")?;
    for (key, value) in hists {
        for field in ["count", "min", "max", "p50", "p90", "p99"] {
            value
                .get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histograms.{key}: missing integer `{field}`"))?;
        }
        value
            .get("mean")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histograms.{key}: missing number `mean`"))?;
    }
    // `degradations` is optional (absent for fully-completed runs).
    if let Some(deg) = doc.get("degradations") {
        let arr = deg.as_arr().ok_or("`degradations` must be an array")?;
        for (i, note) in arr.iter().enumerate() {
            for field in ["phase", "action", "detail"] {
                note.get(field)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("degradations[{i}]: missing string `{field}`"))?;
            }
        }
    }
    Ok(())
}

/// Parses and validates a serialized run report.
///
/// # Errors
///
/// Returns a description of the parse or schema violation.
pub fn validate_str(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    validate_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let rec = Recorder::new();
        rec.enable();
        let outer = rec.span("compat_graph");
        rec.span("podem").finish();
        outer.finish();
        rec.counter("podem.backtracks").add(42);
        rec.gauge("sim.kernel_words_per_sec").set(1.0e8);
        rec.histogram("podem.backtracks_per_fault").record(7);
        RunReport::from_recorder("unit", &rec).with_meta("circuit", Json::Str("c17".into()))
    }

    #[test]
    fn report_round_trips_and_validates() {
        let report = sample_report();
        let text = report.pretty();
        validate_str(&text).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            doc.get("meta").unwrap().get("circuit").unwrap().as_str(),
            Some("c17")
        );
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("podem.backtracks")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        assert_eq!(doc.get("spans").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn report_accessors() {
        let report = sample_report();
        assert_eq!(report.counter("podem.backtracks"), Some(42));
        assert_eq!(report.counter("absent"), None);
        // Spans are in completion order; both names present.
        let names = report.span_names();
        assert!(names.contains(&"compat_graph") && names.contains(&"podem"));
        // The inner span's parent is the outer span.
        let outer_id = report
            .spans
            .iter()
            .find(|s| s.name == "compat_graph")
            .unwrap()
            .id;
        let inner = report.spans.iter().find(|s| s.name == "podem").unwrap();
        assert_eq!(inner.parent, Some(outer_id));
    }

    #[test]
    fn validation_rejects_bad_documents() {
        assert!(validate_str("not json").is_err());
        assert!(validate_str("{}").unwrap_err().contains("schema"));
        let wrong = Json::obj(vec![("schema", Json::Str("other/v9".into()))]);
        assert!(validate_json(&wrong).unwrap_err().contains("other/v9"));

        // Dangling parent reference.
        let mut report = sample_report();
        report.spans[0].parent = Some(999);
        let err = validate_json(&report.to_json()).unwrap_err();
        assert!(err.contains("999"), "{err}");

        // Negative duration.
        let mut report = sample_report();
        report.spans[0].dur_us = -1.0;
        assert!(validate_json(&report.to_json())
            .unwrap_err()
            .contains("negative"));
    }

    #[test]
    fn span_attrs_round_trip_and_validate() {
        let rec = Recorder::new();
        rec.enable();
        let mut sp = rec.span("sim.kernel_run");
        sp.attr("strategy", "hybrid");
        sp.attr("threads_effective", "4");
        sp.finish();
        let report = RunReport::from_recorder("unit", &rec);
        let text = report.pretty();
        validate_str(&text).unwrap();
        let doc = json::parse(&text).unwrap();
        let span = &doc.get("spans").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            span.get("attrs").unwrap().get("strategy").unwrap().as_str(),
            Some("hybrid")
        );

        // Attribute-free reports must not grow an `attrs` field, and
        // non-string attribute values are rejected.
        let plain = sample_report();
        let plain_span = &plain.to_json().get("spans").unwrap().as_arr().unwrap()[0].clone();
        assert!(plain_span.get("attrs").is_none());
        let mut bad = report;
        bad.spans[0].attrs = vec![("k".to_owned(), "v".to_owned())];
        let mut doc = bad.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "spans" {
                    *value = Json::Arr(vec![Json::obj(vec![
                        ("id", Json::Num(1.0)),
                        ("name", Json::Str("s".into())),
                        ("start_us", Json::Num(0.0)),
                        ("dur_us", Json::Num(1.0)),
                        ("attrs", Json::obj(vec![("n", Json::Num(3.0))])),
                    ])]);
                }
            }
        }
        let err = validate_json(&doc).unwrap_err();
        assert!(err.contains("attrs.n"), "{err}");
    }

    #[test]
    fn degradations_round_trip_and_validate() {
        let plain = sample_report();
        // Absent when empty: pre-resilience layout is preserved.
        assert!(plain.to_json().get("degradations").is_none());

        let report = plain.with_degradations(&[DegradationNote::new(
            "clique_enumeration",
            "greedy_fallback",
            "deadline hit after 12 cliques",
        )]);
        let text = report.pretty();
        validate_str(&text).unwrap();
        let doc = json::parse(&text).unwrap();
        let deg = doc.get("degradations").unwrap().as_arr().unwrap();
        assert_eq!(deg.len(), 1);
        assert_eq!(
            deg[0].get("action").unwrap().as_str(),
            Some("greedy_fallback")
        );

        // Malformed notes are rejected.
        let bad = Json::obj(vec![("phase", Json::Str("x".into()))]);
        let mut doc = json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "degradations" {
                    *v = Json::Arr(vec![bad.clone()]);
                }
            }
        }
        assert!(validate_json(&doc).unwrap_err().contains("degradations[0]"));
    }

    #[test]
    fn write_to_is_atomic_and_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("htforge_obs_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("report.json");
        sample_report().write_to(&path).unwrap();
        validate_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // Overwrite in place; no temp files left behind.
        sample_report().write_to(&path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("report.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_metrics_are_omitted() {
        let rec = Recorder::new();
        rec.counter("touched").incr();
        let _ = rec.counter("untouched");
        let _ = rec.histogram("empty_hist");
        let report = RunReport::from_recorder("unit", &rec);
        assert_eq!(report.counters, vec![("touched".to_owned(), 1)]);
        assert!(report.histograms.is_empty());
        validate_str(&report.pretty()).unwrap();
    }
}
