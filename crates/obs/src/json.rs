//! A minimal JSON value model, writer and parser.
//!
//! The build environment has no crates.io access, so this module is the
//! crate's (and the workspace's) single JSON implementation: enough of
//! RFC 8259 to serialize [`crate::report::RunReport`]s and JSONL event
//! streams, and to parse them back for schema validation and round-trip
//! tests. Object key order is preserved (insertion order) so emitted
//! documents are deterministic.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers are written without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys are not merged).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object nodes.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up `key` in an object node.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number node.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (must be a non-negative integer).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array node.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object node.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes on one line (the JSONL form).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        let _ = write!(out, "\n{}", "  ".repeat(level + 1));
                    }
                    item.write(out, indent.map(|l| l + 1));
                }
                if let Some(level) = indent {
                    let _ = write!(out, "\n{}", "  ".repeat(level));
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        let _ = write!(out, "\n{}", "  ".repeat(level + 1));
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|l| l + 1));
                }
                if let Some(level) = indent {
                    let _ = write!(out, "\n{}", "  ".repeat(level));
                }
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-wrong encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(at: usize, msg: &str) -> ParseError {
    ParseError {
        at,
        msg: msg.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "malformed number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "lone high surrogate"));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            let combined =
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                                .ok_or_else(|| err(*pos, "invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| err(*pos, "invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the full character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseError> {
    let start = *pos + 1;
    let slice = bytes
        .get(start..start + 4)
        .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
    let text = std::str::from_utf8(slice).map_err(|_| err(start, "non-ASCII in \\u escape"))?;
    let v = u32::from_str_radix(text, 16).map_err(|_| err(start, "bad \\u escape"))?;
    *pos += 4;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("c2670 \"quoted\"\n".into())),
            ("count", Json::Num(37816.0)),
            ("ratio", Json::Num(1.42)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("x".into())]),
            ),
        ]);
        for text in [doc.compact(), doc.pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::Num(100.0).compact(), "100");
        assert_eq!(Json::Num(0.5).compact(), "0.5");
        assert_eq!(Json::Num(-3.0).compact(), "-3");
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = parse(r#""a\tbé😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\tbé😀");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 3, "b": [1, 2], "c": "s"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("s"));
        assert!(v.get("d").is_none());
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).compact(), "null");
    }
}
