//! Fixed-width table rendering shared by the end-of-run summary and the
//! benchmark table binaries (moved here from `htforge-bench` so both can
//! use it; `htforge_bench::Table` re-exports this type).

use std::fmt::Write as _;

use crate::json::Json;

/// Minimal fixed-width table printer for terminal reports, with a JSON
/// projection for machine-readable artifacts.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Column headers.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Rows appended so far.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{cell:>width$}", width = widths[c]);
                if c + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// The table as a JSON array of row objects keyed by header. Cells
    /// that parse as numbers become JSON numbers.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    Json::Obj(
                        self.header
                            .iter()
                            .zip(row)
                            .map(|(h, cell)| {
                                let value = match cell.parse::<f64>() {
                                    Ok(n) if n.is_finite() => Json::Num(n),
                                    _ => Json::Str(cell.clone()),
                                };
                                (h.clone(), value)
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["circuit", "value"]);
        t.row(vec!["c2670", "1"]);
        t.row(vec!["s35932", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("circuit"));
        assert!(lines[3].contains("12345"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn to_json_types_cells() {
        let mut t = Table::new(vec!["circuit", "tpr"]);
        t.row(vec!["c2670", "0.95"]);
        let json = t.to_json();
        let rows = json.as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("circuit").unwrap().as_str(), Some("c2670"));
        assert_eq!(rows[0].get("tpr").unwrap().as_f64(), Some(0.95));
        // Round-trips through the parser.
        assert_eq!(crate::json::parse(&json.compact()).unwrap(), json);
    }
}
