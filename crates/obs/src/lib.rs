//! # htforge-obs — structured observability for the insertion pipeline
//!
//! Zero-dependency tracing, metrics and run reports shared by every
//! htforge crate (see `DESIGN.md` §8 for the architecture):
//!
//! * **Spans** ([`Recorder::span`]) — hierarchical, monotonic-clock
//!   timed sections; the pipeline phases (`rare_extraction`, `podem`,
//!   `compat_graph`, `clique_enumeration`, `insertion`, `validation`)
//!   are spans.
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — lock-free
//!   handles fetched once and updated from hot loops and scoped worker
//!   threads.
//! * **Sinks** ([`Sink`]) — event consumers: [`InMemorySink`] for
//!   tests, [`JsonlSink`] for streaming, plus the end-of-run summary
//!   table ([`Recorder::render_summary`]).
//! * **Run reports** ([`RunReport`]) — the `htforge.run_report/v1` JSON
//!   artifact written per circuit by the benchmark binaries and
//!   validated in CI by the `obs_validate` binary.
//! * **Live telemetry plane** ([`TraceContext`], [`EventRing`],
//!   [`frames`]) — stable trace ids that cross worker-pool dispatch
//!   boundaries (adopt with [`Recorder::adopt_trace`]), a bounded
//!   writer-never-blocks event ring sinks tail, per-thread span hooks
//!   ([`install_span_hook`]) that stream phase progress even with the
//!   recorder disabled, and the `htforge.metrics_snapshot/v1` /
//!   `htforge.job_timeline/v1` / `htforge.job_progress/v1` schema
//!   trio validated like run reports.
//! * **Resilience substrate** ([`RunBudget`], [`DegradationNote`],
//!   [`faultpoint!`], [`isolate`]) — cooperative deadlines and
//!   cancellation, structured degradation records, named
//!   fault-injection points (`HTFORGE_FAULT`) and panic isolation for
//!   campaign drivers (see `DESIGN.md` §9).
//!
//! ## The global recorder
//!
//! Library code records against [`global()`], which starts **disabled**:
//! metric handles still accumulate (one relaxed atomic op), but spans
//! and sinks cost nothing beyond an `Instant` read. Binaries opt in:
//!
//! ```
//! let _obs = htforge_obs::init_from_env(); // reads HTFORGE_OBS
//! htforge_obs::global().enable();
//! // ... run the pipeline ...
//! let report = htforge_obs::RunReport::from_recorder("quickstart_c17", htforge_obs::global());
//! ```
//!
//! `HTFORGE_OBS` is a comma-separated list of outputs: `jsonl` (event
//! stream to `HTFORGE_OBS_FILE` or stderr), `summary` (table on exit via
//! the returned [`ObsSession`] guard), `progress` (counter digest every
//! few seconds). Any non-empty value also enables the recorder.

pub mod budget;
pub mod faultpoint;
pub mod frames;
pub mod isolate;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod report;
pub mod ring;
pub mod table;

use std::sync::OnceLock;
use std::time::Duration;

pub use budget::{
    BudgetExceeded, BudgetTicker, CancelToken, DegradationNote, RunBudget, StagedBudget,
};
pub use frames::{
    metrics_snapshot_json, validate_any_json, validate_any_str, validate_job_progress,
    validate_job_timeline, validate_metrics_snapshot, validate_netlist_scaling,
    validate_server_journal, JobTimeline, ProgressFrame, TimelinePhase, JOB_PROGRESS_SCHEMA,
    JOB_TIMELINE_SCHEMA, JOURNAL_EVENTS, METRICS_SNAPSHOT_SCHEMA, NETLIST_SCALING_SCHEMA,
    PROGRESS_EVENTS, SERVER_JOURNAL_SCHEMA,
};
pub use isolate::{isolate, panic_message};
pub use json::{parse as parse_json, Json, ParseError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use progress::ProgressReporter;
pub use recorder::{
    install_span_hook, Event, InMemorySink, JsonlSink, MetricsSnapshot, Recorder, Sink, SpanEvent,
    SpanGuard, SpanHook, SpanHookGuard, SpanRecord, TraceContext, TraceGuard,
};
pub use report::{
    validate_json, validate_str, write_atomic, HistogramReport, RunReport, SpanEntry, SCHEMA,
};
pub use ring::{EventRing, RingTail};
pub use table::Table;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder all library instrumentation records to.
/// Created disabled on first use.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Whether the global recorder is enabled (spans/sinks active).
#[must_use]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Starts a span on the global recorder.
#[must_use]
pub fn span(name: &str) -> SpanGuard {
    global().span(name)
}

/// A counter handle from the global recorder.
#[must_use]
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// A gauge handle from the global recorder.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// A histogram handle from the global recorder.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Drop guard returned by [`init_from_env`]: flushes sinks, stops the
/// progress reporter and (when requested) prints the summary table on
/// the way out.
#[derive(Debug)]
pub struct ObsSession {
    print_summary: bool,
    reporter: Option<ProgressReporter>,
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        self.reporter.take(); // stop + join before the final summary
        if self.print_summary {
            eprintln!("== observability summary ==");
            eprint!("{}", global().render_summary());
        }
        global().flush();
    }
}

/// Configures the global recorder from `HTFORGE_OBS` /
/// `HTFORGE_OBS_FILE` and returns a guard that flushes on drop.
///
/// `HTFORGE_OBS` is a comma-separated list of `jsonl`, `summary`,
/// `progress`; unknown entries are reported to stderr and skipped. When
/// the variable is unset or empty the recorder is left untouched (still
/// usable — binaries may enable it themselves).
#[must_use]
pub fn init_from_env() -> ObsSession {
    let spec = std::env::var("HTFORGE_OBS").unwrap_or_default();
    let mut session = ObsSession {
        print_summary: false,
        reporter: None,
    };
    if spec.trim().is_empty() {
        return session;
    }
    global().enable();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part {
            "jsonl" => {
                let sink = match std::env::var("HTFORGE_OBS_FILE") {
                    Ok(path) => match std::fs::File::create(&path) {
                        Ok(f) => JsonlSink::new(Box::new(f)),
                        Err(e) => {
                            eprintln!("HTFORGE_OBS_FILE `{path}`: {e}; falling back to stderr");
                            JsonlSink::stderr()
                        }
                    },
                    Err(_) => JsonlSink::stderr(),
                };
                global().add_sink(Box::new(sink));
            }
            "summary" => session.print_summary = true,
            "progress" => {
                session.reporter = Some(ProgressReporter::start(
                    global().clone(),
                    Duration::from_secs(5),
                ));
            }
            other => eprintln!("HTFORGE_OBS: unknown output `{other}` (jsonl, summary, progress)"),
        }
    }
    session
}
