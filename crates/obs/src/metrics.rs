//! Lock-free metric primitives: counters, gauges and log-linear
//! histograms.
//!
//! All three are thin handles over `Arc`ed atomics, so hot paths fetch a
//! handle **once** (at engine construction) and then record with plain
//! atomic operations — no name lookup, no locks, and safe concurrent use
//! from the scoped worker threads the simulation kernel and
//! compatibility-graph builder spawn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (registered ones come from
    /// [`crate::Recorder::counter`]).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A fresh, unregistered gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the gauge value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket count: 16 exact buckets for values 0–15, then 8 sub-buckets
/// per power of two up to `u64::MAX` (relative quantile error ≤ 1/16).
const EXACT: usize = 16;
const SUBS: usize = 8;
const BUCKETS: usize = EXACT + (64 - 4) * SUBS;

/// A lock-free log-linear histogram of `u64` samples.
///
/// Values below 16 are counted exactly; larger values land in one of
/// eight sub-buckets per octave, bounding the relative error of any
/// reported percentile by 6.25 %.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }))
    }
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // ≥ 4
        let sub = ((v >> (octave - 3)) & 0x7) as usize;
        EXACT + (octave - 4) * SUBS + sub
    }
}

/// Midpoint of the value range covered by bucket `i` (inverse of
/// [`bucket_index`] up to sub-bucket resolution).
fn bucket_value(i: usize) -> u64 {
    if i < EXACT {
        i as u64
    } else {
        let octave = 4 + (i - EXACT) / SUBS;
        let sub = ((i - EXACT) % SUBS) as u64;
        let lo = (1u64 << octave) + (sub << (octave - 3));
        let width = 1u64 << (octave - 3);
        lo + width / 2
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let core = &*self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.min.fetch_min(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            min: core.min.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    pub(crate) fn reset(&self) {
        let core = &*self.0;
        core.count.store(0, Ordering::Relaxed);
        core.sum.store(0, Ordering::Relaxed);
        core.min.store(u64::MAX, Ordering::Relaxed);
        core.max.store(0, Ordering::Relaxed);
        for b in &core.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The `p`-quantile (`p` in `[0, 1]`): the smallest bucket value `v`
    /// such that at least `p·count` samples are ≤ `v`. Exact below 16,
    /// within 6.25 % above. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = (p * self.count as f64).ceil().max(1.0) as u64;
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The combined distribution of `self` and `other`, as if every
    /// sample of both had been recorded into one histogram. Bucket
    /// layouts are identical by construction, so the merge is an
    /// element-wise sum; this is how per-shard histograms roll up into
    /// one fleet-wide percentile view.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.5e9);
        assert_eq!(g.get(), 1.5e9);
    }

    #[test]
    fn cloned_counter_shares_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c2.add(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn small_value_percentiles_are_exact() {
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.mean(), Some(5.5));
        assert_eq!(s.percentile(0.0), Some(1));
        assert_eq!(s.percentile(0.5), Some(5));
        assert_eq!(s.percentile(0.9), Some(9));
        assert_eq!(s.percentile(1.0), Some(10));
    }

    #[test]
    fn large_value_percentiles_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (p, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = s.percentile(p).unwrap() as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.0725, "p{p}: got {got}, want ≈{expect} ({rel:.3})");
        }
    }

    #[test]
    fn extreme_values_do_not_overflow_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.percentile(0.0), Some(0));
        assert_eq!(s.percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(0.5), None);
        // Every quantile of an empty distribution is None, including
        // the boundary quantiles — no panic, no phantom zero.
        assert_eq!(s.percentile(0.0), None);
        assert_eq!(s.percentile(1.0), None);
        assert_eq!(s.min, u64::MAX, "empty sentinel min");
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = Histogram::new();
        h.record(37);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean(), Some(37.0));
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.percentile(p), Some(37), "p={p}");
        }
    }

    #[test]
    fn top_bucket_saturation_clamps_to_observed_max() {
        // Pile every sample into the very last sub-bucket: percentile
        // lookups must come back clamped to the real min/max rather
        // than a bucket midpoint beyond either.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(u64::MAX);
        }
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1, "top bucket");
        assert_eq!(s.min, u64::MAX - 1);
        for p in [0.5, 0.9, 0.99, 1.0] {
            let got = s.percentile(p).unwrap();
            assert!(got >= s.min && got <= s.max, "p={p}: {got}");
        }
        assert_eq!(s.percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn merge_of_disjoint_ranges_is_recording_equivalence() {
        // Low shard: 1..=100; high shard: 1_000_000..=1_000_100. The
        // merged snapshot must agree with one histogram that saw both.
        let low = Histogram::new();
        let high = Histogram::new();
        let both = Histogram::new();
        for v in 1..=100u64 {
            low.record(v);
            both.record(v);
        }
        for v in 1_000_000..=1_000_100u64 {
            high.record(v);
            both.record(v);
        }
        let merged = low.snapshot().merge(&high.snapshot());
        let oracle = both.snapshot();
        assert_eq!(merged, oracle);
        assert_eq!(merged.count, 201);
        assert_eq!(merged.min, 1);
        assert_eq!(merged.max, 1_000_100);
        assert_eq!(merged.mean(), oracle.mean());
        for p in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(merged.percentile(p), oracle.percentile(p), "p={p}");
        }
        // The median straddles the gap: just inside the low range.
        assert!(merged.percentile(0.25).unwrap() <= 100);
        assert!(merged.percentile(0.75).unwrap() >= 1_000_000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        for v in [3, 5, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        let empty = Histogram::new().snapshot();
        assert_eq!(s.merge(&empty), s);
        assert_eq!(empty.merge(&s), s);
        assert_eq!(empty.merge(&empty).percentile(0.5), None);
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..60 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift) + off);
            }
        }
        values.sort_unstable();
        values.dedup();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= last, "index must not decrease at {v}");
            assert!(i < BUCKETS);
            last = i;
        }
    }

    #[test]
    fn concurrent_recording() {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }
}
