//! A bounded event ring that readers tail without ever blocking the
//! emitting thread.
//!
//! The recorder's sinks run under a mutex on the hot path; a slow
//! consumer there stalls every span end. The [`EventRing`] inverts the
//! priority: writers claim a sequence number with one `fetch_add` and
//! `try_lock` their slot — if a reader happens to be copying that exact
//! slot the write is *dropped* (and counted) rather than waited for.
//! Readers poll with [`EventRing::tail_from`], which returns every
//! still-buffered event at-or-after a cursor plus the cursor to resume
//! from, so a tailer (live dashboard, the campaign server's `metrics`
//! introspection job) sees a recent window of the stream with bounded
//! memory and zero back-pressure on instrumented code.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::recorder::Event;

/// Sentinel for "this slot has never been written".
const EMPTY: u64 = u64::MAX;

struct Slot {
    /// Sequence number of the event stored in `data`, or [`EMPTY`].
    seq: AtomicU64,
    data: Mutex<Option<Event>>,
}

/// A bounded, writer-never-blocks ring of [`Event`]s. See the module
/// docs for the contention contract.
pub struct EventRing {
    slots: Vec<Slot>,
    /// Next sequence number to be written (== total push attempts).
    head: AtomicU64,
    /// Pushes skipped because a reader held the target slot.
    dropped: AtomicU64,
    mask: u64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

/// The result of one [`EventRing::tail_from`] poll.
#[derive(Debug, Clone)]
pub struct RingTail {
    /// `(sequence, event)` pairs in sequence order.
    pub events: Vec<(u64, Event)>,
    /// Pass this as the next poll's cursor to continue the stream.
    pub next_cursor: u64,
    /// Events in the polled range that were already overwritten (the
    /// reader lagged by more than the ring capacity) or skipped by a
    /// contended writer.
    pub skipped: u64,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events (rounded up to
    /// a power of two, minimum 2).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        EventRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(EMPTY),
                    data: Mutex::new(None),
                })
                .collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            mask: capacity as u64 - 1,
        }
    }

    /// The slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The next sequence number (== events pushed so far, including
    /// dropped ones).
    #[must_use]
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Pushes skipped because a reader was copying the target slot.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends `event`, overwriting the oldest slot. Never blocks: if a
    /// reader holds the target slot the event is dropped and counted.
    pub fn push(&self, event: &Event) {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq & self.mask) as usize];
        match slot.data.try_lock() {
            Ok(mut data) => {
                *data = Some(event.clone());
                slot.seq.store(seq, Ordering::Release);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Every buffered event with sequence `>= cursor`, in order. A
    /// cursor older than the ring window fast-forwards (the gap is
    /// reported in [`RingTail::skipped`]). Poll with `0` first, then
    /// with the returned `next_cursor`.
    #[must_use]
    pub fn tail_from(&self, cursor: u64) -> RingTail {
        let head = self.head.load(Ordering::Acquire);
        let lo = cursor.max(head.saturating_sub(self.slots.len() as u64));
        let mut events = Vec::new();
        let mut skipped = lo - cursor.min(lo);
        for seq in lo..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            // Cheap pre-check, then re-check under the lock: a writer
            // may overwrite between the two, never during (its
            // `try_lock` fails while we hold the slot).
            if slot.seq.load(Ordering::Acquire) != seq {
                skipped += 1;
                continue;
            }
            let data = slot.data.lock().expect("ring slot lock");
            if slot.seq.load(Ordering::Acquire) == seq {
                if let Some(event) = data.as_ref() {
                    events.push((seq, event.clone()));
                    continue;
                }
            }
            skipped += 1;
        }
        RingTail {
            events,
            next_cursor: head,
            skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SpanRecord;

    fn ev(id: u64) -> Event {
        Event::Span(SpanRecord {
            id,
            parent: None,
            name: format!("span{id}"),
            start_ns: 0,
            dur_ns: 1,
            attrs: Vec::new(),
            trace: 0,
        })
    }

    fn ids(tail: &RingTail) -> Vec<u64> {
        tail.events
            .iter()
            .map(|(_, e)| match e {
                Event::Span(s) => s.id,
                Event::Snapshot(_) => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 2);
        assert_eq!(EventRing::new(5).capacity(), 8);
        assert_eq!(EventRing::new(64).capacity(), 64);
    }

    #[test]
    fn tail_sees_pushes_in_order_and_resumes_from_cursor() {
        let ring = EventRing::new(8);
        for i in 0..3 {
            ring.push(&ev(i));
        }
        let first = ring.tail_from(0);
        assert_eq!(ids(&first), vec![0, 1, 2]);
        assert_eq!(first.skipped, 0);
        ring.push(&ev(3));
        let second = ring.tail_from(first.next_cursor);
        assert_eq!(ids(&second), vec![3]);
        assert_eq!(ring.tail_from(second.next_cursor).events.len(), 0);
    }

    #[test]
    fn wrap_keeps_only_the_newest_window_and_counts_the_gap() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.push(&ev(i));
        }
        let tail = ring.tail_from(0);
        assert_eq!(ids(&tail), vec![6, 7, 8, 9]);
        assert_eq!(tail.skipped, 6);
        assert_eq!(tail.next_cursor, 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_writers_and_a_tailer_lose_nothing_but_overwrites() {
        let ring = EventRing::new(64);
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = &ring;
                let total = &total;
                scope.spawn(move || {
                    for i in 0..500 {
                        ring.push(&ev(t * 1000 + i));
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            scope.spawn(|| {
                let mut cursor = 0;
                while total.load(Ordering::Relaxed) < 2000 {
                    let tail = ring.tail_from(cursor);
                    // Sequence numbers strictly increase across polls.
                    assert!(tail.events.windows(2).all(|w| w[0].0 < w[1].0));
                    cursor = tail.next_cursor;
                }
            });
        });
        assert_eq!(ring.head(), 2000, "every push claimed a sequence");
        // Whatever survives is the newest window minus reader-contended
        // writes; nothing blocked, nothing deadlocked.
        let survivors = ring.tail_from(0);
        assert!(survivors.events.len() <= 64);
        // skipped accounts for both the overwritten prefix and any
        // reader-contended in-window drops: the ledger always balances.
        assert_eq!(survivors.events.len() as u64 + survivors.skipped, 2000);
    }
}
