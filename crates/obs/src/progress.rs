//! Periodic progress reporting: a background thread that emits a metric
//! snapshot every interval while a long phase runs.

use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::recorder::Recorder;

/// Emits [`crate::Event::Snapshot`] to the recorder's sinks every
/// `interval` until dropped (or [`ProgressReporter::stop`]). Also prints
/// a one-line counter digest to stderr so long benchmark runs show
/// liveness without a sink configured.
#[derive(Debug)]
pub struct ProgressReporter {
    stop_tx: mpsc::Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressReporter {
    /// Starts the reporter thread. When the recorder is disabled the
    /// thread still runs but each tick is a no-op, keeping call sites
    /// unconditional.
    #[must_use]
    pub fn start(recorder: Recorder, interval: Duration) -> Self {
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            // recv_timeout doubles as the tick clock and the stop signal:
            // a message (or hangup after the guard dropped) ends the loop.
            while let Err(mpsc::RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                if !recorder.is_enabled() {
                    continue;
                }
                recorder.emit_snapshot();
                let snap = recorder.snapshot();
                let digest: Vec<String> = snap
                    .counters
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                if !digest.is_empty() {
                    eprintln!(
                        "[obs +{:.0}s] {}",
                        snap.at_ns as f64 / 1e9,
                        digest.join(" ")
                    );
                }
                recorder.flush();
            }
        });
        ProgressReporter {
            stop_tx,
            handle: Some(handle),
        }
    }

    /// Stops the reporter and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let _ = self.stop_tx.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, InMemorySink};

    #[test]
    fn reporter_emits_snapshots_then_stops() {
        let rec = Recorder::new();
        rec.enable();
        let sink = InMemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        rec.counter("work").add(3);

        let reporter = ProgressReporter::start(rec.clone(), Duration::from_millis(10));
        // Wait for at least one tick.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sink.events().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        reporter.stop();

        let events = sink.events();
        assert!(!events.is_empty(), "no snapshot within 5s");
        assert!(matches!(
            &events[0],
            Event::Snapshot(s) if s.counters.iter().any(|(k, v)| k == "work" && *v == 3)
        ));
        // After stop, no more events arrive.
        let n = sink.events().len();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(sink.events().len(), n);
    }

    #[test]
    fn disabled_recorder_ticks_are_noops() {
        let rec = Recorder::new();
        let sink = InMemorySink::new();
        rec.add_sink(Box::new(sink.clone()));
        let reporter = ProgressReporter::start(rec, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(25));
        drop(reporter);
        assert!(sink.events().is_empty());
    }
}
