//! Random-pattern detection — the weakest baseline of Table II.

use htforge_netlist::{Netlist, NetlistError};
use htforge_sim::{PatternSet, RareNodeSet};

use crate::scheme::DetectionScheme;

/// Uniform random test patterns.
///
/// # Examples
///
/// ```
/// use htforge_detect::{DetectionScheme, RandomDetection};
/// use htforge_sim::RareNodeSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = htforge_circuits::load("c17")?;
/// let tests = RandomDetection::new(1_000, 7)
///     .generate_tests(&nl, &RareNodeSet::default())?;
/// assert_eq!(tests.len(), 1_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDetection {
    count: usize,
    seed: u64,
}

impl RandomDetection {
    /// `count` random vectors from `seed`.
    #[must_use]
    pub fn new(count: usize, seed: u64) -> Self {
        RandomDetection { count, seed }
    }
}

impl DetectionScheme for RandomDetection {
    fn name(&self) -> &str {
        "Random"
    }

    fn generate_tests(
        &self,
        golden: &Netlist,
        _rare: &RareNodeSet,
    ) -> Result<PatternSet, NetlistError> {
        Ok(PatternSet::random(
            golden.inputs().len(),
            self.count,
            self.seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let nl = htforge_circuits::load("c17").unwrap();
        let rare = RareNodeSet::default();
        let a = RandomDetection::new(100, 1)
            .generate_tests(&nl, &rare)
            .unwrap();
        let b = RandomDetection::new(100, 1)
            .generate_tests(&nl, &rare)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.num_inputs(), 5);
    }
}
