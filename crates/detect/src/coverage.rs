//! Trigger-Coverage / Detection-Coverage evaluation (the Table II
//! metrics).
//!
//! Given the golden design, a batch of HT-infected designs, and a test
//! set, the evaluator simulates everything bit-parallel and reports per
//! design whether the trojan *triggered* (TC) and whether its effect was
//! *observable* at a primary output (DC). By construction of the XOR
//! payload, `DC ⊆ TC`.

use htforge_core::InfectedDesign;
use htforge_netlist::{Netlist, NetlistError};
use htforge_sim::{PatternSet, Simulator};

/// Verdict for one infected design under one test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignVerdict {
    /// The trigger fired for at least one test vector.
    pub triggered: bool,
    /// At least one primary output differed from the golden response.
    pub detected: bool,
}

/// Aggregated coverage over a batch of infected designs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Per-design verdicts, in input order.
    pub verdicts: Vec<DesignVerdict>,
}

impl CoverageReport {
    /// Number of designs evaluated.
    #[must_use]
    pub fn total(&self) -> usize {
        self.verdicts.len()
    }

    /// Designs whose trigger fired (TC numerator).
    #[must_use]
    pub fn triggered(&self) -> usize {
        self.verdicts.iter().filter(|v| v.triggered).count()
    }

    /// Designs detected at an output (DC numerator).
    #[must_use]
    pub fn detected(&self) -> usize {
        self.verdicts.iter().filter(|v| v.detected).count()
    }

    /// Trigger coverage in percent.
    #[must_use]
    pub fn trigger_coverage(&self) -> f64 {
        percent(self.triggered(), self.total())
    }

    /// Detection coverage in percent.
    #[must_use]
    pub fn detection_coverage(&self) -> f64 {
        percent(self.detected(), self.total())
    }
}

fn percent(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// A coverage evaluator bound to one golden design.
///
/// Construction scan-cuts the golden netlist (when sequential) and
/// compiles its simulator once; every [`evaluate`](Self::evaluate) call
/// reuses both. Campaigns that grade several test sets against the same
/// design batch — one per [`DetectionScheme`](crate::DetectionScheme)
/// under comparison — pay one golden compile instead of one per scheme.
#[derive(Debug)]
pub struct CoverageEvaluator {
    golden_cut: Netlist,
    golden_sim: Simulator,
}

impl CoverageEvaluator {
    /// Prepares an evaluator for `golden` (scan-cutting sequential
    /// designs and compiling the simulation tape up front).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] for cyclic netlists.
    pub fn new(golden: &Netlist) -> Result<Self, NetlistError> {
        let golden_cut = if golden.dffs().is_empty() {
            golden.clone()
        } else {
            golden.scan_cut()
        };
        let golden_sim = Simulator::new(&golden_cut)?;
        Ok(CoverageEvaluator {
            golden_cut,
            golden_sim,
        })
    }

    /// The (scan-cut) golden netlist verdicts are graded against. Test
    /// sets passed to [`evaluate`](Self::evaluate) must be sized for its
    /// input count.
    #[must_use]
    pub fn golden(&self) -> &Netlist {
        &self.golden_cut
    }

    /// Evaluates `designs` against `tests` (see [`evaluate_designs`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] for cyclic infected netlists.
    pub fn evaluate(
        &self,
        designs: &[InfectedDesign],
        tests: &PatternSet,
    ) -> Result<CoverageReport, NetlistError> {
        let campaign_span = htforge_obs::span("detect_campaign");
        let golden_cut = &self.golden_cut;
        let golden_vals = self.golden_sim.run_on(golden_cut, tests);

        let mut verdicts = Vec::with_capacity(designs.len());
        for (i, design) in designs.iter().enumerate() {
            let graded = htforge_obs::isolate(&format!("design {i}"), || {
                htforge_obs::faultpoint!("detect.design");
                let infected_cut = if design.netlist.dffs().is_empty() {
                    design.netlist.clone()
                } else {
                    design.netlist.scan_cut()
                };
                assert_eq!(
                    infected_cut.outputs().len(),
                    golden_cut.outputs().len(),
                    "infected design must preserve the output interface"
                );
                let sim = Simulator::new(&infected_cut)?;
                let vals = sim.run_on(&infected_cut, tests);

                let trigger = design.trojan.trigger_output;
                let triggered = vals.words(trigger).iter().any(|&w| w != 0);

                let mut detected = false;
                'outer: for (&go, &io) in golden_cut.outputs().iter().zip(infected_cut.outputs()) {
                    let gw = golden_vals.words(go);
                    let iw = vals.words(io);
                    for (a, b) in gw.iter().zip(iw) {
                        if a != b {
                            detected = true;
                            break 'outer;
                        }
                    }
                }
                Ok(DesignVerdict {
                    triggered,
                    detected,
                })
            });
            verdicts.push(match graded {
                Ok(result) => result?,
                Err(_panic_msg) => {
                    htforge_obs::counter("detect.isolated_panics").add(1);
                    DesignVerdict {
                        triggered: false,
                        detected: false,
                    }
                }
            });
        }
        htforge_obs::counter("detect.designs_graded").add(designs.len() as u64);
        htforge_obs::counter("detect.patterns_graded").add((tests.len() * designs.len()) as u64);
        campaign_span.finish();
        Ok(CoverageReport { verdicts })
    }
}

/// Evaluates `designs` against `tests` generated for `golden`.
///
/// Sequential designs are scan-cut internally; `tests` must be sized for
/// the scan-cut input count (which is what every
/// [`DetectionScheme`](crate::DetectionScheme) in this crate produces
/// when handed the scan-cut golden netlist). Callers grading multiple
/// test sets should build a [`CoverageEvaluator`] once instead.
///
/// # Errors
///
/// Returns [`NetlistError`] for cyclic netlists.
///
/// A design whose evaluation *panics* (a malformed netlist tripping an
/// internal invariant, an injected fault) is isolated: it is graded
/// `{triggered: false, detected: false}`, the panic message is counted
/// under `detect.isolated_panics`, and the rest of the batch proceeds.
pub fn evaluate_designs(
    golden: &Netlist,
    designs: &[InfectedDesign],
    tests: &PatternSet,
) -> Result<CoverageReport, NetlistError> {
    CoverageEvaluator::new(golden)?.evaluate(designs, tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::DetectionScheme;
    use htforge_core::{InsertionConfig, InsertionFramework};
    use htforge_sim::RareNodeExtractor;

    fn infected_c17() -> (Netlist, Vec<InfectedDesign>) {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            num_vectors: 2_000,
            trigger_nodes: 2,
            num_instances: 2,
            seed: 42,
            podem: htforge_atpg::PodemConfig::justify(),
            ..InsertionConfig::default()
        };
        let outcome = InsertionFramework::new(cfg).run(&nl).unwrap();
        (nl, outcome.infected)
    }

    #[test]
    fn activation_vector_is_both_triggered_and_detected() {
        let (nl, designs) = infected_c17();
        // Build a test set containing each design's activation vector.
        let mut tests = PatternSet::zeros(nl.inputs().len(), 0);
        for d in &designs {
            tests.push(&d.trojan.activation_cube.fill_with(false));
            tests.push(&d.trojan.activation_cube.fill_with(true));
        }
        let report = evaluate_designs(&nl, &designs, &tests).unwrap();
        assert_eq!(report.total(), designs.len());
        assert_eq!(report.triggered(), designs.len(), "all triggers fire");
        // DC ⊆ TC always.
        assert!(report.detected() <= report.triggered());
        // The payload is chosen for observability: expect detection too.
        assert!(report.detected() > 0);
    }

    #[test]
    fn empty_test_set_yields_no_coverage() {
        let (nl, designs) = infected_c17();
        let tests = PatternSet::zeros(nl.inputs().len(), 0);
        let report = evaluate_designs(&nl, &designs, &tests).unwrap();
        assert_eq!(report.triggered(), 0);
        assert_eq!(report.detected(), 0);
        assert_eq!(report.trigger_coverage(), 0.0);
    }

    #[test]
    fn dc_is_subset_of_tc_under_random_tests() {
        let (nl, designs) = infected_c17();
        let tests = PatternSet::random(nl.inputs().len(), 4_096, 5);
        let report = evaluate_designs(&nl, &designs, &tests).unwrap();
        for v in &report.verdicts {
            if v.detected {
                assert!(v.triggered, "detection implies triggering");
            }
        }
    }

    #[test]
    fn mero_on_c17_trojans() {
        // On a 5-input circuit every rare combination is reachable, so a
        // decent test set should trigger the 2-node trojans.
        let (nl, designs) = infected_c17();
        let profile = PatternSet::random(5, 2_000, 1);
        let rare = RareNodeExtractor::new(0.3).extract(&nl, &profile).unwrap();
        let tests = crate::MeroDetection::new(10, 500, 3)
            .generate_tests(&nl, &rare)
            .unwrap();
        let report = evaluate_designs(&nl, &designs, &tests).unwrap();
        // c17 is tiny: MERO should trigger these trojans (the paper's
        // evasion results require the large-q trojans of real circuits).
        assert!(report.triggered() > 0);
    }

    #[test]
    fn panicking_design_is_isolated_not_fatal() {
        let (nl, mut designs) = infected_c17();
        // Keep a healthy copy as the survivor, then sabotage the first
        // design so its evaluation trips the output-interface invariant
        // (a panic, not an Err): c432 has 7 outputs, c17 has 2.
        let survivor = designs[0].clone();
        designs[0].netlist = htforge_circuits::load("c432").unwrap();
        designs.push(survivor);
        let mut tests = PatternSet::zeros(nl.inputs().len(), 0);
        for d in &designs[1..] {
            tests.push(&d.trojan.activation_cube.fill_with(false));
        }
        let report = evaluate_designs(&nl, &designs, &tests).unwrap();
        assert_eq!(report.total(), designs.len());
        // The sabotaged design is graded "not triggered, not detected"...
        assert!(!report.verdicts[0].triggered);
        assert!(!report.verdicts[0].detected);
        // ...while the healthy designs still got their real verdicts.
        assert!(report.triggered() > 0, "survivors must still be graded");
    }

    #[test]
    fn percentages() {
        let report = CoverageReport {
            verdicts: vec![
                DesignVerdict {
                    triggered: true,
                    detected: true,
                },
                DesignVerdict {
                    triggered: true,
                    detected: false,
                },
                DesignVerdict {
                    triggered: false,
                    detected: false,
                },
                DesignVerdict {
                    triggered: false,
                    detected: false,
                },
            ],
        };
        assert!((report.trigger_coverage() - 50.0).abs() < 1e-9);
        assert!((report.detection_coverage() - 25.0).abs() < 1e-9);
    }
}
