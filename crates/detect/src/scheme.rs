//! The detection-scheme abstraction.

use htforge_netlist::{Netlist, NetlistError};
use htforge_sim::{PatternSet, RareNodeSet};

/// A logic-testing detection scheme: given the *golden* (combinational /
/// scan-cut) netlist and its rare-node profile, produce the test set that
/// will be applied to suspect chips.
///
/// Schemes only ever see the golden design — they model a test engineer
/// who does not know whether, where, or how a trojan was inserted.
pub trait DetectionScheme {
    /// Human-readable scheme name (used in report tables).
    fn name(&self) -> &str;

    /// Generates the test set.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] for structurally invalid netlists.
    fn generate_tests(
        &self,
        golden: &Netlist,
        rare: &RareNodeSet,
    ) -> Result<PatternSet, NetlistError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl DetectionScheme for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn generate_tests(
            &self,
            golden: &Netlist,
            _rare: &RareNodeSet,
        ) -> Result<PatternSet, NetlistError> {
            Ok(PatternSet::zeros(golden.inputs().len(), 1))
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let schemes: Vec<Box<dyn DetectionScheme>> = vec![Box::new(Fixed)];
        assert_eq!(schemes[0].name(), "fixed");
    }
}
