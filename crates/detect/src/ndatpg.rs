//! ND-ATPG — scalable trojan detection via ATPG-based N-activation of
//! rare events (Jayasena & Mishra, IEEE TCAD 2023).
//!
//! Every rare event `(n, r)` is converted into the stuck-at-`r̄` fault at
//! `n`; PODEM generates up to `N` distinct test cubes per fault, so each
//! rare node is *deterministically* driven to its rare value `N` times
//! (where MERO only gets there statistically). Don't-care bits are filled
//! randomly, adding incidental coverage.

use rand::rngs::StdRng;
use rand::SeedableRng;

use htforge_atpg::{n_detect_cubes, Fault, PodemConfig};
use htforge_netlist::{Netlist, NetlistError};
use htforge_sim::{PatternSet, RareNodeSet};

use crate::scheme::DetectionScheme;

/// The ND-ATPG test generator.
///
/// # Examples
///
/// ```
/// use htforge_detect::{DetectionScheme, NdAtpgDetection};
/// use htforge_sim::{PatternSet, RareNodeExtractor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = htforge_circuits::load("c17")?;
/// let profile = PatternSet::random(nl.inputs().len(), 2_000, 1);
/// let rare = RareNodeExtractor::new(0.3).extract(&nl, &profile)?;
/// let tests = NdAtpgDetection::new(3, 42).generate_tests(&nl, &rare)?;
/// assert!(!tests.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdAtpgDetection {
    /// N-detect target: distinct cubes requested per rare event.
    n: usize,
    seed: u64,
    podem: PodemConfig,
}

impl NdAtpgDetection {
    /// ND-ATPG with `n` cubes per rare event.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "N-detect target must be positive");
        NdAtpgDetection {
            n,
            seed,
            podem: PodemConfig::default(),
        }
    }

    /// Overrides the PODEM configuration (e.g. a tighter backtrack limit
    /// for very large circuits).
    #[must_use]
    pub fn with_podem(mut self, podem: PodemConfig) -> Self {
        self.podem = podem;
        self
    }
}

impl DetectionScheme for NdAtpgDetection {
    fn name(&self) -> &str {
        "ND-ATPG"
    }

    fn generate_tests(
        &self,
        golden: &Netlist,
        rare: &RareNodeSet,
    ) -> Result<PatternSet, NetlistError> {
        let num_inputs = golden.inputs().len();
        let mut tests = PatternSet::zeros(num_inputs, 0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for (k, r) in rare.iter().enumerate() {
            let fault = Fault::for_rare_event(r.node, r.rare_value);
            let cubes = n_detect_cubes(
                golden,
                fault,
                self.n,
                self.podem,
                self.seed.wrapping_add(k as u64),
            )?;
            for cube in cubes {
                tests.push(&cube.fill_random(&mut rng));
            }
        }
        if tests.is_empty() {
            // No rare events or nothing testable: emit a random fallback
            // so the scheme still applies *some* patterns.
            return Ok(PatternSet::random(num_inputs, 64, self.seed));
        }
        Ok(tests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_sim::{RareNodeExtractor, Simulator};

    #[test]
    fn each_rare_event_is_excited() {
        let nl = htforge_circuits::load("c17").unwrap();
        let profile = PatternSet::random(5, 2_000, 1);
        let rare = RareNodeExtractor::new(0.3).extract(&nl, &profile).unwrap();
        assert!(!rare.is_empty());
        let tests = NdAtpgDetection::new(2, 3)
            .generate_tests(&nl, &rare)
            .unwrap();
        let sim = Simulator::new(&nl).unwrap();
        let vals = sim.run_on(&nl, &tests);
        for r in rare.iter() {
            let hits = (0..tests.len())
                .filter(|&p| vals.value(r.node, p) == r.rare_value)
                .count();
            assert!(hits >= 1, "rare event must be excited at least once");
        }
    }

    #[test]
    fn n_scales_test_count() {
        let nl = htforge_circuits::load("c17").unwrap();
        let profile = PatternSet::random(5, 2_000, 1);
        let rare = RareNodeExtractor::new(0.3).extract(&nl, &profile).unwrap();
        let small = NdAtpgDetection::new(1, 3)
            .generate_tests(&nl, &rare)
            .unwrap();
        let large = NdAtpgDetection::new(4, 3)
            .generate_tests(&nl, &rare)
            .unwrap();
        assert!(large.len() >= small.len());
    }

    #[test]
    fn empty_profile_falls_back() {
        let nl = htforge_circuits::load("c17").unwrap();
        let tests = NdAtpgDetection::new(2, 3)
            .generate_tests(&nl, &RareNodeSet::default())
            .unwrap();
        assert_eq!(tests.len(), 64);
    }
}
