//! Hardware-trojan detection schemes and coverage evaluation.
//!
//! Implements the three logic-testing detection schemes the paper uses to
//! grade generated benchmarks (Table II):
//!
//! * [`RandomDetection`] — plain random patterns,
//! * [`MeroDetection`] — **MERO** (Chakraborty et al., CHES 2009):
//!   N-detect refinement of random patterns toward multiple excitation
//!   of rare events,
//! * [`NdAtpgDetection`] — **ND-ATPG** (Jayasena & Mishra, TCAD 2023):
//!   per-rare-event N-detect stuck-at ATPG.
//!
//! and the two coverage metrics:
//!
//! * **Trigger Coverage (TC)** — trojans whose trigger fires under the
//!   test set,
//! * **Detection Coverage (DC)** — trojans whose effect additionally
//!   corrupts a primary output (`DC ⊆ TC`).

pub mod coverage;
pub mod mero;
pub mod ndatpg;
pub mod random;
pub mod scheme;

pub use coverage::{evaluate_designs, CoverageReport, DesignVerdict};
pub use mero::MeroDetection;
pub use ndatpg::NdAtpgDetection;
pub use random::RandomDetection;
pub use scheme::DetectionScheme;
