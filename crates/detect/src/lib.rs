//! Hardware-trojan detection schemes and coverage evaluation.
//!
//! Implements the three logic-testing detection schemes the paper uses to
//! grade generated benchmarks (Table II):
//!
//! * [`RandomDetection`] — plain random patterns,
//! * [`MeroDetection`] — **MERO** (Chakraborty et al., CHES 2009):
//!   N-detect refinement of random patterns toward multiple excitation
//!   of rare events,
//! * [`NdAtpgDetection`] — **ND-ATPG** (Jayasena & Mishra, TCAD 2023):
//!   per-rare-event N-detect stuck-at ATPG.
//!
//! and the two coverage metrics:
//!
//! * **Trigger Coverage (TC)** — trojans whose trigger fires under the
//!   test set,
//! * **Detection Coverage (DC)** — trojans whose effect additionally
//!   corrupts a primary output (`DC ⊆ TC`).
//!
//! Sequential ("time-bomb") trojans are graded by [`sequential`]:
//! multi-cycle random functional campaigns on the batched 64-traces-
//! per-word simulation path, with per-trace trigger-activation and
//! detection latency statistics.

pub mod coverage;
pub mod mero;
pub mod ndatpg;
pub mod random;
pub mod scheme;
pub mod sequential;

pub use coverage::{evaluate_designs, CoverageEvaluator, CoverageReport, DesignVerdict};
pub use mero::MeroDetection;
pub use ndatpg::NdAtpgDetection;
pub use random::RandomDetection;
pub use scheme::DetectionScheme;
pub use sequential::{
    evaluate_sequential_designs, SequentialCampaign, SequentialCoverageReport, SequentialVerdict,
};
