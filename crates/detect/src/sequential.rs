//! Sequential (functional, non-scan) detection campaigns on the batched
//! simulation path.
//!
//! Combinational grading ([`crate::coverage`]) asks "does any single
//! vector expose the trojan?". Sequential time-bomb trojans
//! ([`htforge_core::sequential_trigger`]) need a different question:
//! "does a multi-cycle stimulus *sequence* arm the counter and corrupt
//! an output, and after how many cycles?" — the latency axis Trust-Hub
//! style evaluations report.
//!
//! [`evaluate_sequential_designs`] answers it in one batched pass per
//! design: golden and suspect run 64 traces per machine word
//! ([`BatchedSequentialSimulator`]), a [`FirstFireMonitor`] scans the
//! armed-trigger column for per-trace activation cycles, and a second
//! monitor scans the OR-of-output-XOR columns for per-trace detection
//! cycles. The golden response is simulated once and replayed against
//! every design.

use htforge_core::SequentialInfectedDesign;
use htforge_netlist::{Netlist, NetlistError};
use htforge_sim::seq_batch::{BatchedSequentialSimulator, FirstFireMonitor};
use htforge_sim::PatternSet;

/// A random functional stimulus campaign: `traces` independent traces,
/// each driven with fresh uniform-random primary-input vectors for
/// `cycles` clock cycles. Deterministic in `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialCampaign {
    /// Independent traces (64 per machine word).
    pub traces: usize,
    /// Clock cycles per trace.
    pub cycles: usize,
    /// Base RNG seed; each cycle draws from its own derived stream.
    pub seed: u64,
}

impl SequentialCampaign {
    /// A campaign of `traces` × `cycles` random stimuli from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `traces == 0` or `cycles == 0`.
    #[must_use]
    pub fn new(traces: usize, cycles: usize, seed: u64) -> Self {
        assert!(traces > 0, "need at least one trace");
        assert!(cycles > 0, "need at least one cycle");
        SequentialCampaign {
            traces,
            cycles,
            seed,
        }
    }

    /// The stimulus applied at `cycle` (same for every design graded
    /// under this campaign): one random pattern per trace over
    /// `num_inputs` primary inputs.
    #[must_use]
    pub fn stimulus(&self, num_inputs: usize, cycle: usize) -> PatternSet {
        // Distinct deterministic stream per cycle (splitmix-style odd
        // multiplier keeps neighbouring cycles uncorrelated).
        let seed = self
            .seed
            .wrapping_add((cycle as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        PatternSet::random(num_inputs, self.traces, seed)
    }

    /// Total trace-cycles simulated per design.
    #[must_use]
    pub fn trace_cycles(&self) -> u64 {
        self.traces as u64 * self.cycles as u64
    }
}

/// Verdict for one sequential design under one campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialVerdict {
    /// The armed trigger fired in at least one trace.
    pub triggered: bool,
    /// At least one trace diverged from the golden response at a
    /// primary output.
    pub detected: bool,
    /// Traces in which the trigger armed.
    pub triggered_traces: usize,
    /// Traces in which an output diverged.
    pub detected_traces: usize,
    /// Earliest cycle (0-based, across traces) the trigger armed.
    pub trigger_latency: Option<u32>,
    /// Earliest cycle (0-based, across traces) an output diverged.
    pub detection_latency: Option<u32>,
    /// Mean arming cycle over the traces that armed.
    pub mean_trigger_latency: Option<f64>,
}

/// Aggregated sequential coverage over a batch of infected designs.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialCoverageReport {
    /// Per-design verdicts, in input order.
    pub verdicts: Vec<SequentialVerdict>,
    /// Traces simulated per design.
    pub traces: usize,
    /// Cycles simulated per trace.
    pub cycles: usize,
}

impl SequentialCoverageReport {
    /// Number of designs evaluated.
    #[must_use]
    pub fn total(&self) -> usize {
        self.verdicts.len()
    }

    /// Designs whose trigger armed in any trace (TC numerator).
    #[must_use]
    pub fn triggered(&self) -> usize {
        self.verdicts.iter().filter(|v| v.triggered).count()
    }

    /// Designs detected at an output in any trace (DC numerator).
    #[must_use]
    pub fn detected(&self) -> usize {
        self.verdicts.iter().filter(|v| v.detected).count()
    }

    /// Trigger coverage in percent.
    #[must_use]
    pub fn trigger_coverage(&self) -> f64 {
        percent(self.triggered(), self.total())
    }

    /// Detection coverage in percent.
    #[must_use]
    pub fn detection_coverage(&self) -> f64 {
        percent(self.detected(), self.total())
    }

    /// Mean earliest-detection latency over the detected designs.
    #[must_use]
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let latencies: Vec<u32> = self
            .verdicts
            .iter()
            .filter_map(|v| v.detection_latency)
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().map(|&c| f64::from(c)).sum::<f64>() / latencies.len() as f64)
        }
    }
}

fn percent(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Grades `designs` against a random functional `campaign` on `golden`.
///
/// Every design sees the identical stimulus sequence (deterministic in
/// the campaign seed), all traces of one design advance in a single
/// batched simulation, and the golden response is simulated once and
/// compared by packed-word XOR — so a 64-trace campaign costs barely
/// more than a single-trace one.
///
/// # Errors
///
/// Returns [`NetlistError`] for cyclic netlists.
///
/// # Panics
///
/// Panics if a design's input or output interface differs from the
/// golden's (trojan insertion only appends logic, so this indicates a
/// bug).
pub fn evaluate_sequential_designs(
    golden: &Netlist,
    designs: &[SequentialInfectedDesign],
    campaign: &SequentialCampaign,
) -> Result<SequentialCoverageReport, NetlistError> {
    let campaign_span = htforge_obs::span("detect_campaign");
    let num_inputs = golden.inputs().len();
    let words = PatternSet::words_for(campaign.traces);

    // Golden output trace, once: cycles × outputs × packed words.
    let mut golden_sim = BatchedSequentialSimulator::new(golden, campaign.traces)?;
    let mut golden_outputs: Vec<Vec<u64>> = Vec::with_capacity(campaign.cycles);
    for cycle in 0..campaign.cycles {
        let values = golden_sim.step(&campaign.stimulus(num_inputs, cycle));
        let mut row = Vec::with_capacity(golden.outputs().len() * words);
        for &o in golden.outputs() {
            row.extend_from_slice(values.words(o));
        }
        golden_outputs.push(row);
    }

    let mut verdicts = Vec::with_capacity(designs.len());
    for design in designs {
        assert_eq!(
            design.netlist.inputs().len(),
            num_inputs,
            "infected design must preserve the input interface"
        );
        assert_eq!(
            design.netlist.outputs().len(),
            golden.outputs().len(),
            "infected design must preserve the output interface"
        );
        let mut sim = BatchedSequentialSimulator::new(&design.netlist, campaign.traces)?;
        let mut trigger_monitor = FirstFireMonitor::new(campaign.traces);
        let mut detect_monitor = FirstFireMonitor::new(campaign.traces);
        let armed = design.trojan.combinational.trigger_output;
        let mut diff = vec![0u64; words];

        for (cycle, golden_row) in golden_outputs.iter().enumerate() {
            let values = sim.step(&campaign.stimulus(num_inputs, cycle));
            trigger_monitor.observe(values.words(armed));

            // Traces whose *any* output differs from golden this cycle.
            diff.fill(0);
            for (k, &o) in design.netlist.outputs().iter().enumerate() {
                let suspect_words = values.words(o);
                let golden_words = &golden_row[k * words..(k + 1) * words];
                for (d, (&s, &g)) in diff.iter_mut().zip(suspect_words.iter().zip(golden_words)) {
                    *d |= s ^ g;
                }
            }
            detect_monitor.observe(&diff);
        }

        verdicts.push(SequentialVerdict {
            triggered: trigger_monitor.any_fired(),
            detected: detect_monitor.any_fired(),
            triggered_traces: trigger_monitor.fired_count(),
            detected_traces: detect_monitor.fired_count(),
            trigger_latency: trigger_monitor.earliest(),
            detection_latency: detect_monitor.earliest(),
            mean_trigger_latency: trigger_monitor.mean_latency(),
        });
    }
    htforge_obs::counter("detect.designs_graded").add(designs.len() as u64);
    htforge_obs::counter("detect.patterns_graded")
        .add(campaign.trace_cycles() * designs.len() as u64);
    campaign_span.finish();
    Ok(SequentialCoverageReport {
        verdicts,
        traces: campaign.traces,
        cycles: campaign.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_atpg::PodemConfig;
    use htforge_core::{
        enumerate_cliques, insert_sequential_trojan, CompatGraph, PayloadKind, PayloadStrategy,
        TriggerPlan,
    };
    use htforge_netlist::bench;
    use htforge_sim::sequential::SequentialSimulator;
    use htforge_sim::RareNodeExtractor;

    const HOST: &str = "\
INPUT(a1)
INPUT(a2)
INPUT(b1)
INPUT(b2)
OUTPUT(w)
OUTPUT(x)
OUTPUT(o)
w = AND(a1, a2)
x = AND(b1, b2)
o = XOR(a1, b1)
";

    fn build(counter_bits: usize) -> (Netlist, SequentialInfectedDesign) {
        let nl = bench::parse(HOST, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 1);
        let rare = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
        let graph = CompatGraph::build(&nl, &rare, PodemConfig::justify()).unwrap();
        let cliques = enumerate_cliques(&graph, 2, 1, 0);
        let clique = &cliques[0];
        let leaves: Vec<(htforge_netlist::netlist::NodeId, bool)> = clique
            .members
            .iter()
            .map(|&m| {
                let e = &graph.events()[m];
                (e.node, e.rare_value)
            })
            .collect();
        let rare_values: Vec<bool> = leaves.iter().map(|&(_, v)| v).collect();
        let plan = TriggerPlan::synthesize(&rare_values, 4);
        let scoap = htforge_scoap::Scoap::compute(&nl).unwrap();
        let trigger_nodes: Vec<_> = leaves.iter().map(|&(n, _)| n).collect();
        let payload = htforge_core::payload::choose_payload(
            &nl,
            &scoap,
            &trigger_nodes,
            PayloadStrategy::MostObservable,
        )
        .unwrap();
        let (infected, trojan) = insert_sequential_trojan(
            &nl,
            &leaves,
            &plan,
            payload,
            PayloadKind::Flip,
            counter_bits,
            "s0",
            clique.activation_cube.clone(),
        )
        .unwrap();
        (
            nl,
            SequentialInfectedDesign {
                netlist: infected,
                trojan,
            },
        )
    }

    #[test]
    fn campaign_stimuli_are_deterministic_and_cycle_distinct() {
        let campaign = SequentialCampaign::new(64, 8, 5);
        assert_eq!(campaign.stimulus(4, 3), campaign.stimulus(4, 3));
        assert_ne!(campaign.stimulus(4, 3), campaign.stimulus(4, 4));
        assert_eq!(campaign.trace_cycles(), 512);
    }

    #[test]
    fn random_campaign_triggers_and_detects_the_timebomb() {
        let (golden, design) = build(1);
        // 4-input host, 2-node trigger: random vectors hit the trigger
        // often enough that a 64×200 campaign arms the 1-bit counter.
        let campaign = SequentialCampaign::new(64, 200, 7);
        let report = evaluate_sequential_designs(&golden, &[design], &campaign).unwrap();
        assert_eq!(report.total(), 1);
        let v = &report.verdicts[0];
        assert!(v.triggered, "campaign must arm the trojan");
        assert!(v.detected, "XOR payload on an observable net must show");
        assert!(v.triggered_traces >= v.detected_traces);
        // With a Flip payload the output corrupts exactly when armed.
        assert_eq!(v.trigger_latency, v.detection_latency);
        assert!(report.trigger_coverage() > 99.0);
        assert!(report.mean_detection_latency().is_some());
    }

    #[test]
    fn latencies_match_a_scalar_replay() {
        let (golden, design) = build(2);
        let campaign = SequentialCampaign::new(65, 120, 3);
        let report =
            evaluate_sequential_designs(&golden, std::slice::from_ref(&design), &campaign).unwrap();
        let v = &report.verdicts[0];

        // Replay trace 0..traces scalar-wise; earliest armed cycle must
        // agree with the batched verdict.
        let mut earliest: Option<u32> = None;
        for t in 0..campaign.traces {
            let mut sim = SequentialSimulator::new(&design.netlist).unwrap();
            for cycle in 0..campaign.cycles {
                let stim = campaign.stimulus(4, cycle);
                sim.step(&stim.pattern(t)).unwrap();
                if sim.value(design.trojan.combinational.trigger_output) == Some(true) {
                    earliest = Some(earliest.map_or(cycle as u32, |e| e.min(cycle as u32)));
                    break;
                }
            }
        }
        assert_eq!(v.trigger_latency, earliest);
    }

    #[test]
    fn unarmed_campaign_reports_nothing() {
        let (golden, design) = build(4);
        // 1 trace × few cycles: a 4-bit counter (15 prior events) cannot
        // arm, so nothing may be reported.
        let campaign = SequentialCampaign::new(1, 10, 11);
        let report = evaluate_sequential_designs(&golden, &[design], &campaign).unwrap();
        let v = &report.verdicts[0];
        assert!(
            !v.detected,
            "payload cannot fire before the counter saturates"
        );
        assert_eq!(v.detection_latency, None);
        assert_eq!(report.detection_coverage(), 0.0);
        assert_eq!(report.mean_detection_latency(), None);
    }

    #[test]
    fn empty_design_list_is_fine() {
        let (golden, _) = build(1);
        let campaign = SequentialCampaign::new(2, 2, 0);
        let report = evaluate_sequential_designs(&golden, &[], &campaign).unwrap();
        assert_eq!(report.total(), 0);
        assert_eq!(report.trigger_coverage(), 0.0);
    }
}
