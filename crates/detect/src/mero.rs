//! MERO — Multiple Excitation of Rare Occurrences
//! (Chakraborty, Wolff, Paul, Papachristou, Bhunia — CHES 2009).
//!
//! MERO refines random patterns so that every rare event (rare node at
//! its rare value) is excited at least `N` times, on the statistical
//! principle that repeated excitation of individual rare conditions
//! raises the chance of hitting an unknown trigger *combination*.
//!
//! Implementation notes: the classic algorithm flips one input bit at a
//! time, accepting a flip when it increases the number of satisfied rare
//! events. We batch 64 candidate flips into one bit-parallel simulation
//! and accept the best flip of each batch — the same greedy hill-climb,
//! one simulation per 64 candidate bits. The per-vector *scoring*
//! queries (the climb's starting score and the final keep-check) run
//! through one persistent [`DeltaSim`] session instead: between
//! consecutive queries only a handful of input bits move, so the
//! session re-evaluates the changed fanout cones rather than the whole
//! tape. The candidate batches stay on the full kernel — 64 flips dirty
//! most of the circuit at once, which is exactly the regime where the
//! bit-parallel walk wins (and where the session would just fall back).

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError};
use htforge_sim::{DeltaSim, PatternSet, RareNodeSet, Simulator};

use crate::scheme::DetectionScheme;

/// The MERO test generator.
///
/// # Examples
///
/// ```
/// use htforge_detect::{DetectionScheme, MeroDetection};
/// use htforge_sim::{PatternSet, RareNodeExtractor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = htforge_circuits::load("c17")?;
/// let profile = PatternSet::random(nl.inputs().len(), 2_000, 1);
/// let rare = RareNodeExtractor::new(0.3).extract(&nl, &profile)?;
/// let tests = MeroDetection::new(5, 200, 42).generate_tests(&nl, &rare)?;
/// assert!(!tests.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeroDetection {
    /// N-detect target: each rare event excited at least this often.
    n: usize,
    /// Initial random-vector pool size.
    initial_vectors: usize,
    seed: u64,
}

impl MeroDetection {
    /// MERO with N-detect target `n` over `initial_vectors` random seeds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `initial_vectors == 0`.
    #[must_use]
    pub fn new(n: usize, initial_vectors: usize, seed: u64) -> Self {
        assert!(n > 0, "N-detect target must be positive");
        assert!(initial_vectors > 0, "need at least one initial vector");
        MeroDetection {
            n,
            initial_vectors,
            seed,
        }
    }

    /// Number of rare events satisfied by the node values of one pattern.
    fn count_satisfied(
        values: &htforge_sim::NodeValues,
        pattern: usize,
        events: &[(NodeId, bool)],
    ) -> usize {
        events
            .iter()
            .filter(|&&(node, want)| values.value(node, pattern) == want)
            .count()
    }

    /// Moves the one-pattern delta session to `vector` (staging only the
    /// bits that differ) and propagates the changed cones.
    fn sync_session(session: &mut DeltaSim<'_>, vector: &[bool]) {
        for (i, &bit) in vector.iter().enumerate() {
            if session.patterns().get(i, 0) != bit {
                session.set_input(i, 0, bit);
            }
        }
        session.propagate();
    }

    /// Number of rare events satisfied by the session's current pattern.
    fn count_satisfied_session(session: &DeltaSim<'_>, events: &[(NodeId, bool)]) -> usize {
        events
            .iter()
            .filter(|&&(node, want)| session.value(node, 0) == want)
            .count()
    }

    /// [`DetectionScheme::generate_tests`] against an already-compiled
    /// simulator for `golden`. Campaign drivers that run MERO (or rate
    /// it against other schemes) over one circuit should compile the
    /// tape once and pass it here instead of paying a levelization and
    /// tape build per call.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] for structurally invalid netlists.
    ///
    /// # Panics
    ///
    /// Panics if `sim` was compiled for a different netlist (node-count
    /// mismatch).
    pub fn generate_tests_with_sim(
        &self,
        golden: &Netlist,
        sim: &Simulator,
        rare: &RareNodeSet,
    ) -> Result<PatternSet, NetlistError> {
        let events: Vec<(NodeId, bool)> = rare.iter().map(|r| (r.node, r.rare_value)).collect();
        let num_inputs = golden.inputs().len();

        // Seed pool, sorted by satisfied-event count (descending) as in
        // the original algorithm.
        let pool = PatternSet::random(num_inputs, self.initial_vectors, self.seed);
        let pool_values = sim.run_on(golden, &pool);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        if !events.is_empty() {
            let mut scores: Vec<usize> = Vec::with_capacity(pool.len());
            for p in 0..pool.len() {
                scores.push(Self::count_satisfied(&pool_values, p, &events));
            }
            order.sort_by_key(|&p| std::cmp::Reverse(scores[p]));
        }

        // One incremental session serves every single-pattern query in
        // the campaign; each sync re-simulates only the bits that moved.
        let mut session = sim.program().delta_sim(PatternSet::zeros(num_inputs, 1));

        let mut counts = vec![0usize; events.len()];
        let mut tests = PatternSet::zeros(num_inputs, 0);

        for &p in &order {
            if !events.is_empty() && counts.iter().all(|&c| c >= self.n) {
                break;
            }
            let mut vector = pool.pattern(p);
            if !events.is_empty() {
                Self::sync_session(&mut session, &vector);
                let mut current = Self::count_satisfied_session(&session, &events);
                // Hill-climb over input bits, 64 candidate flips per sim.
                for chunk_start in (0..num_inputs).step_by(64) {
                    let chunk_end = (chunk_start + 64).min(num_inputs);
                    let mut batch = PatternSet::zeros(num_inputs, 0);
                    for i in chunk_start..chunk_end {
                        let mut flipped = vector.clone();
                        flipped[i] = !flipped[i];
                        batch.push(&flipped);
                    }
                    let vals = sim.run_on(golden, &batch);
                    let mut best: Option<(usize, usize)> = None; // (bit, score)
                    for (k, i) in (chunk_start..chunk_end).enumerate() {
                        let score = Self::count_satisfied(&vals, k, &events);
                        if score > current && best.is_none_or(|(_, s)| score > s) {
                            best = Some((i, score));
                        }
                    }
                    if let Some((bit, score)) = best {
                        vector[bit] = !vector[bit];
                        current = score;
                    }
                }
            }

            // Keep the vector if it advances any event's N-detect count.
            // Only the accepted flips separate the session from `vector`,
            // so this propagates at most one cone per climb acceptance.
            Self::sync_session(&mut session, &vector);
            let mut useful = events.is_empty();
            for (e, &(node, want)) in events.iter().enumerate() {
                if session.value(node, 0) == want && counts[e] < self.n {
                    useful = true;
                }
            }
            if useful {
                for (e, &(node, want)) in events.iter().enumerate() {
                    if session.value(node, 0) == want {
                        counts[e] += 1;
                    }
                }
                tests.push(&vector);
            }
        }

        if tests.is_empty() {
            // Degenerate profile (no rare events): fall back to the pool.
            return Ok(pool);
        }
        Ok(tests)
    }
}

impl DetectionScheme for MeroDetection {
    fn name(&self) -> &str {
        "MERO"
    }

    fn generate_tests(
        &self,
        golden: &Netlist,
        rare: &RareNodeSet,
    ) -> Result<PatternSet, NetlistError> {
        let sim = Simulator::new(golden)?;
        self.generate_tests_with_sim(golden, &sim, rare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_sim::RareNodeExtractor;

    fn setup() -> (Netlist, RareNodeSet) {
        let nl = htforge_circuits::load("c17").unwrap();
        let profile = PatternSet::random(5, 2_000, 1);
        let rare = RareNodeExtractor::new(0.3).extract(&nl, &profile).unwrap();
        (nl, rare)
    }

    #[test]
    fn covers_each_rare_event_n_times() {
        let (nl, rare) = setup();
        assert!(!rare.is_empty(), "c17 should have rare nodes at θ=0.3");
        let n = 5;
        let tests = MeroDetection::new(n, 500, 7)
            .generate_tests(&nl, &rare)
            .unwrap();
        // Re-simulate and count excitations.
        let sim = Simulator::new(&nl).unwrap();
        let vals = sim.run_on(&nl, &tests);
        for r in rare.iter() {
            let mut hits = 0;
            for p in 0..tests.len() {
                if vals.value(r.node, p) == r.rare_value {
                    hits += 1;
                }
            }
            assert!(
                hits >= n,
                "rare event {}={} hit only {hits} < {n} times",
                nl.node(r.node).name(),
                r.rare_value
            );
        }
    }

    #[test]
    fn compact_compared_to_pool() {
        let (nl, rare) = setup();
        let tests = MeroDetection::new(3, 500, 7)
            .generate_tests(&nl, &rare)
            .unwrap();
        assert!(tests.len() < 500, "MERO should select a small subset");
        assert!(!tests.is_empty());
    }

    #[test]
    fn empty_rare_profile_falls_back_to_random() {
        let nl = htforge_circuits::load("c17").unwrap();
        let tests = MeroDetection::new(3, 50, 9)
            .generate_tests(&nl, &RareNodeSet::default())
            .unwrap();
        assert_eq!(tests.len(), 50);
    }

    #[test]
    fn shared_simulator_path_is_output_identical() {
        let (nl, rare) = setup();
        let mero = MeroDetection::new(3, 200, 5);
        let via_trait = mero.generate_tests(&nl, &rare).unwrap();
        let sim = Simulator::new(&nl).unwrap();
        // Reusing one compiled tape across calls changes nothing but the
        // compile count.
        for _ in 0..2 {
            let tests = mero.generate_tests_with_sim(&nl, &sim, &rare).unwrap();
            assert_eq!(tests, via_trait);
        }
    }

    #[test]
    fn deterministic() {
        let (nl, rare) = setup();
        let a = MeroDetection::new(3, 200, 5)
            .generate_tests(&nl, &rare)
            .unwrap();
        let b = MeroDetection::new(3, 200, 5)
            .generate_tests(&nl, &rare)
            .unwrap();
        assert_eq!(a, b);
    }
}
