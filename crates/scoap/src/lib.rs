//! SCOAP testability metrics (Goldstein & Thigpen, DAC 1980).
//!
//! Computes the classic Sandia Controllability/Observability Analysis
//! Program measures for a combinational (or scan-cut) netlist:
//!
//! * `CC0(n)` / `CC1(n)` — combinational 0-/1-controllability: a lower
//!   bound proxy for how many PI assignments are needed to set node `n`
//!   to 0 / 1,
//! * `CO(n)` — combinational observability: how hard it is to propagate
//!   node `n`'s value to a primary output.
//!
//! In this reproduction SCOAP serves two masters: it guides PODEM's
//! backtrace (easiest/hardest-input selection) and supplies the feature
//! set of the RL-baseline inserter (Sarihi et al., which the paper
//! compares against in Table III).
//!
//! # Examples
//!
//! ```
//! use htforge_netlist::bench;
//! use htforge_scoap::Scoap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = bench::parse(
//!     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
//! let scoap = Scoap::compute(&nl)?;
//! let y = nl.find("y").unwrap();
//! // AND output: CC1 = CC1(a) + CC1(b) + 1 = 3, CC0 = min + 1 = 2.
//! assert_eq!(scoap.cc1(y), 3);
//! assert_eq!(scoap.cc0(y), 2);
//! # Ok(())
//! # }
//! ```

use htforge_netlist::{netlist::NodeId, GateKind, Netlist, NetlistError, NodeKind};

/// Saturation ceiling for SCOAP values, preventing overflow on deep
/// reconvergent circuits. The classic tools cap similarly.
pub const SCOAP_MAX: u32 = 1_000_000;

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(SCOAP_MAX)
}

/// Computed SCOAP metrics for every node of one netlist.
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Scoap {
    /// Computes CC0/CC1/CO for `nl`.
    ///
    /// DFF nodes (in an uncut sequential netlist) are treated like primary
    /// inputs with controllability 1, matching the full-scan model; for
    /// observability their D input acts as an output with CO = 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn compute(nl: &Netlist) -> Result<Self, NetlistError> {
        // Cached level-order traversal: cheap on repeat calls, and the
        // contiguous SoA columns keep both passes cache-friendly.
        let order = nl.level_order()?;
        let n = nl.node_count();
        let mut cc0 = vec![0u32; n];
        let mut cc1 = vec![0u32; n];

        // Forward pass: controllability.
        for &id in &order {
            let node = nl.node(id);
            match node.kind() {
                NodeKind::Input | NodeKind::Dff => {
                    cc0[id.index()] = 1;
                    cc1[id.index()] = 1;
                }
                NodeKind::Gate(kind) => {
                    let (c0, c1) = gate_controllability(kind, node.fanins(), &cc0, &cc1);
                    cc0[id.index()] = c0;
                    cc1[id.index()] = c1;
                }
            }
        }

        // Backward pass: observability.
        let mut co = vec![SCOAP_MAX; n];
        for &o in nl.outputs() {
            co[o.index()] = 0;
        }
        for &dff in nl.dffs() {
            // D input of a scan flop is observable via the scan chain.
            if let Some(&d) = nl.node(dff).fanins().first() {
                co[d.index()] = 0;
            }
        }
        for &id in order.iter().rev() {
            let node = nl.node(id);
            let kind = match node.kind() {
                NodeKind::Gate(k) => k,
                _ => continue,
            };
            let gate_co = co[id.index()];
            if gate_co == SCOAP_MAX {
                continue; // unobservable gate: inputs keep whatever other paths give
            }
            let fanins = node.fanins();
            for (pos, &fin) in fanins.iter().enumerate() {
                let side_cost: u32 = match kind {
                    GateKind::And | GateKind::Nand => fanins
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != pos)
                        .fold(0, |acc, (_, &f)| sat_add(acc, cc1[f.index()])),
                    GateKind::Or | GateKind::Nor => fanins
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != pos)
                        .fold(0, |acc, (_, &f)| sat_add(acc, cc0[f.index()])),
                    GateKind::Xor | GateKind::Xnor => fanins
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != pos)
                        .fold(0, |acc, (_, &f)| {
                            sat_add(acc, cc0[f.index()].min(cc1[f.index()]))
                        }),
                    GateKind::Not | GateKind::Buf => 0,
                };
                let via_this_gate = sat_add(sat_add(gate_co, side_cost), 1);
                if via_this_gate < co[fin.index()] {
                    co[fin.index()] = via_this_gate;
                }
            }
        }

        Ok(Scoap { cc0, cc1, co })
    }

    /// 0-controllability of `node`.
    #[must_use]
    pub fn cc0(&self, node: NodeId) -> u32 {
        self.cc0[node.index()]
    }

    /// 1-controllability of `node`.
    #[must_use]
    pub fn cc1(&self, node: NodeId) -> u32 {
        self.cc1[node.index()]
    }

    /// Controllability of `node` toward `value`.
    #[must_use]
    pub fn cc(&self, node: NodeId, value: bool) -> u32 {
        if value {
            self.cc1(node)
        } else {
            self.cc0(node)
        }
    }

    /// Observability of `node` ([`SCOAP_MAX`] if unobservable).
    #[must_use]
    pub fn co(&self, node: NodeId) -> u32 {
        self.co[node.index()]
    }

    /// Testability of the stuck-at-`value` fault at `node`:
    /// `CC(v̄) + CO` — how hard it is to excite *and* observe.
    #[must_use]
    pub fn fault_hardness(&self, node: NodeId, stuck_at: bool) -> u32 {
        sat_add(self.cc(node, !stuck_at), self.co(node))
    }
}

fn gate_controllability(kind: GateKind, fanins: &[NodeId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let sum = |vals: &dyn Fn(NodeId) -> u32| -> u32 {
        fanins.iter().fold(0, |acc, &f| sat_add(acc, vals(f)))
    };
    let min = |vals: &dyn Fn(NodeId) -> u32| -> u32 {
        fanins.iter().map(|&f| vals(f)).min().unwrap_or(SCOAP_MAX)
    };
    let c0 = |f: NodeId| cc0[f.index()];
    let c1 = |f: NodeId| cc1[f.index()];
    match kind {
        GateKind::And => (sat_add(min(&c0), 1), sat_add(sum(&c1), 1)),
        GateKind::Nand => (sat_add(sum(&c1), 1), sat_add(min(&c0), 1)),
        GateKind::Or => (sat_add(sum(&c0), 1), sat_add(min(&c1), 1)),
        GateKind::Nor => (sat_add(min(&c1), 1), sat_add(sum(&c0), 1)),
        GateKind::Not => (sat_add(c1(fanins[0]), 1), sat_add(c0(fanins[0]), 1)),
        GateKind::Buf => (sat_add(c0(fanins[0]), 1), sat_add(c1(fanins[0]), 1)),
        GateKind::Xor | GateKind::Xnor => {
            // Fold pairwise: cost of parity-0 / parity-1 over the inputs.
            let mut p0 = c0(fanins[0]);
            let mut p1 = c1(fanins[0]);
            for &f in &fanins[1..] {
                let (f0, f1) = (c0(f), c1(f));
                let n0 = sat_add(p0, f0).min(sat_add(p1, f1));
                let n1 = sat_add(p0, f1).min(sat_add(p1, f0));
                p0 = n0;
                p1 = n1;
            }
            if kind == GateKind::Xor {
                (sat_add(p0, 1), sat_add(p1, 1))
            } else {
                (sat_add(p1, 1), sat_add(p0, 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    #[test]
    fn and_gate_textbook_values() {
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        let (a, y) = (nl.find("a").unwrap(), nl.find("y").unwrap());
        assert_eq!(s.cc0(a), 1);
        assert_eq!(s.cc1(a), 1);
        assert_eq!(s.cc1(y), 3); // 1 + 1 + 1
        assert_eq!(s.cc0(y), 2); // min(1,1) + 1
        assert_eq!(s.co(y), 0);
        // CO(a) = CO(y) + CC1(b) + 1 = 2
        assert_eq!(s.co(a), 2);
    }

    #[test]
    fn deep_and_chain_cc1_grows_linearly() {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = AND(a, b)
g2 = AND(g1, c)
y = AND(g2, d)
";
        let nl = bench::parse(src, "t").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        assert_eq!(s.cc1(nl.find("g1").unwrap()), 3);
        assert_eq!(s.cc1(nl.find("g2").unwrap()), 5);
        assert_eq!(s.cc1(nl.find("y").unwrap()), 7);
        // CC0 stays low: one controlling input suffices.
        assert_eq!(s.cc0(nl.find("y").unwrap()), 2);
    }

    #[test]
    fn inverter_swaps_controllabilities() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        let y = nl.find("y").unwrap();
        assert_eq!(s.cc0(y), 2);
        assert_eq!(s.cc1(y), 2);
        assert_eq!(s.co(nl.find("a").unwrap()), 1);
    }

    #[test]
    fn xor_controllability() {
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "t").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        let y = nl.find("y").unwrap();
        // XOR2: CC0 = min(1+1, 1+1)+1 = 3, CC1 = 3.
        assert_eq!(s.cc0(y), 3);
        assert_eq!(s.cc1(y), 3);
    }

    #[test]
    fn unobservable_dangling_gate() {
        // g has no path to a PO.
        let src = "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ng = NOT(a)\n";
        let nl = bench::parse(src, "t").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        assert_eq!(s.co(nl.find("g").unwrap()), SCOAP_MAX);
    }

    #[test]
    fn reconvergence_takes_cheapest_path() {
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
y = AND(a, b)
z = BUF(a)
";
        let nl = bench::parse(src, "t").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        // `a` is observable directly through the BUF (CO = 1), cheaper
        // than through the AND (CO = 2).
        assert_eq!(s.co(nl.find("a").unwrap()), 1);
    }

    #[test]
    fn dff_is_scan_accessible() {
        let src = "\
INPUT(a)
OUTPUT(g)
g = XOR(a, q)
q = DFF(g)
";
        let nl = bench::parse(src, "seq").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        let q = nl.find("q").unwrap();
        assert_eq!(s.cc0(q), 1);
        assert_eq!(s.cc1(q), 1);
        // g is a PO itself, so CO(g) = 0.
        assert_eq!(s.co(nl.find("g").unwrap()), 0);
    }

    #[test]
    fn fault_hardness_combines_both() {
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let s = Scoap::compute(&nl).unwrap();
        let y = nl.find("y").unwrap();
        // s-a-0 at y: excite with CC1 = 3, observe with CO = 0.
        assert_eq!(s.fault_hardness(y, false), 3);
        assert_eq!(s.fault_hardness(y, true), 2);
    }
}
