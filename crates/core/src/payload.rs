//! Payload-net selection.
//!
//! The trojan effect is a conditional bit-flip: an XOR of the payload net
//! and the trigger output is spliced over the payload net (§III-D,
//! Algorithm 3). The payload net must be chosen so that the insertion
//! cannot create a combinational cycle: no trigger (rare) node may be
//! combinationally reachable from the payload net's consumers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use htforge_netlist::{graph, netlist::NodeId, Netlist, NodeKind};
use htforge_scoap::Scoap;

/// The trojan *effect* applied to the payload net once triggered.
///
/// The paper's instances use the conditional bit-flip; the force
/// variants model the Denial-of-Service effects its introduction cites
/// (a net stuck at a value while the trigger holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadKind {
    /// XOR splice: the net's value inverts while triggered.
    #[default]
    Flip,
    /// AND-with-inverted-trigger splice: the net forces to 0 while
    /// triggered.
    ForceZero,
    /// OR splice: the net forces to 1 while triggered.
    ForceOne,
}

/// How the payload net is picked among the acyclicity-safe candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadStrategy {
    /// Prefer the most observable net (lowest SCOAP CO): once the trigger
    /// fires, the flip is maximally likely to corrupt a primary output.
    #[default]
    MostObservable,
    /// Uniform random among safe candidates, seeded for reproducibility.
    Random(u64),
}

/// Returns payload-net candidates that keep the infected netlist acyclic
/// for a trojan triggered by `trigger_nodes`: gate nodes none of whose
/// combinational fan-out reaches a trigger node.
///
/// Primary inputs and DFF outputs are excluded (flipping a PI is not an
/// internal payload; flipping a Q is equivalent to targeting its fan-out
/// gates). The trigger nodes themselves are excluded too: flipping a
/// net that feeds the trigger would change the activation condition.
#[must_use]
pub fn safe_payload_candidates(nl: &Netlist, trigger_nodes: &[NodeId]) -> Vec<NodeId> {
    // One backward pass from the trigger taps: `reaches_trigger[n]` set
    // ⟺ some trigger node lies in `n`'s combinational fan-out. Each
    // candidate then checks its direct consumers against the mask in
    // O(fanout) instead of running a fresh forward traversal per node
    // (which made this O(gates²) — seconds on s38584-scale hosts).
    let reaches_trigger = graph::transitive_fanin(nl, trigger_nodes);
    let mut out = Vec::new();
    for (id, node) in nl.iter() {
        if !matches!(node.kind(), NodeKind::Gate(_)) {
            continue;
        }
        if trigger_nodes.contains(&id) {
            continue;
        }
        // Victim must drive something (a PO counts as an implicit sink).
        if node.fanouts().is_empty() && !nl.is_output(id) {
            continue;
        }
        // Acyclicity: the XOR output feeds the victim's current consumers;
        // a cycle forms iff a trigger node is reachable from any of them.
        if node.fanouts().iter().all(|c| !reaches_trigger[c.index()]) {
            out.push(id);
        }
    }
    out
}

/// Picks one payload net per `strategy` from the safe candidates.
///
/// Returns `None` when no net is safe (tiny or degenerate circuits).
#[must_use]
pub fn choose_payload(
    nl: &Netlist,
    scoap: &Scoap,
    trigger_nodes: &[NodeId],
    strategy: PayloadStrategy,
) -> Option<NodeId> {
    let mut candidates = safe_payload_candidates(nl, trigger_nodes);
    if candidates.is_empty() {
        return None;
    }
    match strategy {
        PayloadStrategy::MostObservable => candidates.into_iter().min_by_key(|&id| scoap.co(id)),
        PayloadStrategy::Random(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            candidates.shuffle(&mut rng);
            candidates.first().copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    const CHAIN: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NAND(g1, b)
y = NAND(g1, g2)
";

    #[test]
    fn upstream_nets_are_unsafe_downstream_safe() {
        let nl = bench::parse(CHAIN, "t").unwrap();
        let g1 = nl.find("g1").unwrap();
        let y = nl.find("y").unwrap();
        // Trigger taps g2 → anything whose fanout reaches g2 is unsafe.
        let g2 = nl.find("g2").unwrap();
        let safe = safe_payload_candidates(&nl, &[g2]);
        assert!(!safe.contains(&g1), "g1 feeds g2: cycle risk");
        assert!(safe.contains(&y), "y is downstream of g2: safe");
    }

    #[test]
    fn trigger_nodes_excluded() {
        let nl = bench::parse(CHAIN, "t").unwrap();
        let y = nl.find("y").unwrap();
        let safe = safe_payload_candidates(&nl, &[y]);
        assert!(!safe.contains(&y));
    }

    #[test]
    fn strategies_pick_from_safe_set() {
        let nl = bench::parse(CHAIN, "t").unwrap();
        let scoap = Scoap::compute(&nl).unwrap();
        let g2 = nl.find("g2").unwrap();
        let safe = safe_payload_candidates(&nl, &[g2]);
        for strategy in [
            PayloadStrategy::MostObservable,
            PayloadStrategy::Random(0),
            PayloadStrategy::Random(1),
        ] {
            let choice = choose_payload(&nl, &scoap, &[g2], strategy).unwrap();
            assert!(safe.contains(&choice), "{strategy:?}");
        }
    }

    #[test]
    fn most_observable_prefers_low_co() {
        let nl = bench::parse(CHAIN, "t").unwrap();
        let scoap = Scoap::compute(&nl).unwrap();
        let g2 = nl.find("g2").unwrap();
        let choice = choose_payload(&nl, &scoap, &[g2], PayloadStrategy::MostObservable).unwrap();
        // y is a PO (CO = 0) and safe — must be chosen.
        assert_eq!(choice, nl.find("y").unwrap());
    }

    #[test]
    fn no_safe_net_yields_none() {
        // Single gate: it is the only gate, and it's the trigger node.
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let scoap = Scoap::compute(&nl).unwrap();
        let y = nl.find("y").unwrap();
        assert_eq!(
            choose_payload(&nl, &scoap, &[y], PayloadStrategy::MostObservable),
            None
        );
    }

    #[test]
    fn inputs_are_never_candidates() {
        let nl = bench::parse(CHAIN, "t").unwrap();
        let safe = safe_payload_candidates(&nl, &[]);
        assert!(!safe.contains(&nl.find("a").unwrap()));
        assert!(!safe.contains(&nl.find("b").unwrap()));
    }
}
