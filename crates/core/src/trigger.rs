//! Trigger-logic synthesis — the paper's Fig. 1 construction (§III-D).
//!
//! The trigger tree is built backward-compatible with the *output-bias
//! discipline*: every gate in the tree produces its **rare output** (the
//! value a `k`-input gate of that kind emits with probability `1/2^k`)
//! exactly when the trojan activates, so every internal trigger node is
//! itself a rare signal. Only `AND`, `NAND`, `OR`, `NOR` are used and no
//! inverters are inserted:
//!
//! * rare-value-1 trigger nodes feed `AND`/`NAND` gates (activated by
//!   all-1 inputs),
//! * rare-value-0 trigger nodes feed `OR`/`NOR` gates (activated by
//!   all-0 inputs),
//! * levels alternate `NAND` ↔ `NOR` upward (Fig. 1), terminating in an
//!   `AND`/`NOR` root whose activation value is 1.

use htforge_netlist::GateKind;

/// A signal inside a [`TriggerPlan`]: either one of the trojan's trigger
/// (rare) nodes, or the output of an earlier planned gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSignal {
    /// Index into the plan's trigger-node list.
    Leaf(usize),
    /// Index into [`TriggerPlan::gates`].
    Gate(usize),
}

/// One gate of the planned trigger tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedGate {
    /// Gate kind (always one of `AND`, `NAND`, `OR`, `NOR`).
    pub kind: GateKind,
    /// Inputs, in order.
    pub inputs: Vec<PlanSignal>,
    /// The value this gate outputs when the trojan activates
    /// (equal to `kind.rare_output()`).
    pub activation_value: bool,
}

/// A netlist-independent description of one trigger tree.
///
/// Build with [`TriggerPlan::synthesize`], instantiate into a netlist
/// with [`crate::insert`].
///
/// # Examples
///
/// ```
/// use htforge_core::TriggerPlan;
///
/// // Six trigger nodes: four rare-1, two rare-0, max fan-in 4.
/// let plan = TriggerPlan::synthesize(
///     &[true, true, true, true, false, false], 4);
/// assert!(plan.output_activation_value());
/// assert!(plan.gates().len() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerPlan {
    rare_values: Vec<bool>,
    gates: Vec<PlannedGate>,
    output: PlanSignal,
}

impl TriggerPlan {
    /// Synthesizes a trigger tree over trigger nodes with the given rare
    /// values, using gates of fan-in at most `max_fanin`.
    ///
    /// The tree output is 1 exactly when **all** trigger nodes sit at
    /// their rare values (verified exhaustively by [`TriggerPlan::eval`]
    /// in the test suite).
    ///
    /// # Panics
    ///
    /// Panics if `rare_values` is empty or `max_fanin < 2`.
    #[must_use]
    pub fn synthesize(rare_values: &[bool], max_fanin: usize) -> Self {
        assert!(!rare_values.is_empty(), "trigger needs at least one node");
        assert!(max_fanin >= 2, "trigger gates need fan-in of at least 2");

        let mut gates: Vec<PlannedGate> = Vec::new();
        // Working set: signals with their value at activation.
        let mut signals: Vec<(PlanSignal, bool)> = rare_values
            .iter()
            .enumerate()
            .map(|(i, &v)| (PlanSignal::Leaf(i), v))
            .collect();

        let push_gate = |gates: &mut Vec<PlannedGate>, kind: GateKind, inputs: Vec<PlanSignal>| {
            let activation_value = kind.rare_output().expect("bias-disciplined kind");
            gates.push(PlannedGate {
                kind,
                inputs,
                activation_value,
            });
            (PlanSignal::Gate(gates.len() - 1), activation_value)
        };

        loop {
            if signals.len() == 1 {
                let (sig, val) = signals[0];
                if val {
                    return TriggerPlan {
                        rare_values: rare_values.to_vec(),
                        gates,
                        output: sig,
                    };
                }
                // A single 0-valued signal: flip through a 1-input NOR
                // (functionally an inverter, but stays in the OR family so
                // the bias discipline holds: NOR outputs 1 rarely).
                signals[0] = push_gate(&mut gates, GateKind::Nor, vec![sig]);
                continue;
            }

            let ones: Vec<PlanSignal> = signals
                .iter()
                .filter(|(_, v)| *v)
                .map(|(s, _)| *s)
                .collect();
            let zeros: Vec<PlanSignal> = signals
                .iter()
                .filter(|(_, v)| !*v)
                .map(|(s, _)| *s)
                .collect();

            // Terminal case: few enough homogeneous signals for one root
            // gate whose activation value is 1.
            if zeros.is_empty() && ones.len() <= max_fanin {
                let (out, _) = push_gate(&mut gates, GateKind::And, ones);
                return TriggerPlan {
                    rare_values: rare_values.to_vec(),
                    gates,
                    output: out,
                };
            }
            if ones.is_empty() && zeros.len() <= max_fanin {
                let (out, _) = push_gate(&mut gates, GateKind::Nor, zeros);
                return TriggerPlan {
                    rare_values: rare_values.to_vec(),
                    gates,
                    output: out,
                };
            }

            // Combine one level: all-1 groups through NAND (→ 0), all-0
            // groups through NOR (→ 1) — the Fig. 1 alternation. Chunks of
            // size 1 pass through untouched unless that would stall.
            let mut next: Vec<(PlanSignal, bool)> = Vec::new();
            let mut made_progress = false;
            for chunk in ones.chunks(max_fanin) {
                if chunk.len() == 1 {
                    next.push((chunk[0], true));
                } else {
                    next.push(push_gate(&mut gates, GateKind::Nand, chunk.to_vec()));
                    made_progress = true;
                }
            }
            for chunk in zeros.chunks(max_fanin) {
                if chunk.len() == 1 {
                    next.push((chunk[0], false));
                } else {
                    next.push(push_gate(&mut gates, GateKind::Nor, chunk.to_vec()));
                    made_progress = true;
                }
            }
            if !made_progress {
                // Mixed pair {1-signal, 0-signal}: lift the 0 to a 1 via a
                // 1-input NOR so the pair can merge next round.
                let zero_pos = next
                    .iter()
                    .position(|(_, v)| !*v)
                    .expect("stall implies a mixed pair");
                let sig = next[zero_pos].0;
                next[zero_pos] = push_gate(&mut gates, GateKind::Nor, vec![sig]);
            }
            signals = next;
        }
    }

    /// The rare values of the trigger nodes, in leaf order.
    #[must_use]
    pub fn rare_values(&self) -> &[bool] {
        &self.rare_values
    }

    /// The planned gates, in instantiation order (inputs always precede
    /// consumers).
    #[must_use]
    pub fn gates(&self) -> &[PlannedGate] {
        &self.gates
    }

    /// The tree's output signal.
    #[must_use]
    pub fn output(&self) -> PlanSignal {
        self.output
    }

    /// Number of trigger (leaf) nodes.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.rare_values.len()
    }

    /// Activation value at the output (always `true` by construction).
    #[must_use]
    pub fn output_activation_value(&self) -> bool {
        match self.output {
            PlanSignal::Leaf(i) => self.rare_values[i],
            PlanSignal::Gate(g) => self.gates[g].activation_value,
        }
    }

    /// Evaluates the tree for concrete leaf values (reference semantics
    /// used by tests and by the area model).
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len()` differs from [`TriggerPlan::num_leaves`].
    #[must_use]
    pub fn eval(&self, leaves: &[bool]) -> bool {
        assert_eq!(leaves.len(), self.num_leaves(), "leaf count mismatch");
        let mut values = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let ins: Vec<bool> = gate
                .inputs
                .iter()
                .map(|s| match *s {
                    PlanSignal::Leaf(i) => leaves[i],
                    PlanSignal::Gate(g) => values[g],
                })
                .collect();
            values.push(gate.kind.eval_bool(&ins));
        }
        match self.output {
            PlanSignal::Leaf(i) => leaves[i],
            PlanSignal::Gate(g) => values[g],
        }
    }

    /// The theoretical activation probability of the trigger under
    /// independent rare-node probabilities `probs` (one per leaf).
    ///
    /// # Panics
    ///
    /// Panics if `probs.len()` differs from the leaf count.
    #[must_use]
    pub fn activation_probability(&self, probs: &[f64]) -> f64 {
        assert_eq!(probs.len(), self.num_leaves(), "probability count mismatch");
        probs.iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trigger must output 1 iff every leaf is at its rare value.
    fn assert_exact_activation(rare_values: &[bool], max_fanin: usize) {
        let plan = TriggerPlan::synthesize(rare_values, max_fanin);
        let q = rare_values.len();
        assert!(q <= 16, "exhaustive check limited to 16 leaves");
        for pattern in 0u32..(1 << q) {
            let leaves: Vec<bool> = (0..q).map(|i| (pattern >> i) & 1 == 1).collect();
            let expected = leaves.iter().zip(rare_values).all(|(&l, &r)| l == r);
            assert_eq!(
                plan.eval(&leaves),
                expected,
                "rare={rare_values:?} fanin={max_fanin} leaves={leaves:?}"
            );
        }
    }

    #[test]
    fn exact_activation_small_shapes() {
        assert_exact_activation(&[true], 2);
        assert_exact_activation(&[false], 2);
        assert_exact_activation(&[true, true], 2);
        assert_exact_activation(&[true, false], 2);
        assert_exact_activation(&[false, false], 2);
        assert_exact_activation(&[true, false, true], 2);
        assert_exact_activation(&[false, false, false, false], 2);
    }

    #[test]
    fn exact_activation_mixed_wide() {
        for q in 5..=10 {
            for fanin in [2, 3, 4] {
                // Alternating rare values stress the grouping logic.
                let rare: Vec<bool> = (0..q).map(|i| i % 2 == 0).collect();
                assert_exact_activation(&rare, fanin);
                // All-1 and all-0 shapes.
                assert_exact_activation(&vec![true; q], fanin);
                assert_exact_activation(&vec![false; q], fanin);
            }
        }
    }

    #[test]
    fn only_bias_disciplined_gates_used() {
        let rare: Vec<bool> = (0..25).map(|i| i % 3 == 0).collect();
        let plan = TriggerPlan::synthesize(&rare, 4);
        for gate in plan.gates() {
            assert!(
                matches!(
                    gate.kind,
                    GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor
                ),
                "unexpected kind {:?}",
                gate.kind
            );
            // Every gate's activation value is its rare output.
            assert_eq!(Some(gate.activation_value), gate.kind.rare_output());
        }
        assert!(plan.output_activation_value());
    }

    #[test]
    fn leaves_feed_matching_gate_families() {
        // Rare-1 leaves must enter AND/NAND, rare-0 leaves OR/NOR (§III-D).
        let rare: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
        let plan = TriggerPlan::synthesize(&rare, 3);
        for gate in plan.gates() {
            for input in &gate.inputs {
                if let PlanSignal::Leaf(i) = *input {
                    if rare[i] {
                        assert!(
                            matches!(gate.kind, GateKind::And | GateKind::Nand),
                            "rare-1 leaf {i} feeds {:?}",
                            gate.kind
                        );
                    } else {
                        assert!(
                            matches!(gate.kind, GateKind::Or | GateKind::Nor),
                            "rare-0 leaf {i} feeds {:?}",
                            gate.kind
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn large_trigger_tree_q125() {
        // The paper advertises 25–125 trigger nodes.
        let rare: Vec<bool> = (0..125).map(|i| i % 5 != 0).collect();
        let plan = TriggerPlan::synthesize(&rare, 4);
        assert_eq!(plan.num_leaves(), 125);
        assert!(plan.output_activation_value());
        // Spot-check: all-rare activates, one flip deactivates.
        let mut leaves = rare.clone();
        assert!(plan.eval(&leaves));
        leaves[7] = !leaves[7];
        assert!(!plan.eval(&leaves));
        leaves[7] = !leaves[7];
        leaves[124] = !leaves[124];
        assert!(!plan.eval(&leaves));
    }

    #[test]
    fn activation_probability_is_product() {
        let plan = TriggerPlan::synthesize(&[true, false, true], 2);
        let p = plan.activation_probability(&[0.1, 0.2, 0.05]);
        assert!((p - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_trigger_panics() {
        let _ = TriggerPlan::synthesize(&[], 4);
    }
}
