//! Enumeration of complete subgraphs (cliques) of the compatibility
//! graph — the `find_cliques(G, q, N)` step of Algorithm 2.
//!
//! The enumerator performs an ordered depth-first extension search: a
//! clique `{v₁ < v₂ < … }` is only ever extended with vertices greater
//! than its maximum, so every size-`q` clique is produced exactly once.
//! Candidate sets are bit-packed rows of the compatibility matrix, making
//! the intersection step a handful of word ANDs. The search stops as soon
//! as `limit` cliques are found — the paper's Table IV caps range from
//! 1 000 to ~22 000 subgraphs per circuit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use htforge_atpg::Cube;
use htforge_obs::{BudgetTicker, RunBudget};

use crate::compat::CompatGraph;

/// A complete subgraph of the compatibility graph: the trigger-node set
/// of one trojan instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clique {
    /// Vertex indices into [`CompatGraph::events`].
    pub members: Vec<usize>,
    /// The merged test cube that simultaneously drives every member to
    /// its rare value — the trojan's (never-applied) activation vector.
    pub activation_cube: Cube,
}

impl Clique {
    /// Clique size (the trojan's trigger-node count `q`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the clique is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Enumerates up to `limit` cliques of size exactly `size`.
///
/// `order_seed` permutes the vertex visiting order: different seeds find
/// different (overlapping) clique families first, which is how the
/// framework diversifies the `N` trojan instances it emits.
///
/// Returns fewer than `limit` cliques (possibly zero) when the graph does
/// not contain them.
///
/// # Panics
///
/// Panics if `size == 0`.
#[must_use]
pub fn enumerate_cliques(
    graph: &CompatGraph,
    size: usize,
    limit: usize,
    order_seed: u64,
) -> Vec<Clique> {
    enumerate_cliques_budgeted(graph, size, limit, order_seed, &RunBudget::unlimited()).0
}

/// Budget-aware [`enumerate_cliques`]: the DFS checks the budget
/// (amortized, every 256 expansions) and stops early when it is spent.
/// Returns the cliques found so far plus a flag reporting whether the
/// search was cut short — callers typically fall back to
/// [`sample_cliques`] (greedy) for the remainder, the framework's
/// degradation-ladder step.
///
/// # Panics
///
/// Panics if `size == 0`.
#[must_use]
pub fn enumerate_cliques_budgeted(
    graph: &CompatGraph,
    size: usize,
    limit: usize,
    order_seed: u64,
    budget: &RunBudget,
) -> (Vec<Clique>, bool) {
    assert!(size > 0, "clique size must be positive");
    let n = graph.len();
    let mut out = Vec::new();
    if n < size || limit == 0 {
        return (out, false);
    }
    let mut ticker = BudgetTicker::new(budget.clone(), 256);

    // Visit vertices in a seeded random order, but keep extension
    // candidates in ascending index order for exactly-once enumeration.
    let mut roots: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(order_seed);
    roots.shuffle(&mut rng);

    let words = n.div_ceil(64);
    let mut stack_members: Vec<usize> = Vec::with_capacity(size);

    // Iterative DFS with explicit candidate sets. `expanded` counts
    // search-tree nodes visited, for the `clique.nodes_expanded` counter.
    #[allow(clippy::too_many_arguments)] // recursion-local state, one call site
    fn extend(
        graph: &CompatGraph,
        members: &mut Vec<usize>,
        candidates: &[u64],
        size: usize,
        limit: usize,
        out: &mut Vec<Clique>,
        expanded: &mut u64,
        ticker: &mut BudgetTicker,
    ) {
        *expanded += 1;
        if ticker.tick().is_err() || out.len() >= limit {
            return;
        }
        if members.len() == size {
            let cube = graph
                .merged_cube(members)
                .expect("clique members are pairwise compatible");
            out.push(Clique {
                members: members.clone(),
                activation_cube: cube,
            });
            return;
        }
        // Prune: not enough candidates left to reach `size`.
        let remaining: usize = candidates.iter().map(|w| w.count_ones() as usize).sum();
        if members.len() + remaining < size {
            return;
        }
        let base = *members.last().expect("extend called with nonempty clique");
        for (w, &word) in candidates.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = w * 64 + b;
                if v <= base {
                    continue; // ascending order ⇒ exactly-once
                }
                let row = graph.row(v);
                let next: Vec<u64> = candidates.iter().zip(row).map(|(&c, &r)| c & r).collect();
                members.push(v);
                extend(graph, members, &next, size, limit, out, expanded, ticker);
                members.pop();
                if ticker.exceeded().is_some() || out.len() >= limit {
                    return;
                }
            }
        }
    }

    let mut expanded = 0u64;
    for &root in &roots {
        htforge_obs::faultpoint!("clique.extend");
        if ticker.check_now().is_err() || out.len() >= limit {
            break;
        }
        stack_members.clear();
        stack_members.push(root);
        if size == 1 {
            let cube = graph.merged_cube(&stack_members).expect("single member");
            out.push(Clique {
                members: vec![root],
                activation_cube: cube,
            });
            continue;
        }
        // Candidates: neighbors of root with index > root (ascending-order
        // discipline also applies to the root so each clique is rooted at
        // its minimum vertex).
        let row = graph.row(root);
        let mut candidates = vec![0u64; words];
        candidates.copy_from_slice(row);
        // Mask out indices <= root.
        for (w, cand) in candidates.iter_mut().enumerate() {
            let lo = w * 64;
            if lo + 64 <= root + 1 {
                *cand = 0;
            } else if lo <= root {
                *cand &= !((1u64 << (root - lo + 1)) - 1);
            }
        }
        extend(
            graph,
            &mut stack_members,
            &candidates,
            size,
            limit,
            &mut out,
            &mut expanded,
            &mut ticker,
        );
    }
    htforge_obs::counter("clique.nodes_expanded").add(expanded);
    htforge_obs::counter("clique.found").add(out.len() as u64);
    (out, ticker.exceeded().is_some())
}

/// Samples up to `count` *distinct* cliques of size exactly `size` by
/// randomized greedy growth with restarts.
///
/// Unlike [`enumerate_cliques`] this is not exhaustive — it may return
/// fewer cliques than exist — but it never risks the exponential
/// backtracking that exact search incurs when `size` approaches the
/// graph's clique number. The framework uses it for large trigger
/// counts; Table IV's exhaustive counts use [`enumerate_cliques`].
#[must_use]
pub fn sample_cliques(graph: &CompatGraph, size: usize, count: usize, seed: u64) -> Vec<Clique> {
    sample_cliques_budgeted(graph, size, count, seed, &RunBudget::unlimited()).0
}

/// Budget-aware [`sample_cliques`]: the budget is checked before every
/// greedy start and every randomized restart. Returns the cliques found
/// plus a flag reporting whether sampling stopped early on a spent
/// budget.
///
/// # Panics
///
/// Panics if `size == 0`.
#[must_use]
pub fn sample_cliques_budgeted(
    graph: &CompatGraph,
    size: usize,
    count: usize,
    seed: u64,
    budget: &RunBudget,
) -> (Vec<Clique>, bool) {
    assert!(size > 0, "clique size must be positive");
    let n = graph.len();
    let mut out: Vec<Clique> = Vec::new();
    if n < size || count == 0 {
        return (out, false);
    }
    let mut ticker = BudgetTicker::new(budget.clone(), 4);
    let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut push = |members: Vec<usize>, out: &mut Vec<Clique>| {
        let mut key = members.clone();
        key.sort_unstable();
        if seen.insert(key) {
            let cube = graph
                .merged_cube(&members)
                .expect("greedy members are pairwise compatible");
            out.push(Clique {
                members,
                activation_cube: cube,
            });
        }
    };

    // Pass 1: deterministic greedy from every start vertex (shuffled).
    // This is the same construction [`max_feasible_size`] probes with, so
    // any size that probe reports is guaranteed to be sampleable here.
    let mut starts: Vec<usize> = (0..n).collect();
    starts.shuffle(&mut rng);
    for &start in &starts {
        if out.len() >= count {
            htforge_obs::counter("clique.found").add(out.len() as u64);
            return (out, false);
        }
        if ticker.tick().is_err() {
            break;
        }
        let members = greedy_clique(graph, start, size);
        if members.len() == size {
            push(members, &mut out);
        }
    }

    // Pass 2: randomized tie-breaking restarts for additional diversity.
    let restart_budget = count.saturating_mul(20).max(64);
    let restarts = htforge_obs::counter("clique.greedy_restarts");
    for _ in 0..restart_budget {
        if out.len() >= count || ticker.tick().is_err() {
            break;
        }
        restarts.incr();
        let start = rng.gen_range(0..n);
        let members = greedy_clique_randomized(graph, start, size, &mut rng);
        if members.len() == size {
            push(members, &mut out);
        }
    }
    htforge_obs::counter("clique.found").add(out.len() as u64);
    let timed_out = ticker.exceeded().is_some();
    (out, timed_out)
}

/// Greedy growth with randomized tie-breaking among the best few
/// candidates (diversifies the cliques found across restarts).
fn greedy_clique_randomized(
    graph: &CompatGraph,
    start: usize,
    cap: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = graph.len();
    if start >= n || cap == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<u64> = graph.row(start).to_vec();
    let mut members = vec![start];
    while members.len() < cap {
        // Score every candidate by surviving-candidate count, keep top 3.
        let mut top: Vec<(usize, usize)> = Vec::new(); // (vertex, surviving)
        for (w, &word) in candidates.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = w * 64 + b;
                let surviving: usize = candidates
                    .iter()
                    .zip(graph.row(v))
                    .map(|(&c, &r)| (c & r).count_ones() as usize)
                    .sum();
                top.push((v, surviving));
                top.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
                top.truncate(3);
            }
        }
        if top.is_empty() {
            break;
        }
        let (v, _) = top[rng.gen_range(0..top.len())];
        for (c, &r) in candidates.iter_mut().zip(graph.row(v)) {
            *c &= r;
        }
        members.push(v);
    }
    members
}

/// Greedily grows one clique from `start`: repeatedly adds the candidate
/// with the largest remaining candidate intersection. Returns the member
/// set (a genuine clique, not necessarily maximum).
#[must_use]
pub fn greedy_clique(graph: &CompatGraph, start: usize, cap: usize) -> Vec<usize> {
    let n = graph.len();
    if start >= n || cap == 0 {
        return Vec::new();
    }
    let words = n.div_ceil(64);
    let mut candidates: Vec<u64> = graph.row(start).to_vec();
    let mut members = vec![start];
    while members.len() < cap {
        // Pick the candidate keeping the most future candidates alive.
        let mut best: Option<(usize, usize)> = None; // (vertex, surviving)
        for (w, &word) in candidates.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = w * 64 + b;
                let surviving: usize = candidates
                    .iter()
                    .zip(graph.row(v))
                    .map(|(&c, &r)| (c & r).count_ones() as usize)
                    .sum();
                if best.is_none_or(|(_, s)| surviving > s) {
                    best = Some((v, surviving));
                }
            }
        }
        let Some((v, _)) = best else { break };
        for (c, &r) in candidates.iter_mut().zip(graph.row(v)) {
            *c &= r;
        }
        let _ = words;
        members.push(v);
    }
    members
}

/// Reports a *feasible* clique size — the best greedy clique found from a
/// spread of start vertices, capped at `upper_bound`. Because the size is
/// witnessed by an actual clique, [`enumerate_cliques`] at this size is
/// guaranteed to succeed; unlike a maximum-clique search, no
/// (worst-case-exponential) nonexistence proofs are ever attempted.
/// The framework uses this to report the per-circuit trigger-node ranges
/// of the paper's Table III.
#[must_use]
pub fn max_feasible_size(graph: &CompatGraph, upper_bound: usize, seed: u64) -> usize {
    let n = graph.len();
    if n == 0 || upper_bound == 0 {
        return 0;
    }
    let mut starts: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    starts.shuffle(&mut rng);
    let mut best = 0usize;
    for &start in starts.iter().take(16) {
        let size = greedy_clique(graph, start, upper_bound).len();
        best = best.max(size);
        if best >= upper_bound {
            break;
        }
    }
    best.min(upper_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_atpg::PodemConfig;
    use htforge_netlist::bench;
    use htforge_sim::{PatternSet, RareNodeExtractor};

    /// Four independent AND cones: all outputs mutually compatible.
    const FOUR_CONES: &str = "\
INPUT(a1)
INPUT(a2)
INPUT(b1)
INPUT(b2)
INPUT(c1)
INPUT(c2)
INPUT(d1)
INPUT(d2)
OUTPUT(w)
OUTPUT(x)
OUTPUT(y)
OUTPUT(z)
w = AND(a1, a2)
x = AND(b1, b2)
y = AND(c1, c2)
z = AND(d1, d2)
";

    fn graph() -> CompatGraph {
        let nl = bench::parse(FOUR_CONES, "t").unwrap();
        let ps = PatternSet::random(8, 10_000, 1);
        let rare = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
        CompatGraph::build(&nl, &rare, PodemConfig::default()).unwrap()
    }

    #[test]
    fn complete_graph_clique_counts() {
        let g = graph();
        assert_eq!(g.len(), 4);
        // K4: C(4,2)=6 pairs, C(4,3)=4 triples, 1 quad.
        assert_eq!(enumerate_cliques(&g, 2, 100, 0).len(), 6);
        assert_eq!(enumerate_cliques(&g, 3, 100, 0).len(), 4);
        assert_eq!(enumerate_cliques(&g, 4, 100, 0).len(), 1);
        assert_eq!(enumerate_cliques(&g, 5, 100, 0).len(), 0);
    }

    #[test]
    fn limit_is_respected() {
        let g = graph();
        assert_eq!(enumerate_cliques(&g, 2, 3, 0).len(), 3);
        assert_eq!(enumerate_cliques(&g, 2, 0, 0).len(), 0);
    }

    #[test]
    fn cliques_are_unique() {
        let g = graph();
        let cliques = enumerate_cliques(&g, 3, 100, 7);
        for (i, a) in cliques.iter().enumerate() {
            let mut sa = a.members.clone();
            sa.sort_unstable();
            for b in &cliques[i + 1..] {
                let mut sb = b.members.clone();
                sb.sort_unstable();
                assert_ne!(sa, sb, "duplicate clique");
            }
        }
    }

    #[test]
    fn members_are_pairwise_compatible() {
        let g = graph();
        for c in enumerate_cliques(&g, 3, 100, 3) {
            for (i, &a) in c.members.iter().enumerate() {
                for &b in &c.members[i + 1..] {
                    assert!(g.compatible(a, b));
                }
            }
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn different_seeds_change_discovery_order() {
        let g = graph();
        let a = enumerate_cliques(&g, 2, 2, 0);
        let b = enumerate_cliques(&g, 2, 2, 99);
        // Same universe, possibly different first finds; both valid.
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn max_feasible_size_probes_down() {
        let g = graph();
        assert_eq!(max_feasible_size(&g, 10, 0), 4);
        assert_eq!(max_feasible_size(&g, 3, 0), 3);
    }

    #[test]
    fn sampled_cliques_are_valid_and_distinct() {
        let g = graph();
        let cliques = sample_cliques(&g, 3, 10, 1);
        assert!(!cliques.is_empty());
        let mut keys: Vec<Vec<usize>> = cliques
            .iter()
            .map(|c| {
                let mut k = c.members.clone();
                k.sort_unstable();
                k
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "sampled cliques must be distinct");
        for c in &cliques {
            assert_eq!(c.len(), 3);
            for (i, &a) in c.members.iter().enumerate() {
                for &b in &c.members[i + 1..] {
                    assert!(g.compatible(a, b));
                }
            }
        }
    }

    #[test]
    fn probed_size_is_always_sampleable() {
        // Regression guard: `max_feasible_size` must report only sizes
        // that `sample_cliques` can actually produce (the pair once
        // disagreed, sending the framework into exponential fallback).
        let g = graph();
        for seed in 0..5 {
            let q = max_feasible_size(&g, 10, seed);
            assert!(q > 0);
            assert!(
                !sample_cliques(&g, q, 1, seed).is_empty(),
                "probe said q={q} but sampling failed (seed {seed})"
            );
        }
    }

    #[test]
    fn greedy_clique_members_are_compatible() {
        let g = graph();
        for start in 0..g.len() {
            let members = greedy_clique(&g, start, 10);
            assert!(!members.is_empty());
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    assert!(g.compatible(a, b));
                }
            }
        }
    }

    #[test]
    fn size_one_cliques() {
        let g = graph();
        assert_eq!(enumerate_cliques(&g, 1, 100, 0).len(), 4);
    }

    #[test]
    fn budgeted_enumeration_matches_unbudgeted_with_time_left() {
        let g = graph();
        let budget = RunBudget::with_deadline(std::time::Duration::from_secs(60));
        let (cliques, timed_out) = enumerate_cliques_budgeted(&g, 3, 100, 0, &budget);
        assert!(!timed_out);
        assert_eq!(cliques, enumerate_cliques(&g, 3, 100, 0));
    }

    #[test]
    fn spent_budget_stops_enumeration_and_sampling() {
        let g = graph();
        let budget = RunBudget::with_deadline(std::time::Duration::ZERO);
        let (cliques, timed_out) = enumerate_cliques_budgeted(&g, 3, 100, 0, &budget);
        assert!(timed_out);
        assert!(cliques.len() < 4, "must stop before full enumeration");
        let (sampled, timed_out) = sample_cliques_budgeted(&g, 3, 10, 1, &budget);
        assert!(timed_out);
        // Whatever was found before the stop is still a valid clique.
        for c in cliques.iter().chain(&sampled) {
            for (i, &a) in c.members.iter().enumerate() {
                for &b in &c.members[i + 1..] {
                    assert!(g.compatible(a, b));
                }
            }
        }
    }
}
