//! `htforge-core` — the Compatibility-Graph Assisted Automatic Hardware
//! Trojan Insertion Framework (Kumar et al., DATE 2025).
//!
//! Given a gate-level netlist, the framework produces HT-infected variants
//! whose trigger inputs are *rare nodes* that are **provably jointly
//! excitable**: a compatibility graph over PODEM test cubes identifies
//! subsets of rare nodes (complete subgraphs / cliques) that one test
//! vector can drive to their rare values simultaneously, eliminating the
//! per-instance validation step that dominates random and RL-based
//! insertion flows.
//!
//! Pipeline (paper §III):
//!
//! 1. netlist → DAG ([`htforge_netlist`]),
//! 2. rare-node extraction, Algorithm 1 ([`htforge_sim::rare`]),
//! 3. compatibility graph, Algorithm 2 ([`compat`], [`clique`]),
//! 4. trigger synthesis + insertion, Algorithm 3 ([`trigger`],
//!    [`payload`], [`insert`]),
//!
//! all orchestrated by [`InsertionFramework`].
//!
//! # Examples
//!
//! ```
//! use htforge_core::{InsertionConfig, InsertionFramework};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = htforge_circuits::load("c17")?;
//! let config = InsertionConfig {
//!     theta: 0.30,
//!     num_vectors: 2_000,
//!     trigger_nodes: 2,
//!     num_instances: 1,
//!     podem: htforge_atpg::PodemConfig::justify(),
//!     ..InsertionConfig::default()
//! };
//! let outcome = InsertionFramework::new(config).run(&nl)?;
//! assert_eq!(outcome.infected.len(), 1);
//! let design = &outcome.infected[0];
//! assert!(design.netlist.node_count() > nl.node_count());
//! # Ok(())
//! # }
//! ```

pub mod clique;
pub mod compat;
pub mod error;
pub mod framework;
pub mod insert;
pub mod payload;
pub mod profile;
pub mod sequential_trigger;
pub mod trigger;

pub use clique::{enumerate_cliques, Clique};
pub use compat::{CompatGraph, RareEvent};
pub use error::InsertionError;
pub use framework::{
    InfectedDesign, InsertionConfig, InsertionFramework, InsertionOutcome, PhaseTimings,
};
pub use insert::TrojanInstance;
pub use payload::{PayloadKind, PayloadStrategy};
pub use profile::{PhaseProfileStore, DEFAULT_STAGE_WEIGHTS, STAGED_PHASES};
pub use sequential_trigger::{
    insert_sequential_trojan, SequentialInfectedDesign, SequentialTrojan,
};
pub use trigger::TriggerPlan;
