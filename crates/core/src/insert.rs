//! HT-infected netlist generation — the paper's **Algorithm 3**.
//!
//! Instantiates a [`TriggerPlan`] into a copy of the host netlist, wires
//! its leaves to the clique's rare nodes (rare-1 nodes into the AND
//! family, rare-0 nodes into the OR family — the careful alignment of
//! §III-D), and splices an XOR payload over the chosen payload net.

use htforge_atpg::Cube;
use htforge_netlist::{netlist::NodeId, GateKind, Netlist};

use crate::compat::CompatGraph;
use crate::error::InsertionError;
use crate::payload::PayloadKind;
use crate::trigger::{PlanSignal, TriggerPlan};
use crate::Clique;

/// Everything known about one inserted trojan.
#[derive(Debug, Clone)]
pub struct TrojanInstance {
    /// Trigger (rare) nodes with their rare values, in plan-leaf order.
    pub trigger_inputs: Vec<(NodeId, bool)>,
    /// Node ids of the inserted trigger gates (in the infected netlist).
    pub trigger_gates: Vec<NodeId>,
    /// The trigger tree's output node.
    pub trigger_output: NodeId,
    /// The net whose value the payload corrupts.
    pub payload_net: NodeId,
    /// The payload effect applied to that net.
    pub payload_kind: PayloadKind,
    /// The inserted payload splice gate (XOR / AND / OR per kind).
    pub payload_gate: NodeId,
    /// A (never-to-be-applied) input cube that activates the trigger —
    /// the merged clique cube, kept for audit and testing.
    pub activation_cube: Cube,
}

impl TrojanInstance {
    /// Number of trigger nodes (`q`).
    #[must_use]
    pub fn trigger_node_count(&self) -> usize {
        self.trigger_inputs.len()
    }

    /// Total inserted gate count (trigger tree + payload splice gates).
    #[must_use]
    pub fn inserted_gate_count(&self) -> usize {
        let payload_gates = match self.payload_kind {
            PayloadKind::Flip | PayloadKind::ForceOne => 1,
            PayloadKind::ForceZero => 2, // inverter + AND
        };
        self.trigger_gates.len() + payload_gates
    }
}

/// Inserts the trojan described by `clique`/`plan` into a copy of `nl`,
/// with the payload spliced over `payload_net`. Inserted signals are
/// named `ht{tag}_…` so multiple instances can coexist.
///
/// The caller is responsible for having validated that `payload_net` is
/// acyclicity-safe (see [`crate::payload`]); the resulting netlist is
/// re-validated and a cycle would surface as an error here.
///
/// # Errors
///
/// Returns [`InsertionError::Netlist`] if instantiation produces an
/// invalid netlist (e.g. an unsafe payload net creating a cycle).
///
/// # Panics
///
/// Panics if `plan` and `clique` disagree on the number of trigger nodes.
pub fn insert_trojan(
    nl: &Netlist,
    graph: &CompatGraph,
    clique: &Clique,
    plan: &TriggerPlan,
    payload_net: NodeId,
    tag: &str,
) -> Result<(Netlist, TrojanInstance), InsertionError> {
    assert_eq!(
        plan.num_leaves(),
        clique.len(),
        "trigger plan and clique disagree on q"
    );
    let leaves: Vec<(NodeId, bool)> = clique
        .members
        .iter()
        .map(|&m| {
            let e = &graph.events()[m];
            (e.node, e.rare_value)
        })
        .collect();
    insert_trojan_at(
        nl,
        &leaves,
        plan,
        payload_net,
        tag,
        clique.activation_cube.clone(),
    )
}

/// Low-level variant of [`insert_trojan`] for callers (e.g. the baseline
/// inserters) that assemble their own trigger sets without a
/// compatibility graph. `activation_cube` is stored verbatim in the
/// returned [`TrojanInstance`]; pass an all-X cube when no joint trigger
/// vector is known.
///
/// # Errors
///
/// Returns [`InsertionError::Netlist`] if instantiation produces an
/// invalid netlist.
///
/// # Panics
///
/// Panics if `plan.num_leaves() != leaves.len()`.
pub fn insert_trojan_at(
    nl: &Netlist,
    leaves: &[(NodeId, bool)],
    plan: &TriggerPlan,
    payload_net: NodeId,
    tag: &str,
    activation_cube: Cube,
) -> Result<(Netlist, TrojanInstance), InsertionError> {
    insert_trojan_with(
        nl,
        leaves,
        plan,
        payload_net,
        PayloadKind::Flip,
        tag,
        activation_cube,
    )
}

/// Full-control variant of [`insert_trojan_at`]: selects the payload
/// effect ([`PayloadKind`]) applied to the payload net.
///
/// # Errors
///
/// Returns [`InsertionError::Netlist`] if instantiation produces an
/// invalid netlist.
///
/// # Panics
///
/// Panics if `plan.num_leaves() != leaves.len()`.
pub fn insert_trojan_with(
    nl: &Netlist,
    leaves: &[(NodeId, bool)],
    plan: &TriggerPlan,
    payload_net: NodeId,
    payload_kind: PayloadKind,
    tag: &str,
    activation_cube: Cube,
) -> Result<(Netlist, TrojanInstance), InsertionError> {
    assert_eq!(
        plan.num_leaves(),
        leaves.len(),
        "trigger plan and leaf set disagree on q"
    );
    debug_assert!(
        plan.rare_values()
            .iter()
            .zip(leaves)
            .all(|(&pv, &(_, cv))| pv == cv),
        "plan must be built from these leaves' rare values"
    );
    let mut out = nl.clone();
    out.set_name(format!("{}_{tag}", nl.name()));

    let mut gate_ids: Vec<NodeId> = Vec::with_capacity(plan.gates().len());
    for (k, gate) in plan.gates().iter().enumerate() {
        let fanins: Vec<NodeId> = gate
            .inputs
            .iter()
            .map(|s| match *s {
                PlanSignal::Leaf(i) => leaves[i].0,
                PlanSignal::Gate(g) => gate_ids[g],
            })
            .collect();
        let id = out
            .add_gate(format!("ht{tag}_t{k}"), gate.kind, fanins)
            .map_err(InsertionError::Netlist)?;
        gate_ids.push(id);
    }
    let trigger_output = match plan.output() {
        PlanSignal::Leaf(i) => leaves[i].0,
        PlanSignal::Gate(g) => gate_ids[g],
    };

    // Payload splice over the victim net.
    let payload_gate = match payload_kind {
        PayloadKind::Flip => out
            .add_gate(
                format!("ht{tag}_payload"),
                GateKind::Xor,
                vec![payload_net, trigger_output],
            )
            .map_err(InsertionError::Netlist)?,
        PayloadKind::ForceOne => out
            .add_gate(
                format!("ht{tag}_payload"),
                GateKind::Or,
                vec![payload_net, trigger_output],
            )
            .map_err(InsertionError::Netlist)?,
        PayloadKind::ForceZero => {
            let ntrig = out
                .add_gate(format!("ht{tag}_ninv"), GateKind::Not, vec![trigger_output])
                .map_err(InsertionError::Netlist)?;
            out.add_gate(
                format!("ht{tag}_payload"),
                GateKind::And,
                vec![payload_net, ntrig],
            )
            .map_err(InsertionError::Netlist)?
        }
    };
    out.splice_driver(payload_net, payload_gate);

    out.validate().map_err(InsertionError::Netlist)?;

    Ok((
        out,
        TrojanInstance {
            trigger_inputs: leaves.to_vec(),
            trigger_gates: gate_ids,
            trigger_output,
            payload_net,
            payload_kind,
            payload_gate,
            activation_cube,
        },
    ))
}

/// Convenience: validates that inserting over `payload_net` keeps the
/// netlist acyclic *before* attempting the insertion.
///
/// # Errors
///
/// Returns [`InsertionError::NoPayloadNet`] when the net is unsafe.
pub fn check_payload_safe(
    nl: &Netlist,
    trigger_nodes: &[NodeId],
    payload_net: NodeId,
) -> Result<(), InsertionError> {
    let candidates = crate::payload::safe_payload_candidates(nl, trigger_nodes);
    if candidates.contains(&payload_net) {
        Ok(())
    } else {
        Err(InsertionError::NoPayloadNet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::enumerate_cliques;
    use htforge_atpg::PodemConfig;
    use htforge_netlist::bench;
    use htforge_sim::simulator::BoundSimulator;
    use htforge_sim::{PatternSet, RareNodeExtractor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FOUR_CONES: &str = "\
INPUT(a1)
INPUT(a2)
INPUT(b1)
INPUT(b2)
INPUT(c1)
INPUT(c2)
OUTPUT(w)
OUTPUT(x)
OUTPUT(v)
OUTPUT(o)
w = AND(a1, a2)
x = AND(b1, b2)
v = NOR(c1, c2)
o = XOR(a1, b1)
";

    fn setup() -> (Netlist, CompatGraph, Clique) {
        let nl = bench::parse(FOUR_CONES, "t").unwrap();
        let ps = PatternSet::random(6, 10_000, 1);
        let rare = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
        let graph = CompatGraph::build(&nl, &rare, PodemConfig::default()).unwrap();
        let cliques = enumerate_cliques(&graph, 3, 10, 0);
        assert!(!cliques.is_empty(), "w, x, v should form a clique");
        (nl, graph, cliques[0].clone())
    }

    #[test]
    fn infected_netlist_validates_and_grows() {
        let (nl, graph, clique) = setup();
        let rare_values: Vec<bool> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].rare_value)
            .collect();
        let plan = TriggerPlan::synthesize(&rare_values, 4);
        let trigger_nodes: Vec<NodeId> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].node)
            .collect();
        let scoap = htforge_scoap::Scoap::compute(&nl).unwrap();
        let payload = crate::payload::choose_payload(
            &nl,
            &scoap,
            &trigger_nodes,
            crate::PayloadStrategy::MostObservable,
        )
        .unwrap();
        let (infected, trojan) = insert_trojan(&nl, &graph, &clique, &plan, payload, "0").unwrap();
        assert!(infected.validate().is_ok());
        assert_eq!(
            infected.node_count(),
            nl.node_count() + trojan.inserted_gate_count()
        );
        assert_eq!(trojan.trigger_node_count(), 3);
    }

    #[test]
    fn activation_cube_triggers_and_flips_output() {
        let (nl, graph, clique) = setup();
        let rare_values: Vec<bool> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].rare_value)
            .collect();
        let plan = TriggerPlan::synthesize(&rare_values, 4);
        let trigger_nodes: Vec<NodeId> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].node)
            .collect();
        let scoap = htforge_scoap::Scoap::compute(&nl).unwrap();
        let payload = crate::payload::choose_payload(
            &nl,
            &scoap,
            &trigger_nodes,
            crate::PayloadStrategy::MostObservable,
        )
        .unwrap();
        let (infected, trojan) = insert_trojan(&nl, &graph, &clique, &plan, payload, "0").unwrap();

        let mut rng = StdRng::seed_from_u64(9);
        let vector = trojan.activation_cube.fill_random(&mut rng);

        // Golden vs infected on the activation vector.
        let golden_sim = BoundSimulator::new(&nl).unwrap();
        let infected_sim = BoundSimulator::new(&infected).unwrap();
        let ps = PatternSet::from_vectors(nl.inputs().len(), &[vector]);
        let gv = golden_sim.run(&ps);
        let iv = infected_sim.run(&ps);

        // The trigger fires.
        assert!(iv.value(trojan.trigger_output, 0), "trigger must fire");
        // The payload net is flipped downstream of the XOR.
        assert_ne!(
            gv.value(trojan.payload_net, 0),
            iv.value(trojan.payload_gate, 0),
            "payload must be flipped"
        );
    }

    #[test]
    fn non_activating_vectors_leave_outputs_untouched() {
        let (nl, graph, clique) = setup();
        let rare_values: Vec<bool> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].rare_value)
            .collect();
        let plan = TriggerPlan::synthesize(&rare_values, 4);
        let trigger_nodes: Vec<NodeId> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].node)
            .collect();
        let scoap = htforge_scoap::Scoap::compute(&nl).unwrap();
        let payload = crate::payload::choose_payload(
            &nl,
            &scoap,
            &trigger_nodes,
            crate::PayloadStrategy::MostObservable,
        )
        .unwrap();
        let (infected, trojan) = insert_trojan(&nl, &graph, &clique, &plan, payload, "0").unwrap();

        let golden_sim = BoundSimulator::new(&nl).unwrap();
        let infected_sim = BoundSimulator::new(&infected).unwrap();
        let ps = PatternSet::random(nl.inputs().len(), 2_000, 5);
        let gv = golden_sim.run(&ps);
        let iv = infected_sim.run(&ps);

        for p in 0..ps.len() {
            if !iv.value(trojan.trigger_output, p) {
                // Quiescent trojan ⇒ functional equivalence at the POs.
                for (&go, &io) in nl.outputs().iter().zip(infected.outputs()) {
                    assert_eq!(
                        gv.value(go, p),
                        iv.value(io, p),
                        "output mismatch without trigger at pattern {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn check_payload_safe_rejects_upstream() {
        let nl = bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = AND(a, b)\ny = NOT(g)\n",
            "t",
        )
        .unwrap();
        let y = nl.find("y").unwrap();
        let g = nl.find("g").unwrap();
        // Trigger taps y; g feeds y → unsafe.
        assert!(check_payload_safe(&nl, &[y], g).is_err());
        assert!(check_payload_safe(&nl, &[g], y).is_ok());
    }
}
