//! End-to-end orchestration of the insertion pipeline (§III).
//!
//! [`InsertionFramework`] ties together rare-node extraction
//! (Algorithm 1), compatibility-graph construction (Algorithm 2), clique
//! enumeration, trigger synthesis (Fig. 1) and HT-infected netlist
//! generation (Algorithm 3), reporting per-phase wall-clock timings —
//! the quantities of the paper's Tables III and IV.

use std::time::Duration;

use htforge_atpg::PodemConfig;
use htforge_netlist::{netlist::NodeId, Netlist};
use htforge_obs::{DegradationNote, RunBudget};
use htforge_scoap::Scoap;
use htforge_sim::{PatternSet, RareNodeExtractor, RareNodeSet};

use crate::clique::{enumerate_cliques_budgeted, sample_cliques_budgeted, Clique};
use crate::compat::CompatGraph;
use crate::error::InsertionError;
use crate::insert::{insert_trojan_with, TrojanInstance};
use crate::payload::{choose_payload, PayloadKind, PayloadStrategy};
use crate::profile::PhaseProfileStore;
use crate::trigger::TriggerPlan;

/// User-facing configuration of the framework — the paper's inputs:
/// rareness threshold `θ_RN`, vector-set size `|V|`, trigger-node count
/// `q`, instance count `N`, plus engineering knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertionConfig {
    /// Rareness threshold θ_RN as a fraction of the vector count
    /// (paper default: 0.20).
    pub theta: f64,
    /// Random-vector count |V| for rare-node profiling
    /// (paper default: 10 000).
    pub num_vectors: usize,
    /// Trigger nodes per trojan (`q`).
    pub trigger_nodes: usize,
    /// Trojan instances to generate (`N`).
    pub num_instances: usize,
    /// Maximum fan-in of inserted trigger gates (`k`).
    pub max_fanin: usize,
    /// Master seed: drives profiling vectors, clique ordering, and the
    /// random payload strategy.
    pub seed: u64,
    /// PODEM configuration for cube generation.
    pub podem: PodemConfig,
    /// Payload-net selection strategy.
    pub payload: PayloadStrategy,
    /// Payload effect applied when the trigger fires.
    pub payload_kind: PayloadKind,
}

impl Default for InsertionConfig {
    fn default() -> Self {
        InsertionConfig {
            theta: 0.20,
            num_vectors: 10_000,
            trigger_nodes: 8,
            num_instances: 1,
            max_fanin: 4,
            seed: 0x4AC4,
            podem: PodemConfig::default(),
            payload: PayloadStrategy::MostObservable,
            payload_kind: PayloadKind::Flip,
        }
    }
}

/// Wall-clock time spent in each phase of one [`InsertionFramework::run`].
///
/// These are a *view* over the phase spans the framework records on the
/// global [`htforge_obs`] recorder: each field is the duration returned
/// by the corresponding span guard, so the struct stays populated even
/// when the recorder is disabled (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Scan-cut + levelization.
    pub preprocess: Duration,
    /// Algorithm 1 (simulation + classification).
    pub rare_extraction: Duration,
    /// PODEM cube generation + pairwise compatibility (Algorithm 2).
    pub compat_graph: Duration,
    /// Clique enumeration.
    pub clique_enumeration: Duration,
    /// Trigger synthesis + Algorithm 3 for all instances.
    pub insertion: Duration,
    /// Structural validation of every infected netlist.
    pub validation: Duration,
}

impl PhaseTimings {
    /// Total pipeline time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.preprocess
            + self.rare_extraction
            + self.compat_graph
            + self.clique_enumeration
            + self.insertion
            + self.validation
    }
}

/// One generated HT-infected design.
#[derive(Debug, Clone)]
pub struct InfectedDesign {
    /// The infected netlist (host + trigger tree + payload XOR).
    pub netlist: Netlist,
    /// Metadata about the inserted trojan.
    pub trojan: TrojanInstance,
}

/// Everything produced by one framework run.
#[derive(Debug, Clone)]
pub struct InsertionOutcome {
    /// The infected designs, one per clique used (≤ `N`).
    pub infected: Vec<InfectedDesign>,
    /// The rare-node profile (Algorithm 1 output).
    pub rare_nodes: RareNodeSet,
    /// Vertices/edges of the compatibility graph and cliques found.
    pub graph_stats: GraphStats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Degradation decisions taken under budget pressure (empty for a
    /// run that completed in full — see `DESIGN.md` §9).
    pub degradations: Vec<DegradationNote>,
}

/// Summary statistics of the compatibility graph and clique search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Compatibility-graph vertex count (rare events with cubes).
    pub vertices: usize,
    /// Rare events dropped (no PODEM cube).
    pub dropped: usize,
    /// Edge count.
    pub edges: usize,
    /// Cliques of size `q` found (≤ requested `N`).
    pub cliques: usize,
}

/// The compatibility-graph-assisted insertion framework.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug, Clone)]
pub struct InsertionFramework {
    config: InsertionConfig,
}

impl InsertionFramework {
    /// Creates a framework with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `[0, 1]`, `trigger_nodes == 0`, or
    /// `max_fanin < 2`.
    #[must_use]
    pub fn new(config: InsertionConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.theta),
            "theta must be in [0, 1]"
        );
        assert!(config.trigger_nodes > 0, "need at least one trigger node");
        assert!(config.max_fanin >= 2, "trigger fan-in must be at least 2");
        InsertionFramework { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &InsertionConfig {
        &self.config
    }

    /// Runs the full pipeline on `nl` (combinational or sequential; DFFs
    /// are scan-cut internally, and trojans are inserted into the
    /// *original* netlist, whose node ids the analysis shares).
    ///
    /// # Errors
    ///
    /// * [`InsertionError::NotEnoughRareNodes`] — fewer usable rare nodes
    ///   than `trigger_nodes`,
    /// * [`InsertionError::NoCliques`] — the compatibility graph has no
    ///   clique of size `trigger_nodes`,
    /// * [`InsertionError::NoPayloadNet`] — no acyclicity-safe payload,
    /// * [`InsertionError::Netlist`] — structural failures.
    pub fn run(&self, nl: &Netlist) -> Result<InsertionOutcome, InsertionError> {
        self.run_with_budget(nl, &RunBudget::unlimited())
    }

    /// [`InsertionFramework::run`] under a [`RunBudget`] — the
    /// resilience entry point (see `DESIGN.md` §9).
    ///
    /// Phases receive sub-budgets derived from the time remaining and
    /// degrade instead of failing where partial results are possible:
    /// rare-node profiling truncates its vector set, compatibility-graph
    /// construction skips unattempted faults and matrix rows, exact
    /// clique enumeration falls back to the greedy heuristic, and
    /// `num_instances = N` degrades to "as many as fit". Every shortcut
    /// is recorded in [`InsertionOutcome::degradations`]. The run only
    /// *errors* on budget grounds when a phase produced nothing usable
    /// ([`InsertionError::Timeout`]) or the budget's token was cancelled
    /// ([`InsertionError::Cancelled`]).
    ///
    /// With an unlimited budget this is exactly [`InsertionFramework::run`]:
    /// same results, same phase structure, one extra atomic load per
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// The variants listed for [`InsertionFramework::run`], plus
    /// [`InsertionError::Timeout`] and [`InsertionError::Cancelled`].
    pub fn run_with_budget(
        &self,
        nl: &Netlist,
        budget: &RunBudget,
    ) -> Result<InsertionOutcome, InsertionError> {
        let cfg = &self.config;
        let mut timings = PhaseTimings::default();
        let mut degradations: Vec<DegradationNote> = Vec::new();
        let pipeline_span = htforge_obs::span("insertion_pipeline");
        budget
            .check()
            .map_err(|_| budget_error(budget, "preprocess"))?;
        // Staged split over rare / compat / clique / insertion. Weights
        // come from the per-circuit-class profile store: an unprofiled
        // class gets the historical static chain (25% rare, 70% of the
        // remainder compat, 60% of that remainder clique); once this
        // class has completed runs, the split tracks its measured phase
        // costs. Either way a phase finishing early donates its slack
        // to every later phase (each stage takes w_i / Σ_{j≥i} w_j of
        // the time remaining at the moment it starts).
        let stage_weights = PhaseProfileStore::global().stage_weights(nl.name());
        let mut stages = budget.staged(&stage_weights);

        // Phase 0: combinational model.
        let t0 = htforge_obs::span("preprocess");
        let comb = if nl.dffs().is_empty() {
            nl.clone()
        } else {
            nl.scan_cut()
        };
        let scoap = Scoap::compute(nl)?;
        timings.preprocess = t0.finish();

        // Phase 1: rare nodes (Algorithm 1); the profile truncates when
        // its sub-budget runs out.
        let t1 = htforge_obs::span("rare_extraction");
        let patterns = PatternSet::random(comb.inputs().len(), cfg.num_vectors, cfg.seed);
        let (rare, rare_note) = RareNodeExtractor::new(cfg.theta).extract_budgeted(
            &comb,
            &patterns,
            &stages.next_stage(),
        )?;
        timings.rare_extraction = t1.finish();
        htforge_obs::counter("rare.nodes").add(rare.len() as u64);
        let rare_truncated = rare_note.is_some();
        degradations.extend(rare_note);
        if rare.len() < cfg.trigger_nodes {
            // An untruncated profile with too few rare nodes is a
            // property of the circuit; a truncated one is a timeout.
            return Err(if rare_truncated {
                budget_error(budget, "rare_extraction")
            } else {
                InsertionError::NotEnoughRareNodes {
                    found: rare.len(),
                    needed: cfg.trigger_nodes,
                }
            });
        }

        // Phase 2: compatibility graph (Algorithm 2); skips faults and
        // matrix rows when its sub-budget runs out.
        let t2 = htforge_obs::span("compat_graph");
        let (graph, compat_notes) =
            CompatGraph::build_budgeted(&comb, &rare, cfg.podem, &stages.next_stage())?;
        timings.compat_graph = t2.finish();
        let compat_degraded = !compat_notes.is_empty();
        degradations.extend(compat_notes);
        if graph.len() < cfg.trigger_nodes {
            return Err(if compat_degraded {
                budget_error(budget, "compat_graph")
            } else {
                InsertionError::NotEnoughRareNodes {
                    found: graph.len(),
                    needed: cfg.trigger_nodes,
                }
            });
        }

        // Phase 3: clique selection. Small trigger counts use exhaustive
        // enumeration (cheap and maximally diverse); large ones use
        // greedy sampling, because exact search near the graph's clique
        // number degenerates into exponential nonexistence proofs. On a
        // spent sub-budget the exact search degrades to the greedy
        // sampler for the remaining instances (the degradation ladder).
        let t3 = htforge_obs::span("clique_enumeration");
        let clique_budget = stages.next_stage();
        let order_seed = cfg.seed ^ 0x5EED;
        let mut cliques;
        if cfg.trigger_nodes <= 8 {
            let (exact, cut_short) = enumerate_cliques_budgeted(
                &graph,
                cfg.trigger_nodes,
                cfg.num_instances,
                order_seed,
                &clique_budget,
            );
            cliques = exact;
            if cut_short && cliques.len() < cfg.num_instances {
                let missing = cfg.num_instances - cliques.len();
                let (sampled, _) = sample_cliques_budgeted(
                    &graph,
                    cfg.trigger_nodes,
                    cfg.num_instances,
                    order_seed,
                    &budget.sub(0.50),
                );
                let mut seen: std::collections::HashSet<Vec<usize>> =
                    cliques.iter().map(|c| sorted_members(&c.members)).collect();
                cliques.extend(
                    sampled
                        .into_iter()
                        .filter(|c| seen.insert(sorted_members(&c.members)))
                        .take(missing),
                );
                degradations.push(DegradationNote::new(
                    "clique_enumeration",
                    "greedy_fallback",
                    format!(
                        "exact enumeration cut short by the budget; \
                         greedy sampling filled {} of {} instances",
                        cliques.len(),
                        cfg.num_instances
                    ),
                ));
            }
        } else {
            let (sampled, cut_short) = sample_cliques_budgeted(
                &graph,
                cfg.trigger_nodes,
                cfg.num_instances,
                order_seed,
                &clique_budget,
            );
            cliques = sampled;
            if cut_short {
                degradations.push(DegradationNote::new(
                    "clique_enumeration",
                    "truncated_sampling",
                    format!(
                        "greedy sampling stopped at {} of {} instances",
                        cliques.len(),
                        cfg.num_instances
                    ),
                ));
            }
        }
        timings.clique_enumeration = t3.finish();
        if cliques.is_empty() {
            // "No cliques" is only a statement about the circuit when
            // nothing upstream was cut short; a truncated profile or
            // matrix makes an empty result a budget artifact.
            return Err(if budget.check().is_err() || !degradations.is_empty() {
                budget_error(budget, "clique_enumeration")
            } else {
                InsertionError::NoCliques {
                    size: cfg.trigger_nodes,
                }
            });
        }

        // Phase 4: trigger synthesis + insertion (Algorithm 3). On a
        // spent budget, `num_instances = N` degrades to "as many as
        // fit".
        let t4 = htforge_obs::span("insertion");
        // The last stage inherits the entire remainder (its weight is
        // the tail of the sequence), so this equals the parent budget.
        let insertion_budget = stages.next_stage();
        let mut infected = Vec::with_capacity(cliques.len());
        let mut stopped_at = None;
        for (i, clique) in cliques.iter().enumerate() {
            if insertion_budget.check().is_err() {
                stopped_at = Some(i);
                break;
            }
            htforge_obs::faultpoint!("insert.instance");
            match self.insert_one(nl, &graph, clique, &scoap, i) {
                Ok(design) => infected.push(design),
                // A clique without a safe payload is skipped, not fatal —
                // unless *no* clique works.
                Err(InsertionError::NoPayloadNet) => continue,
                Err(e) => return Err(e),
            }
        }
        timings.insertion = t4.finish();
        htforge_obs::counter("insertion.instances").add(infected.len() as u64);
        if let Some(done) = stopped_at {
            degradations.push(DegradationNote::new(
                "insertion",
                "fewer_instances",
                format!("budget spent after {done} of {} cliques", cliques.len()),
            ));
        }
        if infected.is_empty() {
            return Err(if stopped_at.is_some() {
                budget_error(budget, "insertion")
            } else {
                InsertionError::NoPayloadNet
            });
        }

        // Phase 5: structural + functional validation of every emitted
        // design. Structure was previously left to callers (and tests);
        // making it a pipeline phase means a malformed netlist can never
        // leave the framework silently, and gives the timing tables a
        // `validation` column. The functional check re-simulates each
        // design under its activation cube (incrementally — only the
        // care-bit cones move off the all-zero base) and asserts the
        // trigger fires and the payload gate shows the configured
        // effect. Validation is never skipped under budget pressure: an
        // unvalidated partial result is not a result.
        let t5 = htforge_obs::span("validation");
        htforge_obs::faultpoint!("framework.validate");
        for (i, design) in infected.iter().enumerate() {
            design.netlist.validate()?;
            validate_functional(design, i)?;
        }
        timings.validation = t5.finish();

        pipeline_span.finish();
        if !degradations.is_empty() {
            htforge_obs::counter("framework.degradations").add(degradations.len() as u64);
        }
        let graph_stats = GraphStats {
            vertices: graph.len(),
            dropped: graph.dropped(),
            edges: graph.edge_count(),
            cliques: cliques.len(),
        };
        // Feed the measured phase costs back into the profile store so
        // the next run of this circuit class splits its budget by what
        // the class actually costs instead of the static default.
        PhaseProfileStore::global().record(nl.name(), &timings);
        Ok(InsertionOutcome {
            infected,
            rare_nodes: rare,
            graph_stats,
            timings,
            degradations,
        })
    }

    /// Like [`InsertionFramework::run`], but inserts all `N` trojans into
    /// **one** netlist (the paper's "single or multiple HT instances"
    /// configuration). Instances are added sequentially; an instance
    /// whose payload would create a cycle with previously inserted
    /// trojan logic is skipped.
    ///
    /// # Errors
    ///
    /// Same as [`InsertionFramework::run`]; additionally returns
    /// [`InsertionError::NoPayloadNet`] if *no* instance can be placed.
    pub fn run_combined(
        &self,
        nl: &Netlist,
    ) -> Result<(Netlist, Vec<TrojanInstance>), InsertionError> {
        self.run_combined_with_budget(nl, &RunBudget::unlimited())
            .map(|(combined, instances, _)| (combined, instances))
    }

    /// [`InsertionFramework::run_combined`] under a [`RunBudget`]; the
    /// third tuple element reports any degradation decisions (see
    /// [`InsertionFramework::run_with_budget`]).
    ///
    /// # Errors
    ///
    /// As [`InsertionFramework::run_with_budget`].
    pub fn run_combined_with_budget(
        &self,
        nl: &Netlist,
        budget: &RunBudget,
    ) -> Result<(Netlist, Vec<TrojanInstance>, Vec<DegradationNote>), InsertionError> {
        let outcome = self.run_with_budget(nl, budget)?;
        let mut combined = nl.clone();
        combined.set_name(format!("{}_multi", nl.name()));
        let mut instances = Vec::new();
        for (i, design) in outcome.infected.iter().enumerate() {
            let trigger_nodes: Vec<NodeId> = design
                .trojan
                .trigger_inputs
                .iter()
                .map(|&(n, _)| n)
                .collect();
            // Re-check payload safety against the *evolving* netlist: a
            // previous instance may have made this victim unsafe.
            let candidates = crate::payload::safe_payload_candidates(&combined, &trigger_nodes);
            let payload = if candidates.contains(&design.trojan.payload_net) {
                design.trojan.payload_net
            } else {
                match candidates.first() {
                    Some(&p) => p,
                    None => continue,
                }
            };
            let rare_values: Vec<bool> = design
                .trojan
                .trigger_inputs
                .iter()
                .map(|&(_, v)| v)
                .collect();
            let plan = TriggerPlan::synthesize(&rare_values, self.config.max_fanin);
            let (next, trojan) = insert_trojan_with(
                &combined,
                &design.trojan.trigger_inputs,
                &plan,
                payload,
                self.config.payload_kind,
                &format!("m{i}"),
                design.trojan.activation_cube.clone(),
            )?;
            combined = next;
            instances.push(trojan);
        }
        if instances.is_empty() {
            return Err(InsertionError::NoPayloadNet);
        }
        let v = htforge_obs::span("validation");
        combined.validate()?;
        v.finish();
        Ok((combined, instances, outcome.degradations))
    }

    fn insert_one(
        &self,
        nl: &Netlist,
        graph: &CompatGraph,
        clique: &Clique,
        scoap: &Scoap,
        index: usize,
    ) -> Result<InfectedDesign, InsertionError> {
        let rare_values: Vec<bool> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].rare_value)
            .collect();
        let plan = TriggerPlan::synthesize(&rare_values, self.config.max_fanin);
        let trigger_nodes: Vec<NodeId> = clique
            .members
            .iter()
            .map(|&m| graph.events()[m].node)
            .collect();
        let strategy = match self.config.payload {
            PayloadStrategy::Random(s) => PayloadStrategy::Random(s.wrapping_add(index as u64)),
            other => other,
        };
        let payload = choose_payload(nl, scoap, &trigger_nodes, strategy)
            .ok_or(InsertionError::NoPayloadNet)?;
        let leaves: Vec<(NodeId, bool)> = clique
            .members
            .iter()
            .map(|&m| {
                let e = &graph.events()[m];
                (e.node, e.rare_value)
            })
            .collect();
        let (netlist, trojan) = insert_trojan_with(
            nl,
            &leaves,
            &plan,
            payload,
            self.config.payload_kind,
            &index.to_string(),
            clique.activation_cube.clone(),
        )?;
        Ok(InfectedDesign { netlist, trojan })
    }
}

/// Functional validation of one emitted design: under its activation
/// cube the trigger must fire, and the payload gate must show the
/// configured effect (`Flip` inverts the victim net, `ForceZero`/
/// `ForceOne` pin it). The check runs on an incremental re-simulation
/// session over an all-zero base, so only the cube's care-bit cones are
/// evaluated.
fn validate_functional(design: &InfectedDesign, index: usize) -> Result<(), InsertionError> {
    let cut = if design.netlist.dffs().is_empty() {
        design.netlist.clone()
    } else {
        design.netlist.scan_cut()
    };
    let trojan = &design.trojan;
    let vector = trojan.activation_cube.fill_with(false);
    assert_eq!(
        vector.len(),
        cut.inputs().len(),
        "activation cube width must match the scan-cut input count"
    );
    let prog = htforge_sim::SimProgram::compile(&cut)?;
    let mut session = prog.delta_sim(PatternSet::zeros(vector.len(), 1));
    for (i, &bit) in vector.iter().enumerate() {
        if bit {
            session.set_input(i, 0, true);
        }
    }
    session.propagate();
    if !session.value(trojan.trigger_output, 0) {
        return Err(InsertionError::Internal(format!(
            "activation cube fails to fire the trigger of instance {index}"
        )));
    }
    let expected = match trojan.payload_kind {
        PayloadKind::Flip => !session.value(trojan.payload_net, 0),
        PayloadKind::ForceZero => false,
        PayloadKind::ForceOne => true,
    };
    if session.value(trojan.payload_gate, 0) != expected {
        return Err(InsertionError::Internal(format!(
            "payload gate of instance {index} does not show the {:?} effect",
            trojan.payload_kind
        )));
    }
    Ok(())
}

/// The error a phase reports when its budget ran out and it produced
/// nothing usable. Cancellation wins over the deadline: a cancelled run
/// is `Cancelled` even if the deadline also passed.
fn budget_error(budget: &RunBudget, phase: &str) -> InsertionError {
    if budget.cancelled() {
        InsertionError::Cancelled
    } else {
        InsertionError::Timeout {
            phase: phase.to_string(),
        }
    }
}

/// Canonical member list for clique dedup across the exact/greedy
/// fallback boundary.
fn sorted_members(members: &[usize]) -> Vec<usize> {
    let mut m = members.to_vec();
    m.sort_unstable();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_sim::simulator::BoundSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config(q: usize, n: usize) -> InsertionConfig {
        InsertionConfig {
            theta: 0.20,
            num_vectors: 2_000,
            trigger_nodes: q,
            num_instances: n,
            seed: 42,
            podem: PodemConfig::justify(),
            ..InsertionConfig::default()
        }
    }

    #[test]
    fn c17_insertion_works_end_to_end() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 3)
        };
        let outcome = InsertionFramework::new(cfg).run(&nl).unwrap();
        assert!(!outcome.infected.is_empty());
        for design in &outcome.infected {
            assert!(design.netlist.validate().is_ok());
            assert_eq!(design.trojan.trigger_node_count(), 2);
        }
        assert!(outcome.graph_stats.vertices >= 2);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 3)
        };
        let fw = InsertionFramework::new(cfg);
        let plain = fw.run(&nl).unwrap();
        let budgeted = fw
            .run_with_budget(&nl, &RunBudget::with_deadline(Duration::from_secs(600)))
            .unwrap();
        assert!(budgeted.degradations.is_empty());
        assert_eq!(budgeted.infected.len(), plain.infected.len());
        assert_eq!(budgeted.rare_nodes.len(), plain.rare_nodes.len());
        assert_eq!(budgeted.graph_stats.edges, plain.graph_stats.edges);
        for (a, b) in plain.infected.iter().zip(budgeted.infected.iter()) {
            assert_eq!(a.trojan.trigger_inputs, b.trojan.trigger_inputs);
        }
    }

    #[test]
    fn spent_budget_yields_timeout_with_phase() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 3)
        };
        let err = InsertionFramework::new(cfg)
            .run_with_budget(&nl, &RunBudget::with_deadline(Duration::ZERO))
            .unwrap_err();
        match err {
            InsertionError::Timeout { phase } => {
                assert!(!phase.is_empty(), "timeout must name the phase")
            }
            other => panic!("expected Timeout, got {other}"),
        }
    }

    #[test]
    fn cancelled_budget_yields_cancelled() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 3)
        };
        let budget = RunBudget::unlimited();
        budget.cancel_token().cancel();
        let err = InsertionFramework::new(cfg)
            .run_with_budget(&nl, &budget)
            .unwrap_err();
        assert!(matches!(err, InsertionError::Cancelled), "got {err}");
    }

    #[test]
    fn multiple_instances_are_distinct() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 4)
        };
        let outcome = InsertionFramework::new(cfg).run(&nl).unwrap();
        let mut trigger_sets: Vec<Vec<NodeId>> = outcome
            .infected
            .iter()
            .map(|d| {
                let mut v: Vec<NodeId> = d.trojan.trigger_inputs.iter().map(|&(n, _)| n).collect();
                v.sort_unstable();
                v
            })
            .collect();
        trigger_sets.sort();
        trigger_sets.dedup();
        assert_eq!(
            trigger_sets.len(),
            outcome.infected.len(),
            "each instance must use a distinct trigger set"
        );
    }

    #[test]
    fn activation_cube_fires_every_instance() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 3)
        };
        let outcome = InsertionFramework::new(cfg).run(&nl).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for design in &outcome.infected {
            let sim = BoundSimulator::new(&design.netlist).unwrap();
            let v = design.trojan.activation_cube.fill_random(&mut rng);
            let ps = PatternSet::from_vectors(nl.inputs().len(), &[v]);
            let vals = sim.run(&ps);
            assert!(
                vals.value(design.trojan.trigger_output, 0),
                "activation cube must fire the trigger"
            );
        }
    }

    #[test]
    fn too_many_trigger_nodes_error() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(100, 1)
        };
        match InsertionFramework::new(cfg).run(&nl) {
            Err(InsertionError::NotEnoughRareNodes { needed: 100, .. }) => {}
            other => panic!("expected NotEnoughRareNodes, got {other:?}"),
        }
    }

    #[test]
    fn timings_are_populated() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 1)
        };
        let outcome = InsertionFramework::new(cfg).run(&nl).unwrap();
        assert!(outcome.timings.total() > Duration::ZERO);
    }

    #[test]
    fn sequential_host_is_supported() {
        let profile = htforge_circuits::synth::CircuitProfile {
            name: "seq_mini".into(),
            inputs: 12,
            outputs: 4,
            gates: 220,
            dffs: 12,
            seed: 31,
        };
        let nl = htforge_circuits::synth::generate(&profile);
        let cfg = InsertionConfig {
            theta: 0.20,
            num_vectors: 1_000,
            trigger_nodes: 4,
            num_instances: 2,
            seed: 7,
            podem: PodemConfig::justify(),
            ..InsertionConfig::default()
        };
        let outcome = InsertionFramework::new(cfg).run(&nl).unwrap();
        assert!(!outcome.infected.is_empty());
        for design in &outcome.infected {
            assert!(design.netlist.validate().is_ok());
            // DFF count unchanged: the trojan is purely combinational.
            assert_eq!(design.netlist.dffs().len(), nl.dffs().len());
        }
    }

    #[test]
    fn combined_insertion_places_multiple_trojans() {
        let nl = htforge_circuits::load("c17").unwrap();
        let cfg = InsertionConfig {
            theta: 0.30,
            ..quick_config(2, 3)
        };
        let (combined, instances) = InsertionFramework::new(cfg).run_combined(&nl).unwrap();
        assert!(combined.validate().is_ok());
        assert!(!instances.is_empty());
        let added: usize = instances.iter().map(|t| t.inserted_gate_count()).sum();
        assert_eq!(combined.node_count(), nl.node_count() + added);
        // Every instance's trigger fires under its own cube.
        for t in &instances {
            let sim = BoundSimulator::new(&combined).unwrap();
            let v = t.activation_cube.fill_with(false);
            let ps = PatternSet::from_vectors(nl.inputs().len(), &[v]);
            assert!(sim.run(&ps).value(t.trigger_output, 0));
        }
    }

    #[test]
    fn force_payloads_have_expected_polarity() {
        for (kind, expect_when_triggered) in [
            (PayloadKind::ForceZero, false),
            (PayloadKind::ForceOne, true),
        ] {
            let nl = htforge_circuits::load("c17").unwrap();
            let cfg = InsertionConfig {
                theta: 0.30,
                payload_kind: kind,
                ..quick_config(2, 1)
            };
            let outcome = InsertionFramework::new(cfg).run(&nl).unwrap();
            let design = &outcome.infected[0];
            assert_eq!(design.trojan.payload_kind, kind);
            let sim = BoundSimulator::new(&design.netlist).unwrap();
            let v = design.trojan.activation_cube.fill_with(false);
            let ps = PatternSet::from_vectors(nl.inputs().len(), &[v]);
            let vals = sim.run(&ps);
            assert!(vals.value(design.trojan.trigger_output, 0));
            assert_eq!(
                vals.value(design.trojan.payload_gate, 0),
                expect_when_triggered,
                "{kind:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_panics() {
        let _ = InsertionFramework::new(InsertionConfig {
            theta: 2.0,
            ..InsertionConfig::default()
        });
    }
}
