//! Error type for the insertion framework.

use std::fmt;

use htforge_netlist::NetlistError;

/// Errors produced by the insertion pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InsertionError {
    /// Fewer usable rare nodes than requested trigger nodes.
    NotEnoughRareNodes {
        /// Rare nodes with a usable test cube.
        found: usize,
        /// Trigger nodes requested (`q`).
        needed: usize,
    },
    /// The compatibility graph contains no clique of the requested size.
    NoCliques {
        /// Requested clique size (`q`).
        size: usize,
    },
    /// No payload net satisfies the acyclicity constraint.
    NoPayloadNet,
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
}

impl fmt::Display for InsertionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertionError::NotEnoughRareNodes { found, needed } => write!(
                f,
                "only {found} rare nodes with test cubes, but {needed} trigger nodes requested"
            ),
            InsertionError::NoCliques { size } => {
                write!(f, "compatibility graph has no clique of size {size}")
            }
            InsertionError::NoPayloadNet => {
                write!(f, "no payload net satisfies the acyclicity constraint")
            }
            InsertionError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for InsertionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InsertionError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for InsertionError {
    fn from(e: NetlistError) -> Self {
        InsertionError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = InsertionError::NotEnoughRareNodes {
            found: 3,
            needed: 10,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("10"));
        assert!(InsertionError::NoCliques { size: 4 }
            .to_string()
            .contains("4"));
    }

    #[test]
    fn netlist_error_is_source() {
        use std::error::Error;
        let e = InsertionError::from(NetlistError::InvalidNodeId(5));
        assert!(e.source().is_some());
    }
}
