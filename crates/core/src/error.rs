//! Error type for the insertion framework.

use std::fmt;

use htforge_netlist::NetlistError;

/// Errors produced by the insertion pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InsertionError {
    /// Fewer usable rare nodes than requested trigger nodes.
    NotEnoughRareNodes {
        /// Rare nodes with a usable test cube.
        found: usize,
        /// Trigger nodes requested (`q`).
        needed: usize,
    },
    /// The compatibility graph contains no clique of the requested size.
    NoCliques {
        /// Requested clique size (`q`).
        size: usize,
    },
    /// No payload net satisfies the acyclicity constraint.
    NoPayloadNet,
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
    /// The run budget's wall-clock deadline expired before the named
    /// phase could produce any usable result. (When partial results
    /// exist, the run returns `Ok` with `DegradationNote`s instead.)
    Timeout {
        /// Pipeline phase that ran out of budget.
        phase: String,
    },
    /// The run's cancellation token was triggered.
    Cancelled,
    /// An isolated internal failure (typically a captured panic from a
    /// campaign circuit), recorded so the surrounding campaign can
    /// continue.
    Internal(String),
}

impl fmt::Display for InsertionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertionError::NotEnoughRareNodes { found, needed } => write!(
                f,
                "only {found} rare nodes with test cubes, but {needed} trigger nodes requested"
            ),
            InsertionError::NoCliques { size } => {
                write!(f, "compatibility graph has no clique of size {size}")
            }
            InsertionError::NoPayloadNet => {
                write!(f, "no payload net satisfies the acyclicity constraint")
            }
            InsertionError::Netlist(e) => write!(f, "netlist error: {e}"),
            InsertionError::Timeout { phase } => {
                write!(f, "run budget exhausted during `{phase}`")
            }
            InsertionError::Cancelled => write!(f, "run cancelled"),
            InsertionError::Internal(msg) => write!(f, "internal failure: {msg}"),
        }
    }
}

impl From<htforge_obs::BudgetExceeded> for InsertionError {
    /// Maps a budget verdict with no phase context; phases that know
    /// where they stopped should construct [`InsertionError::Timeout`]
    /// directly.
    fn from(e: htforge_obs::BudgetExceeded) -> Self {
        match e {
            htforge_obs::BudgetExceeded::Deadline => InsertionError::Timeout {
                phase: "unknown".to_owned(),
            },
            htforge_obs::BudgetExceeded::Cancelled => InsertionError::Cancelled,
        }
    }
}

impl std::error::Error for InsertionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InsertionError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for InsertionError {
    fn from(e: NetlistError) -> Self {
        InsertionError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = InsertionError::NotEnoughRareNodes {
            found: 3,
            needed: 10,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("10"));
        assert!(InsertionError::NoCliques { size: 4 }
            .to_string()
            .contains("4"));
    }

    #[test]
    fn resilience_variants_display() {
        let e = InsertionError::Timeout {
            phase: "compat_graph".to_owned(),
        };
        assert!(e.to_string().contains("compat_graph"));
        assert_eq!(InsertionError::Cancelled.to_string(), "run cancelled");
        assert!(InsertionError::Internal("panic in c432: boom".to_owned())
            .to_string()
            .contains("boom"));
        assert_eq!(
            InsertionError::from(htforge_obs::BudgetExceeded::Cancelled),
            InsertionError::Cancelled
        );
    }

    #[test]
    fn netlist_error_is_source() {
        use std::error::Error;
        let e = InsertionError::from(NetlistError::InvalidNodeId(5));
        assert!(e.source().is_some());
    }
}
