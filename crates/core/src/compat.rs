//! The compatibility graph — the paper's **Algorithm 2**
//! (`Gen_compatibility`).
//!
//! For each rare event (rare node, rare value), PODEM produces a test
//! cube; vertices of the compatibility graph are the rare events and an
//! edge connects two events whose cubes have no conflicting care bits.
//! Complete subgraphs of this graph are sets of rare nodes that a single
//! merged vector drives to their rare values simultaneously — the trojan
//! insertion points.

use htforge_atpg::{Cube, Fault, Podem, PodemConfig, PodemMode, TestResult};
use htforge_netlist::{netlist::NodeId, Netlist, NetlistError};
use htforge_obs::{BudgetTicker, DegradationNote, RunBudget};
use htforge_sim::RareNodeSet;

/// Per-thread cube generator: a detect-mode engine with a justify-mode
/// fallback (a justification cube is all a trigger needs).
struct CubeWorker {
    podem: Podem,
    justify: Option<Podem>,
    base_seed: Option<u64>,
}

impl CubeWorker {
    fn new(nl: &Netlist, config: PodemConfig) -> Result<Self, NetlistError> {
        let justify = if config.mode == PodemMode::Detect {
            Some(Podem::new(
                nl,
                PodemConfig {
                    mode: PodemMode::Justify,
                    ..config
                },
            )?)
        } else {
            None
        };
        Ok(CubeWorker {
            podem: Podem::new(nl, config)?,
            justify,
            base_seed: config.random_seed,
        })
    }

    /// Attaches the run budget to both engines so in-flight searches
    /// stop at the deadline instead of only between faults.
    fn set_run_budget(&mut self, budget: &RunBudget) {
        self.podem.set_run_budget(budget.clone());
        if let Some(j) = self.justify.as_mut() {
            j.set_run_budget(budget.clone());
        }
    }

    fn cube_for(
        &mut self,
        index: usize,
        node: htforge_netlist::netlist::NodeId,
        rare_value: bool,
    ) -> Option<Cube> {
        htforge_obs::faultpoint!("compat.cube");
        if let Some(seed) = self.base_seed {
            // Deterministic per fault, independent of work partitioning.
            let s = seed.wrapping_add(index as u64);
            self.podem.reseed(s);
            if let Some(j) = self.justify.as_mut() {
                j.reseed(s);
            }
        }
        let fault = Fault::for_rare_event(node, rare_value);
        match self.podem.generate(fault) {
            TestResult::Test(cube) => Some(cube),
            TestResult::Untestable | TestResult::Aborted | TestResult::TimedOut => {
                self.justify.as_mut().and_then(|p| match p.generate(fault) {
                    TestResult::Test(cube) => Some(cube),
                    _ => None,
                })
            }
        }
    }
}

/// One vertex of the compatibility graph: a rare node, its rare value,
/// and the PODEM cube that justifies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RareEvent {
    /// The rare node.
    pub node: NodeId,
    /// Its rare value.
    pub rare_value: bool,
    /// A test cube driving `node` to `rare_value`.
    pub cube: Cube,
}

/// The compatibility graph over rare events.
///
/// Adjacency is stored as a bit matrix; with a few thousand rare nodes the
/// pairwise compatibility check of Algorithm 2 stays in the millisecond
/// range, which is where the framework's Table III speedups come from.
#[derive(Debug, Clone)]
pub struct CompatGraph {
    events: Vec<RareEvent>,
    /// Row-major bit matrix: bit `j` of row `i` ⇔ events i,j compatible.
    adj: Vec<Vec<u64>>,
    /// Rare events PODEM could not produce a cube for (untestable or
    /// aborted) — excluded from the graph but reported for diagnostics.
    dropped: usize,
}

impl CompatGraph {
    /// Builds the compatibility graph for `rare` on `nl` (Algorithm 2).
    ///
    /// `nl` must be combinational or scan-cut. The PODEM mode of
    /// `podem_config` is honored; on `Detect`-mode abort the engine
    /// retries the fault in `Justify` mode (a justification cube is all a
    /// trigger needs), and drops the event only if that fails too.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from engine construction (cyclic or
    /// sequential netlists).
    pub fn build(
        nl: &Netlist,
        rare: &RareNodeSet,
        podem_config: PodemConfig,
    ) -> Result<Self, NetlistError> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::build_with_threads(nl, rare, podem_config, threads)
    }

    /// [`CompatGraph::build`] with an explicit worker count. Results are
    /// identical for every `threads` value (per-fault PODEM randomization
    /// is reseeded deterministically per fault).
    ///
    /// # Errors
    ///
    /// See [`CompatGraph::build`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn build_with_threads(
        nl: &Netlist,
        rare: &RareNodeSet,
        podem_config: PodemConfig,
        threads: usize,
    ) -> Result<Self, NetlistError> {
        Self::build_inner(nl, rare, podem_config, threads, &RunBudget::unlimited())
            .map(|(graph, _)| graph)
    }

    /// Budget-aware [`CompatGraph::build`]: cube generation stops
    /// attempting new faults once the budget is spent (in-flight PODEM
    /// searches are interrupted via the shared budget), and the
    /// pairwise matrix falls back to a budget-checked triangular fill
    /// that may leave later row pairs unconnected. The graph stays
    /// internally consistent (symmetric adjacency; missing edges are
    /// merely conservative) and every shortcut taken is reported as a
    /// [`DegradationNote`].
    ///
    /// # Errors
    ///
    /// See [`CompatGraph::build`].
    pub fn build_budgeted(
        nl: &Netlist,
        rare: &RareNodeSet,
        podem_config: PodemConfig,
        budget: &RunBudget,
    ) -> Result<(Self, Vec<DegradationNote>), NetlistError> {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::build_inner(nl, rare, podem_config, threads, budget)
    }

    fn build_inner(
        nl: &Netlist,
        rare: &RareNodeSet,
        podem_config: PodemConfig,
        threads: usize,
        budget: &RunBudget,
    ) -> Result<(Self, Vec<DegradationNote>), NetlistError> {
        assert!(threads > 0, "need at least one worker thread");
        let rare_list: Vec<(htforge_netlist::netlist::NodeId, bool)> =
            rare.iter().map(|r| (r.node, r.rare_value)).collect();
        let mut notes = Vec::new();

        // Phase A: one cube per rare event (parallel over faults). Each
        // worker checks the budget before starting a fault; expired
        // budgets skip the remaining faults (a skip is distinguishable
        // from a PODEM drop so it can be reported).
        let podem_span = htforge_obs::span("podem");
        let chunk_size = rare_list.len().div_ceil(threads).max(1);
        let mut cube_results: Vec<Option<Cube>> = Vec::new();
        let mut skipped = 0usize;
        if threads == 1 || rare_list.len() <= 1 {
            let mut worker = CubeWorker::new(nl, podem_config)?;
            worker.set_run_budget(budget);
            for (i, &(node, value)) in rare_list.iter().enumerate() {
                if budget.check().is_err() {
                    skipped += 1;
                    cube_results.push(None);
                } else {
                    cube_results.push(worker.cube_for(i, node, value));
                }
            }
        } else {
            // Engine construction is fallible; build them up front so
            // errors surface before any thread spawns.
            let mut workers: Vec<CubeWorker> = (0..threads.min(rare_list.len()))
                .map(|_| {
                    CubeWorker::new(nl, podem_config).map(|mut w| {
                        w.set_run_budget(budget);
                        w
                    })
                })
                .collect::<Result<_, _>>()?;
            let chunks: Vec<(usize, &[(htforge_netlist::netlist::NodeId, bool)])> = rare_list
                .chunks(chunk_size)
                .enumerate()
                .map(|(k, c)| (k * chunk_size, c))
                .collect();
            let results: Vec<(Vec<Option<Cube>>, usize)> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .zip(workers.iter_mut())
                    .map(|((base, chunk), worker)| {
                        scope.spawn(move || {
                            let mut out = Vec::with_capacity(chunk.len());
                            let mut skipped = 0usize;
                            for (off, &(node, value)) in chunk.iter().enumerate() {
                                if budget.check().is_err() {
                                    skipped += 1;
                                    out.push(None);
                                } else {
                                    out.push(worker.cube_for(base + off, node, value));
                                }
                            }
                            (out, skipped)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(part) => part,
                        // Re-raise with the original payload so campaign-level
                        // isolation reports the real panic message.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            for (part, part_skipped) in results {
                cube_results.extend(part);
                skipped += part_skipped;
            }
        }

        let mut events = Vec::new();
        let mut dropped = 0usize;
        for (&(node, rare_value), cube) in rare_list.iter().zip(cube_results) {
            match cube {
                Some(cube) => events.push(RareEvent {
                    node,
                    rare_value,
                    cube,
                }),
                None => dropped += 1,
            }
        }
        dropped -= skipped; // skips are reported separately, not as drops

        // Phase A′: functional re-check of every cube on one incremental
        // re-simulation session. Consecutive cubes differ in a handful
        // of care bits, so each check re-evaluates only the cones those
        // bits feed instead of the whole netlist. A cube that fails to
        // drive its event (which would take a PODEM defect) is dropped
        // like an unattainable fault — the graph stays sound either way.
        let verify_span = htforge_obs::span("compat_cube_verify");
        let prog = htforge_sim::SimProgram::compile(nl)?;
        let mut session = prog.delta_sim(htforge_sim::PatternSet::zeros(nl.inputs().len(), 1));
        let mut verified = Vec::with_capacity(events.len());
        for e in events {
            let vector = e.cube.fill_with(false);
            for (i, &bit) in vector.iter().enumerate() {
                if session.patterns().get(i, 0) != bit {
                    session.set_input(i, 0, bit);
                }
            }
            session.propagate();
            if session.value(e.node, 0) == e.rare_value {
                verified.push(e);
            } else {
                dropped += 1;
                htforge_obs::counter("compat.cube_verify_failures").incr();
            }
        }
        let events = verified;
        verify_span.finish();

        if skipped > 0 {
            notes.push(DegradationNote::new(
                "compat_graph",
                "skipped_faults",
                format!(
                    "budget spent: {skipped} of {} rare events not attempted",
                    rare_list.len()
                ),
            ));
        }
        podem_span.finish();
        htforge_obs::counter("compat.events").add(events.len() as u64);
        htforge_obs::counter("compat.dropped").add(dropped as u64);
        let matrix_span = htforge_obs::span("compat_matrix");

        // Phase B: pairwise compatibility matrix over bit-packed care
        // masks — a conflict is a single word-AND per 64 inputs, which
        // keeps Algorithm 2's O(R²) inner loop cheap even with thousands
        // of rare events (parallelized over rows when workers exist).
        let n = events.len();
        let words = n.div_ceil(64);
        let packed: Vec<(Vec<u64>, Vec<u64>)> =
            events.iter().map(|e| e.cube.care_masks()).collect();
        let conflicts = |i: usize, j: usize| -> bool {
            let (a0, a1) = &packed[i];
            let (b0, b1) = &packed[j];
            a0.iter()
                .zip(b1)
                .chain(a1.iter().zip(b0))
                .any(|(&x, &y)| x & y != 0)
        };
        let row_of = |i: usize| -> Vec<u64> {
            htforge_obs::faultpoint!("compat.matrix_row");
            let mut row = vec![0u64; words];
            for j in 0..n {
                if j != i && !conflicts(i, j) {
                    row[j / 64] |= 1 << (j % 64);
                }
            }
            row
        };
        let limited = !budget.is_unlimited() || budget.cancelled();
        let adj: Vec<Vec<u64>> = if limited {
            // Budgeted fill is triangular (both directions of a pair are
            // set together), so stopping early keeps the matrix
            // symmetric: unvisited pairs are just "incompatible".
            let mut adj = vec![vec![0u64; words]; n];
            let mut ticker = BudgetTicker::new(budget.clone(), 8);
            let mut rows_done = n;
            for i in 0..n {
                htforge_obs::faultpoint!("compat.matrix_row");
                if ticker.tick().is_err() {
                    rows_done = i;
                    break;
                }
                for j in i + 1..n {
                    if !conflicts(i, j) {
                        adj[i][j / 64] |= 1 << (j % 64);
                        adj[j][i / 64] |= 1 << (i % 64);
                    }
                }
            }
            if rows_done < n {
                notes.push(DegradationNote::new(
                    "compat_graph",
                    "truncated_matrix",
                    format!("pairwise compatibility computed for {rows_done} of {n} rows"),
                ));
            }
            adj
        } else if threads == 1 || n < 256 {
            // Triangular fill: half the pair checks of the row variant.
            let mut adj = vec![vec![0u64; words]; n];
            for i in 0..n {
                htforge_obs::faultpoint!("compat.matrix_row");
                for j in i + 1..n {
                    if !conflicts(i, j) {
                        adj[i][j / 64] |= 1 << (j % 64);
                        adj[j][i / 64] |= 1 << (i % 64);
                    }
                }
            }
            adj
        } else {
            let row_chunk = n.div_ceil(threads).max(1);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(row_chunk)
                    .map(|start| {
                        let end = (start + row_chunk).min(n);
                        let row_of = &row_of;
                        scope.spawn(move || (start..end).map(row_of).collect::<Vec<_>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| match h.join() {
                        Ok(rows) => rows,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };
        matrix_span.finish();
        let graph = CompatGraph {
            events,
            adj,
            dropped,
        };
        htforge_obs::counter("compat.edges").add(graph.edge_count() as u64);
        Ok((graph, notes))
    }

    /// The graph's vertices.
    #[must_use]
    pub fn events(&self) -> &[RareEvent] {
        &self.events
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Rare events dropped because no cube could be generated.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Whether vertices `i` and `j` are compatible.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn compatible(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true;
        }
        (self.adj[i][j / 64] >> (j % 64)) & 1 == 1
    }

    /// Degree of vertex `i`.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        (0..self.len()).map(|i| self.degree(i)).sum::<usize>() / 2
    }

    /// Adjacency row of vertex `i` (bit-packed).
    #[must_use]
    pub(crate) fn row(&self, i: usize) -> &[u64] {
        &self.adj[i]
    }

    /// Merges the cubes of a vertex set; `None` if any pair conflicts
    /// (never happens for cliques).
    #[must_use]
    pub fn merged_cube(&self, members: &[usize]) -> Option<Cube> {
        let mut iter = members.iter();
        let first = *iter.next()?;
        let mut acc = self.events[first].cube.clone();
        for &m in iter {
            if !acc.merge_in_place(&self.events[m].cube) {
                htforge_obs::counter("compat.cube_merge_conflicts").incr();
                return None;
            }
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;
    use htforge_sim::tri::justifies;
    use htforge_sim::{PatternSet, RareNodeExtractor};

    /// Two disjoint AND cones: their outputs are rare-1 and *compatible*
    /// (disjoint supports). A third node forces a conflict.
    const TWO_CONES: &str = "\
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(x)
OUTPUT(y)
OUTPUT(z)
x = AND(a, b)
y = AND(c, d)
z = NOR(a, b)
";

    fn build_graph(theta: f64) -> (Netlist, CompatGraph) {
        let nl = bench::parse(TWO_CONES, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 3);
        let rare = RareNodeExtractor::new(theta).extract(&nl, &ps).unwrap();
        let g = CompatGraph::build(&nl, &rare, PodemConfig::default()).unwrap();
        (nl, g)
    }

    #[test]
    fn disjoint_cones_are_compatible() {
        let (nl, g) = build_graph(0.30);
        let find = |name: &str| {
            let id = nl.find(name).unwrap();
            g.events().iter().position(|e| e.node == id).unwrap()
        };
        let (x, y, z) = (find("x"), find("y"), find("z"));
        assert!(g.compatible(x, y), "disjoint supports must be compatible");
        // x needs a=b=1, z needs a=b=0 → conflict.
        assert!(!g.compatible(x, z));
        // y and z have disjoint supports.
        assert!(g.compatible(y, z));
    }

    #[test]
    fn every_cube_justifies_its_rare_event() {
        let (nl, g) = build_graph(0.30);
        assert!(!g.is_empty());
        for e in g.events() {
            assert!(
                justifies(&nl, e.cube.bits(), e.node, e.rare_value).unwrap(),
                "cube {} does not justify {}={}",
                e.cube,
                nl.node(e.node).name(),
                e.rare_value
            );
        }
    }

    #[test]
    fn merged_cube_justifies_all_members() {
        let (nl, g) = build_graph(0.30);
        let find = |name: &str| {
            let id = nl.find(name).unwrap();
            g.events().iter().position(|e| e.node == id).unwrap()
        };
        let members = vec![find("x"), find("y")];
        let merged = g.merged_cube(&members).expect("compatible pair merges");
        for &m in &members {
            let e = &g.events()[m];
            assert!(justifies(&nl, merged.bits(), e.node, e.rare_value).unwrap());
        }
    }

    #[test]
    fn merged_cube_rejects_conflicts() {
        let (nl, g) = build_graph(0.30);
        let find = |name: &str| {
            let id = nl.find(name).unwrap();
            g.events().iter().position(|e| e.node == id).unwrap()
        };
        assert!(g.merged_cube(&[find("x"), find("z")]).is_none());
    }

    #[test]
    fn degree_and_edges_consistent() {
        let (_, g) = build_graph(0.30);
        let total: usize = (0..g.len()).map(|i| g.degree(i)).sum();
        assert_eq!(total % 2, 0);
        assert_eq!(g.edge_count(), total / 2);
    }

    #[test]
    fn self_compatibility() {
        let (_, g) = build_graph(0.30);
        for i in 0..g.len() {
            assert!(g.compatible(i, i));
        }
    }

    #[test]
    fn generous_budget_matches_unbudgeted_build() {
        let nl = bench::parse(TWO_CONES, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 3);
        let rare = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
        let full = CompatGraph::build(&nl, &rare, PodemConfig::default()).unwrap();
        let budget = RunBudget::with_deadline(std::time::Duration::from_secs(60));
        let (g, notes) =
            CompatGraph::build_budgeted(&nl, &rare, PodemConfig::default(), &budget).unwrap();
        assert!(notes.is_empty(), "{notes:?}");
        assert_eq!(g.len(), full.len());
        assert_eq!(g.edge_count(), full.edge_count());
        assert_eq!(g.dropped(), full.dropped());
        for i in 0..g.len() {
            for j in 0..g.len() {
                assert_eq!(g.compatible(i, j), full.compatible(i, j));
            }
        }
    }

    #[test]
    fn spent_budget_skips_faults_and_reports_it() {
        let nl = bench::parse(TWO_CONES, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 3);
        let rare = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
        assert!(!rare.is_empty());
        let budget = RunBudget::with_deadline(std::time::Duration::ZERO);
        let (g, notes) =
            CompatGraph::build_budgeted(&nl, &rare, PodemConfig::default(), &budget).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.dropped(), 0, "skips must not be counted as drops");
        assert!(
            notes
                .iter()
                .any(|n| n.phase == "compat_graph" && n.action == "skipped_faults"),
            "{notes:?}"
        );
    }
}
