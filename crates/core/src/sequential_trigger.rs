//! Sequential ("time-bomb") trojans: a counter armed by the
//! combinational trigger.
//!
//! The paper's instances are purely combinational; its related work
//! (TRIT, Trust-Hub) also ships *sequential* trojans whose payload fires
//! only after the trigger condition has been observed `2^k` times. This
//! module extends the framework with that activation mechanism:
//!
//! * the combinational trigger tree is synthesized exactly as in Fig. 1,
//! * a `k`-bit ripple counter (DFF + XOR/AND increment logic) counts
//!   trigger events,
//! * the payload asserts when the counter saturates (all-ones) *and*
//!   the trigger holds — so even a tester lucky enough to hit the trigger
//!   combination once sees nothing.
//!
//! Detection implications: under full-scan assumptions the counter flops
//! are cut and controllable, so scan-based schemes degrade the trojan to
//! its combinational core; in functional (non-scan) operation the trojan
//! is strictly stealthier than its combinational counterpart. Both facts
//! are asserted in the tests via [`htforge_sim::sequential`].

use htforge_atpg::Cube;
use htforge_netlist::{netlist::NodeId, GateKind, Netlist};

use crate::error::InsertionError;
use crate::insert::TrojanInstance;
use crate::payload::PayloadKind;
use crate::trigger::{PlanSignal, TriggerPlan};

/// An infected netlist bundled with its sequential-trojan metadata —
/// the unit the sequential detection campaigns
/// (`htforge_detect::sequential`) and the batched simulation benches
/// consume.
#[derive(Debug, Clone)]
pub struct SequentialInfectedDesign {
    /// The trojan-carrying netlist.
    pub netlist: Netlist,
    /// Metadata of the inserted trojan.
    pub trojan: SequentialTrojan,
}

/// Metadata for one inserted sequential trojan.
#[derive(Debug, Clone)]
pub struct SequentialTrojan {
    /// The combinational part (trigger tree, payload, cube). The
    /// `trigger_output` field holds the *armed* output: counter-saturated
    /// AND trigger.
    pub combinational: TrojanInstance,
    /// The raw combinational trigger output (pre-counter).
    pub raw_trigger: NodeId,
    /// Counter flop nodes, LSB first.
    pub counter_flops: Vec<NodeId>,
    /// Number of trigger events needed to arm the payload: `2^k - 1`
    /// prior events, firing on the `2^k`-th.
    pub events_to_arm: u64,
}

/// Inserts a sequential trojan: `counter_bits`-bit event counter over the
/// combinational trigger defined by `leaves`/`plan`, payload spliced on
/// `payload_net`.
///
/// # Errors
///
/// Returns [`InsertionError::Netlist`] if instantiation produces an
/// invalid netlist (e.g. an unsafe payload net).
///
/// # Panics
///
/// Panics if `plan.num_leaves() != leaves.len()` or `counter_bits == 0`.
#[allow(clippy::too_many_arguments)] // one call site; mirrors the paper's parameter list
pub fn insert_sequential_trojan(
    nl: &Netlist,
    leaves: &[(NodeId, bool)],
    plan: &TriggerPlan,
    payload_net: NodeId,
    payload_kind: PayloadKind,
    counter_bits: usize,
    tag: &str,
    activation_cube: Cube,
) -> Result<(Netlist, SequentialTrojan), InsertionError> {
    assert!(counter_bits > 0, "counter needs at least one bit");
    assert_eq!(
        plan.num_leaves(),
        leaves.len(),
        "trigger plan and leaf set disagree on q"
    );
    let mut out = nl.clone();
    out.set_name(format!("{}_{tag}", nl.name()));

    // Combinational trigger tree (identical to Algorithm 3's).
    let mut gate_ids: Vec<NodeId> = Vec::with_capacity(plan.gates().len());
    for (k, gate) in plan.gates().iter().enumerate() {
        let fanins: Vec<NodeId> = gate
            .inputs
            .iter()
            .map(|s| match *s {
                PlanSignal::Leaf(i) => leaves[i].0,
                PlanSignal::Gate(g) => gate_ids[g],
            })
            .collect();
        let id = out
            .add_gate(format!("ht{tag}_t{k}"), gate.kind, fanins)
            .map_err(InsertionError::Netlist)?;
        gate_ids.push(id);
    }
    let raw_trigger = match plan.output() {
        PlanSignal::Leaf(i) => leaves[i].0,
        PlanSignal::Gate(g) => gate_ids[g],
    };

    // k-bit ripple counter clocked by the system clock, incremented when
    // the raw trigger holds: q_i' = q_i ⊕ carry_i, carry_0 = T,
    // carry_{i+1} = carry_i ∧ q_i.
    let mut flops = Vec::with_capacity(counter_bits);
    for b in 0..counter_bits {
        let q = out
            .add_dff_deferred(format!("ht{tag}_cnt{b}"))
            .map_err(InsertionError::Netlist)?;
        flops.push(q);
    }
    let mut carry = raw_trigger;
    for (b, &q) in flops.iter().enumerate() {
        let d = out
            .add_gate(format!("ht{tag}_d{b}"), GateKind::Xor, vec![q, carry])
            .map_err(InsertionError::Netlist)?;
        out.connect_dff(q, d).map_err(InsertionError::Netlist)?;
        if b + 1 < counter_bits {
            carry = out
                .add_gate(format!("ht{tag}_c{b}"), GateKind::And, vec![carry, q])
                .map_err(InsertionError::Netlist)?;
        }
    }

    // Armed = all counter bits set AND the trigger held this cycle.
    let mut armed_inputs = flops.clone();
    armed_inputs.push(raw_trigger);
    let armed = out
        .add_gate(format!("ht{tag}_armed"), GateKind::And, armed_inputs)
        .map_err(InsertionError::Netlist)?;

    // Payload splice (same as the combinational flow, driven by `armed`).
    let payload_gate = match payload_kind {
        PayloadKind::Flip => out
            .add_gate(
                format!("ht{tag}_payload"),
                GateKind::Xor,
                vec![payload_net, armed],
            )
            .map_err(InsertionError::Netlist)?,
        PayloadKind::ForceOne => out
            .add_gate(
                format!("ht{tag}_payload"),
                GateKind::Or,
                vec![payload_net, armed],
            )
            .map_err(InsertionError::Netlist)?,
        PayloadKind::ForceZero => {
            let ninv = out
                .add_gate(format!("ht{tag}_ninv"), GateKind::Not, vec![armed])
                .map_err(InsertionError::Netlist)?;
            out.add_gate(
                format!("ht{tag}_payload"),
                GateKind::And,
                vec![payload_net, ninv],
            )
            .map_err(InsertionError::Netlist)?
        }
    };
    out.splice_driver(payload_net, payload_gate);
    out.validate().map_err(InsertionError::Netlist)?;

    let mut trigger_gates = gate_ids;
    trigger_gates.push(armed);
    Ok((
        out,
        SequentialTrojan {
            combinational: TrojanInstance {
                trigger_inputs: leaves.to_vec(),
                trigger_gates,
                trigger_output: armed,
                payload_net,
                payload_kind,
                payload_gate,
                activation_cube,
            },
            raw_trigger,
            counter_flops: flops,
            events_to_arm: (1u64 << counter_bits) - 1,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::enumerate_cliques;
    use crate::compat::CompatGraph;
    use crate::payload::choose_payload;
    use htforge_atpg::PodemConfig;
    use htforge_netlist::bench;
    use htforge_sim::sequential::SequentialSimulator;
    use htforge_sim::{PatternSet, RareNodeExtractor};

    const HOST: &str = "\
INPUT(a1)
INPUT(a2)
INPUT(b1)
INPUT(b2)
OUTPUT(w)
OUTPUT(x)
OUTPUT(o)
w = AND(a1, a2)
x = AND(b1, b2)
o = XOR(a1, b1)
";

    fn build(counter_bits: usize) -> (Netlist, Netlist, SequentialTrojan) {
        let nl = bench::parse(HOST, "t").unwrap();
        let ps = PatternSet::random(4, 10_000, 1);
        let rare = RareNodeExtractor::new(0.30).extract(&nl, &ps).unwrap();
        let graph = CompatGraph::build(&nl, &rare, PodemConfig::justify()).unwrap();
        let cliques = enumerate_cliques(&graph, 2, 1, 0);
        let clique = &cliques[0];
        let leaves: Vec<(htforge_netlist::netlist::NodeId, bool)> = clique
            .members
            .iter()
            .map(|&m| {
                let e = &graph.events()[m];
                (e.node, e.rare_value)
            })
            .collect();
        let rare_values: Vec<bool> = leaves.iter().map(|&(_, v)| v).collect();
        let plan = TriggerPlan::synthesize(&rare_values, 4);
        let scoap = htforge_scoap::Scoap::compute(&nl).unwrap();
        let trigger_nodes: Vec<_> = leaves.iter().map(|&(n, _)| n).collect();
        let payload = choose_payload(
            &nl,
            &scoap,
            &trigger_nodes,
            crate::PayloadStrategy::MostObservable,
        )
        .unwrap();
        let (infected, trojan) = insert_sequential_trojan(
            &nl,
            &leaves,
            &plan,
            payload,
            PayloadKind::Flip,
            counter_bits,
            "s0",
            clique.activation_cube.clone(),
        )
        .unwrap();
        (nl, infected, trojan)
    }

    #[test]
    fn structure_is_valid_and_sequential() {
        let (nl, infected, trojan) = build(2);
        assert!(infected.validate().is_ok());
        assert_eq!(infected.dffs().len(), nl.dffs().len() + 2);
        assert_eq!(trojan.counter_flops.len(), 2);
        assert_eq!(trojan.events_to_arm, 3);
    }

    #[test]
    fn payload_fires_only_on_the_2k_th_event() {
        let (_, infected, trojan) = build(2);
        let mut sim = SequentialSimulator::new(&infected).unwrap();

        // The activation vector for the combinational trigger.
        let trigger_vec = trojan.combinational.activation_cube.fill_with(false);
        let idle_vec = vec![false; 4]; // a1=a2=0 keeps w (and the trigger) low

        // Events 1..3 arm the counter without firing the payload.
        for event in 1..=3u64 {
            sim.step(&trigger_vec).unwrap();
            assert_eq!(
                sim.value(trojan.combinational.trigger_output),
                Some(false),
                "armed too early at event {event}"
            );
            // Idle cycles in between must not advance the counter.
            sim.step(&idle_vec).unwrap();
        }
        // Counter is now 3 (saturated); the 4th event fires the payload.
        sim.step(&trigger_vec).unwrap();
        assert_eq!(sim.value(trojan.combinational.trigger_output), Some(true));
        assert_eq!(sim.value(trojan.raw_trigger), Some(true));
    }

    #[test]
    fn idle_cycles_never_arm() {
        let (_, infected, trojan) = build(2);
        let mut sim = SequentialSimulator::new(&infected).unwrap();
        for _ in 0..20 {
            sim.step(&[false, true, false, true]).unwrap();
            assert_eq!(sim.value(trojan.combinational.trigger_output), Some(false));
        }
        assert!(sim.state().iter().all(|&s| !s), "counter must stay at 0");
    }

    #[test]
    fn single_bit_counter_fires_on_second_event() {
        let (_, infected, trojan) = build(1);
        assert_eq!(trojan.events_to_arm, 1);
        let mut sim = SequentialSimulator::new(&infected).unwrap();
        let trigger_vec = trojan.combinational.activation_cube.fill_with(false);
        sim.step(&trigger_vec).unwrap();
        assert_eq!(sim.value(trojan.combinational.trigger_output), Some(false));
        sim.step(&trigger_vec).unwrap();
        assert_eq!(sim.value(trojan.combinational.trigger_output), Some(true));
    }

    #[test]
    fn batched_traces_arm_at_their_own_event_counts() {
        // One batched pass over 64 traces, each firing the trigger on a
        // different subset of cycles: every trace must arm exactly on
        // its own 2^k-th trigger event, independent of its neighbours.
        use htforge_sim::seq_batch::{BatchedSequentialSimulator, FirstFireMonitor};

        let (_, infected, trojan) = build(2);
        let traces = 64;
        let cycles = 40;
        let trigger_vec = trojan.combinational.activation_cube.fill_with(false);
        let idle_vec = vec![false; 4];

        // Trace t fires the trigger on cycles where (cycle + t) % (t % 7
        // + 2) == 0 — a different sparse schedule per trace.
        let fires = |t: usize, cycle: usize| (cycle + t).is_multiple_of(t % 7 + 2);

        let mut sim = BatchedSequentialSimulator::new(&infected, traces).unwrap();
        let mut monitor = FirstFireMonitor::new(traces);
        for cycle in 0..cycles {
            let vectors: Vec<Vec<bool>> = (0..traces)
                .map(|t| {
                    if fires(t, cycle) {
                        trigger_vec.clone()
                    } else {
                        idle_vec.clone()
                    }
                })
                .collect();
            sim.step(&PatternSet::from_vectors(4, &vectors));
            monitor.observe(sim.node_words(trojan.combinational.trigger_output).unwrap());
        }

        for t in 0..traces {
            // The armed output goes high on the trace's 4th trigger
            // event (2-bit counter: 3 prior events + the firing one).
            let expected = (0..cycles)
                .filter(|&c| fires(t, c))
                .nth(3)
                .map(|c| c as u32);
            assert_eq!(
                monitor.first_fire(t),
                expected,
                "trace {t} armed at the wrong cycle"
            );
        }
        assert!(monitor.any_fired(), "schedule must arm at least one trace");
    }

    #[test]
    fn batched_path_agrees_with_scalar_stepper() {
        use htforge_sim::seq_batch::BatchedSequentialSimulator;

        let (_, infected, trojan) = build(1);
        let traces = 5;
        let trigger_vec = trojan.combinational.activation_cube.fill_with(false);
        let mut batched = BatchedSequentialSimulator::new(&infected, traces).unwrap();
        let mut scalars: Vec<SequentialSimulator> = (0..traces)
            .map(|_| SequentialSimulator::new(&infected).unwrap())
            .collect();
        for cycle in 0..6 {
            // Trace t triggers on cycles >= t, so arming staggers.
            let vectors: Vec<Vec<bool>> = (0..traces)
                .map(|t| {
                    if cycle >= t {
                        trigger_vec.clone()
                    } else {
                        vec![false; 4]
                    }
                })
                .collect();
            batched.step(&PatternSet::from_vectors(4, &vectors));
            for (t, scalar) in scalars.iter_mut().enumerate() {
                scalar.step(&vectors[t]).unwrap();
                assert_eq!(
                    batched.value(trojan.combinational.trigger_output, t),
                    scalar.value(trojan.combinational.trigger_output),
                    "armed signal diverged (trace {t}, cycle {cycle})"
                );
                assert_eq!(
                    batched.state_of_trace(t),
                    scalar.state(),
                    "counter state diverged (trace {t}, cycle {cycle})"
                );
            }
        }
    }

    #[test]
    fn functional_outputs_clean_until_armed() {
        let (nl, infected, trojan) = build(2);
        let mut golden = SequentialSimulator::new(&nl).unwrap();
        let mut suspect = SequentialSimulator::new(&infected).unwrap();
        let trigger_vec = trojan.combinational.activation_cube.fill_with(true);
        for cycle in 0..3 {
            golden.step(&trigger_vec).unwrap();
            suspect.step(&trigger_vec).unwrap();
            for (&go, &io) in nl.outputs().iter().zip(infected.outputs()) {
                assert_eq!(
                    golden.value(go),
                    suspect.value(io),
                    "output diverged before arming (cycle {cycle})"
                );
            }
        }
        // 4th consecutive trigger event: divergence allowed (payload on).
        golden.step(&trigger_vec).unwrap();
        suspect.step(&trigger_vec).unwrap();
        let diverged = nl
            .outputs()
            .iter()
            .zip(infected.outputs())
            .any(|(&go, &io)| golden.value(go) != suspect.value(io));
        assert!(diverged, "armed payload must corrupt an output");
    }
}
