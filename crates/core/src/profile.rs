//! Per-circuit-class phase profiles: the measured replacement for the
//! staged-budget weight heuristic.
//!
//! [`InsertionFramework::run_with_budget`](crate::InsertionFramework::run_with_budget)
//! splits its deadline over the four budgeted phases with a
//! [`StagedBudget`](htforge_obs::StagedBudget). The split used to be the
//! static [`DEFAULT_STAGE_WEIGHTS`] chain; circuits whose cost profile
//! deviates (a clique-bound s-series design, a compat-heavy multiplier)
//! paid for the mismatch in premature phase degradations. The
//! [`PhaseProfileStore`] closes the loop: every successful run feeds its
//! [`PhaseTimings`] back in under a *circuit class* key (the netlist
//! name), and the next run of that class draws its weights from the
//! accumulated averages — so a campaign server grinding hundreds of
//! jobs per circuit converges on the real cost structure, while a
//! first-seen class still gets the historical default.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use htforge_obs::Json;

use crate::framework::PhaseTimings;

/// The budgeted phases, in stage order. (Preprocess and validation run
/// outside the staged split: the former is sub-millisecond, the latter
/// is never skipped under pressure.)
pub const STAGED_PHASES: [&str; 4] = [
    "rare_extraction",
    "compat_graph",
    "clique_enumeration",
    "insertion",
];

/// The historical static weights, used until a class has been profiled:
/// they solve the pre-`StagedBudget` chain (25 % rare, 70 % of the
/// remainder compat, 60 % of that remainder clique).
pub const DEFAULT_STAGE_WEIGHTS: [f64; 4] = [0.25, 0.52, 0.14, 0.09];

/// Floor applied to every profiled weight so a phase that was trivially
/// cheap on the profiled runs (a cache-warm compat graph, say) still
/// gets a non-degenerate slice when circumstances change.
const MIN_WEIGHT: f64 = 0.02;

#[derive(Debug, Clone, Copy, Default)]
struct ClassProfile {
    runs: u64,
    /// Accumulated per-phase seconds, [`STAGED_PHASES`] order.
    totals_s: [f64; 4],
}

/// Accumulates per-class phase timings and serves profile-guided
/// staged-budget weights. Thread-safe; the framework records into
/// [`PhaseProfileStore::global`] and reads from it on the next run.
#[derive(Debug, Default)]
pub struct PhaseProfileStore {
    classes: Mutex<HashMap<String, ClassProfile>>,
}

impl PhaseProfileStore {
    /// A fresh, empty store (tests; production code uses
    /// [`PhaseProfileStore::global`]).
    #[must_use]
    pub fn new() -> Self {
        PhaseProfileStore::default()
    }

    /// The process-wide store the framework feeds and consults.
    pub fn global() -> &'static PhaseProfileStore {
        static GLOBAL: OnceLock<PhaseProfileStore> = OnceLock::new();
        GLOBAL.get_or_init(PhaseProfileStore::new)
    }

    /// Folds one run's timings into `class`'s profile.
    pub fn record(&self, class: &str, timings: &PhaseTimings) {
        let mut classes = self.classes.lock().expect("profile lock");
        let profile = classes.entry(class.to_owned()).or_default();
        profile.runs += 1;
        for (slot, dur) in profile.totals_s.iter_mut().zip([
            timings.rare_extraction,
            timings.compat_graph,
            timings.clique_enumeration,
            timings.insertion,
        ]) {
            *slot += dur.as_secs_f64();
        }
    }

    /// Runs recorded for `class` so far.
    #[must_use]
    pub fn runs(&self, class: &str) -> u64 {
        self.classes
            .lock()
            .expect("profile lock")
            .get(class)
            .map_or(0, |p| p.runs)
    }

    /// The staged-budget weights for `class`: the normalized average
    /// phase costs when the class has been profiled (each floored at
    /// 2 % so no phase starves), [`DEFAULT_STAGE_WEIGHTS`] otherwise.
    /// Always sums to 1.
    #[must_use]
    pub fn stage_weights(&self, class: &str) -> [f64; 4] {
        let totals = {
            let classes = self.classes.lock().expect("profile lock");
            match classes.get(class) {
                Some(p) if p.runs > 0 => p.totals_s,
                _ => return DEFAULT_STAGE_WEIGHTS,
            }
        };
        let sum: f64 = totals.iter().sum();
        if sum <= 0.0 {
            return DEFAULT_STAGE_WEIGHTS;
        }
        let mut weights = totals.map(|t| (t / sum).max(MIN_WEIGHT));
        let norm: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= norm;
        }
        weights
    }

    /// Drops every accumulated profile (test hygiene).
    pub fn clear(&self) {
        self.classes.lock().expect("profile lock").clear();
    }

    /// The store as a JSON object, `class → {runs, weights}` — the
    /// `budget_profiles` section of the campaign server's `metrics`
    /// introspection response.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut entries: Vec<(String, Json)> = self
            .classes
            .lock()
            .expect("profile lock")
            .iter()
            .map(|(class, profile)| {
                let weights = self.weights_of(*profile);
                (
                    class.clone(),
                    Json::obj(vec![
                        ("runs", Json::Num(profile.runs as f64)),
                        (
                            "weights",
                            Json::Arr(weights.iter().map(|&w| Json::Num(w)).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(entries)
    }

    fn weights_of(&self, profile: ClassProfile) -> [f64; 4] {
        let sum: f64 = profile.totals_s.iter().sum();
        if profile.runs == 0 || sum <= 0.0 {
            return DEFAULT_STAGE_WEIGHTS;
        }
        let mut weights = profile.totals_s.map(|t| (t / sum).max(MIN_WEIGHT));
        let norm: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= norm;
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn skewed_timings() -> PhaseTimings {
        PhaseTimings {
            preprocess: Duration::from_millis(1),
            rare_extraction: Duration::from_millis(50),
            compat_graph: Duration::from_millis(100),
            clique_enumeration: Duration::from_millis(800),
            insertion: Duration::from_millis(50),
            validation: Duration::from_millis(5),
        }
    }

    #[test]
    fn unprofiled_class_gets_the_static_default() {
        let store = PhaseProfileStore::new();
        assert_eq!(store.stage_weights("never_seen"), DEFAULT_STAGE_WEIGHTS);
        assert_eq!(store.runs("never_seen"), 0);
        let sum: f64 = DEFAULT_STAGE_WEIGHTS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_shift_toward_a_skewed_class_profile() {
        // A clique-bound class: after profiling, clique_enumeration must
        // dominate the split instead of its 14 % default.
        let store = PhaseProfileStore::new();
        store.record("skewy", &skewed_timings());
        store.record("skewy", &skewed_timings());
        assert_eq!(store.runs("skewy"), 2);
        let w = store.stage_weights("skewy");
        assert_ne!(w, DEFAULT_STAGE_WEIGHTS);
        assert!(
            w[2] > 0.7,
            "clique phase is 800/1000 of the staged time: {w:?}"
        );
        assert!(w[2] > DEFAULT_STAGE_WEIGHTS[2]);
        assert!(w[1] < DEFAULT_STAGE_WEIGHTS[1], "compat shrank: {w:?}");
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{w:?}");
        // Other classes are unaffected.
        assert_eq!(store.stage_weights("other"), DEFAULT_STAGE_WEIGHTS);
    }

    #[test]
    fn every_weight_keeps_the_starvation_floor() {
        let store = PhaseProfileStore::new();
        let timings = PhaseTimings {
            compat_graph: Duration::from_secs(100),
            ..PhaseTimings::default()
        };
        store.record("lopsided", &timings);
        let w = store.stage_weights("lopsided");
        for (i, weight) in w.iter().enumerate() {
            // MIN_WEIGHT is applied pre-normalization; with three
            // floored phases the post-normalization floor is 0.02/1.06.
            assert!(*weight >= 0.0188, "phase {i} starved: {w:?}");
        }
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_profiles_fall_back_to_default() {
        let store = PhaseProfileStore::new();
        store.record("instant", &PhaseTimings::default());
        assert_eq!(store.runs("instant"), 1);
        assert_eq!(store.stage_weights("instant"), DEFAULT_STAGE_WEIGHTS);
    }

    #[test]
    fn to_json_lists_classes_with_runs_and_weights() {
        let store = PhaseProfileStore::new();
        store.record("c17", &skewed_timings());
        let doc = store.to_json();
        let entry = doc.get("c17").expect("class entry");
        assert_eq!(entry.get("runs").unwrap().as_u64(), Some(1));
        let weights = entry.get("weights").unwrap().as_arr().unwrap();
        assert_eq!(weights.len(), 4);
        store.clear();
        assert_eq!(store.runs("c17"), 0);
    }
}
