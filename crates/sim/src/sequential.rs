//! Cycle-accurate sequential simulation.
//!
//! The combinational machinery ([`crate::simulator`]) models full-scan
//! testing; this module closes the loop for *functional* (non-scan)
//! operation: DFF state is held across clock edges, one
//! [`SequentialSimulator::step`] per cycle. It exists to exercise
//! sequential trojans (counter-based "time-bomb" triggers) whose
//! behaviour is invisible to purely combinational analysis.

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError};

use crate::patterns::PatternSet;
use crate::simulator::{NodeValues, Simulator};

/// A sequential simulator: combinational core plus explicit DFF state.
///
/// # Examples
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::sequential::SequentialSimulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 1-bit toggle: q flips whenever `en` is high.
/// let src = "INPUT(en)\nOUTPUT(q)\nd = XOR(en, q)\nq = DFF(d)\n";
/// let nl = bench::parse(src, "toggle")?;
/// let mut sim = SequentialSimulator::new(&nl)?;
/// assert_eq!(sim.state(), &[false]);
/// sim.step(&[true])?;
/// assert_eq!(sim.state(), &[true]);
/// sim.step(&[false])?;
/// assert_eq!(sim.state(), &[true]); // hold
/// sim.step(&[true])?;
/// assert_eq!(sim.state(), &[false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSimulator {
    cut: Netlist,
    sim: Simulator,
    /// Current DFF states, in `netlist.dffs()` order.
    state: Vec<bool>,
    /// D drivers of each DFF (ids valid in `cut`).
    d_drivers: Vec<NodeId>,
    primary_inputs: usize,
    last: Option<NodeValues>,
}

impl SequentialSimulator {
    /// Builds a simulator for `nl`, with all flops initialized to 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part of `nl` is cyclic.
    pub fn new(nl: &Netlist) -> Result<Self, NetlistError> {
        let d_drivers: Vec<NodeId> = nl.dffs().iter().map(|&q| nl.node(q).fanins()[0]).collect();
        let primary_inputs = nl.inputs().len();
        let cut = nl.scan_cut();
        let sim = Simulator::new(&cut)?;
        Ok(SequentialSimulator {
            cut,
            sim,
            state: vec![false; d_drivers.len()],
            d_drivers,
            primary_inputs,
            last: None,
        })
    }

    /// Current flop states, in `dffs()` order.
    #[must_use]
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Overwrites the flop states (e.g. to model a non-zero reset).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the DFF count.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
        self.last = None;
    }

    /// Resets every flop to 0.
    pub fn reset(&mut self) {
        self.state.fill(false);
        self.last = None;
    }

    /// Applies one clock cycle with the given primary-input values.
    /// Combinational values settle, then every DFF captures its D input.
    ///
    /// # Errors
    ///
    /// This operation is infallible after construction; the `Result`
    /// mirrors future-proofing of the trait-facing API.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        assert_eq!(inputs.len(), self.primary_inputs, "input width mismatch");
        let mut full: Vec<bool> = Vec::with_capacity(inputs.len() + self.state.len());
        full.extend_from_slice(inputs);
        full.extend_from_slice(&self.state);
        let ps = PatternSet::from_vectors(full.len(), &[full]);
        let values = self.sim.run_on(&self.cut, &ps);
        for (k, &d) in self.d_drivers.iter().enumerate() {
            self.state[k] = values.value(d, 0);
        }
        self.last = Some(values);
        Ok(())
    }

    /// The settled value of `node` after the most recent [`step`]
    /// (`None` before the first step or after a state override).
    ///
    /// [`step`]: SequentialSimulator::step
    #[must_use]
    pub fn value(&self, node: NodeId) -> Option<bool> {
        self.last.as_ref().map(|v| v.value(node, 0))
    }

    /// The primary-output values after the most recent [`step`]
    /// (`None` before the first step or after a state override).
    ///
    /// [`step`]: SequentialSimulator::step
    #[must_use]
    pub fn outputs(&self) -> Option<Vec<bool>> {
        self.last.as_ref().map(|values| {
            self.cut
                .outputs()
                .iter()
                .map(|&o| values.value(o, 0))
                .collect()
        })
    }

    /// Steps once per input vector, returning one [`CycleSnapshot`]
    /// (post-settle primary outputs + post-edge flop state) per cycle —
    /// so callers no longer have to interleave [`step`] with manual
    /// `value`/`state` cloning.
    ///
    /// [`step`]: SequentialSimulator::step
    ///
    /// # Errors
    ///
    /// See [`SequentialSimulator::step`].
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatches.
    pub fn step_n(&mut self, sequence: &[Vec<bool>]) -> Result<Vec<CycleSnapshot>, NetlistError> {
        let mut snapshots = Vec::with_capacity(sequence.len());
        for inputs in sequence {
            self.step(inputs)?;
            snapshots.push(CycleSnapshot {
                outputs: self.outputs().expect("step stores values"),
                state: self.state.clone(),
            });
        }
        Ok(snapshots)
    }

    /// Runs a whole input sequence, returning the primary-output values
    /// after each cycle. Thin wrapper over [`SequentialSimulator::step_n`];
    /// use that when the flop states are wanted too.
    ///
    /// # Errors
    ///
    /// See [`SequentialSimulator::step`].
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatches.
    pub fn run_sequence(&mut self, sequence: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, NetlistError> {
        Ok(self
            .step_n(sequence)?
            .into_iter()
            .map(|snap| snap.outputs)
            .collect())
    }
}

/// One cycle of a [`SequentialSimulator::step_n`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSnapshot {
    /// Primary-output values after combinational settling, in
    /// `outputs()` order.
    pub outputs: Vec<bool>,
    /// Flop states after the clock edge, in `dffs()` order.
    pub state: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    /// 2-bit counter that increments while `en` is high.
    const COUNTER2: &str = "\
INPUT(en)
OUTPUT(q1)
d0 = XOR(en, q0)
c0 = AND(en, q0)
d1 = XOR(c0, q1)
q0 = DFF(d0)
q1 = DFF(d1)
";

    #[test]
    fn counter_counts() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = SequentialSimulator::new(&nl).unwrap();
        let mut observed = Vec::new();
        for _ in 0..5 {
            sim.step(&[true]).unwrap();
            let s = sim.state();
            observed.push(u8::from(s[0]) + 2 * u8::from(s[1]));
        }
        assert_eq!(observed, vec![1, 2, 3, 0, 1]);
    }

    #[test]
    fn enable_low_holds_state() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = SequentialSimulator::new(&nl).unwrap();
        sim.step(&[true]).unwrap();
        let snapshot = sim.state().to_vec();
        for _ in 0..3 {
            sim.step(&[false]).unwrap();
        }
        assert_eq!(sim.state(), &snapshot[..]);
    }

    #[test]
    fn set_state_and_reset() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = SequentialSimulator::new(&nl).unwrap();
        sim.set_state(&[true, true]);
        sim.step(&[true]).unwrap();
        assert_eq!(sim.state(), &[false, false], "3 + 1 wraps to 0");
        sim.reset();
        assert_eq!(sim.state(), &[false, false]);
        assert!(sim.value(nl.find("d0").unwrap()).is_none());
    }

    #[test]
    fn run_sequence_reports_outputs_per_cycle() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = SequentialSimulator::new(&nl).unwrap();
        let seq: Vec<Vec<bool>> = vec![vec![true]; 4];
        let outs = sim.run_sequence(&seq).unwrap();
        assert_eq!(outs.len(), 4);
        // q1 (PO) over cycles: reading *pre-edge* q1 each cycle: 0,0,1,1.
        let q1_trace: Vec<bool> = outs.iter().map(|o| o[0]).collect();
        assert_eq!(q1_trace, vec![false, false, true, true]);
    }

    #[test]
    fn step_n_snapshots_outputs_and_state() {
        let nl = bench::parse(COUNTER2, "cnt").unwrap();
        let mut sim = SequentialSimulator::new(&nl).unwrap();
        let seq: Vec<Vec<bool>> = vec![vec![true]; 4];
        let snaps = sim.step_n(&seq).unwrap();
        // Post-edge counter values 1, 2, 3, 0.
        let counts: Vec<u8> = snaps
            .iter()
            .map(|s| u8::from(s.state[0]) + 2 * u8::from(s.state[1]))
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 0]);
        // Snapshots agree with the final simulator state and outputs.
        assert_eq!(snaps.last().unwrap().state, sim.state());
        assert_eq!(snaps.last().unwrap().outputs, sim.outputs().unwrap());
    }

    #[test]
    fn combinational_netlist_works_with_zero_state() {
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let mut sim = SequentialSimulator::new(&nl).unwrap();
        sim.step(&[false]).unwrap();
        assert_eq!(sim.value(nl.find("y").unwrap()), Some(true));
    }
}
