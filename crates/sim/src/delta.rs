//! Event-driven incremental re-simulation.
//!
//! A [`DeltaSim`] session holds a base evaluation of a compiled
//! [`SimProgram`] and re-simulates only the fanout cones of inputs that
//! changed since the last call, instead of re-walking the whole tape.
//! This is the right tool for the framework's *query-heavy* clients —
//! MERO's hill-climb flips one input bit per candidate, cube validation
//! changes a handful of care bits — where a full run recomputes
//! thousands of gates to learn that three of them moved.
//!
//! # Algorithm
//!
//! The session keeps a consumer index (CSR: for every node, the tape
//! steps that read it) and a per-step *dirty word mask* (which packed
//! 64-pattern words of the step's inputs changed). [`DeltaSim::propagate`]
//! seeds the masks from the staged input edits (an XOR against the
//! stored base tells exactly which words moved), then sweeps the
//! levelized tape bucket by bucket: every scheduled step re-evaluates
//! only its dirty words via a safe scalar interpreter, and only words
//! whose value actually changed schedule the step's own consumers.
//! Because a consumer always sits at a strictly higher logic level than
//! its producer, one ascending sweep settles the whole cone — no
//! iteration, no worklist re-entry.
//!
//! # Fallback
//!
//! Cone propagation loses to the bit-parallel full kernel once the
//! frontier stops being sparse: the full run's per-step cost is a few
//! unchecked wide-word ops, the delta path's is checked scalar
//! evaluation plus scheduling. When the number of scheduled steps
//! exceeds a configurable fraction of the tape (default 25 %), the
//! session abandons the sweep, clears its scratch, and re-runs the full
//! kernel — correctness is never at stake, only which executor wins.
//! The `sim.delta_runs` / `sim.delta_fallbacks` / `sim.delta_steps`
//! counters and the `sim.delta_dirty_frontier` / `sim.delta_fallback_rate`
//! gauges make the crossover observable in run reports.

use htforge_netlist::netlist::NodeId;

use crate::patterns::PatternSet;
use crate::program::SimProgram;
use crate::simulator::NodeValues;

/// How one [`DeltaSim::propagate`] call resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The dirty cones were swept incrementally; `step_words` is the
    /// number of (step, word) evaluations performed — compare against
    /// `steps() × words_per_node` for the full-run cost it replaced.
    Incremental {
        /// Dirty (step, word) pairs re-evaluated.
        step_words: usize,
    },
    /// The dirty frontier crossed the fallback threshold and the full
    /// kernel re-ran instead. The session state is exactly as if the
    /// full run had been requested directly.
    FullFallback,
}

#[derive(Debug)]
struct DeltaMetrics {
    runs: htforge_obs::Counter,
    fallbacks: htforge_obs::Counter,
    step_words: htforge_obs::Counter,
    frontier: htforge_obs::Gauge,
    fallback_rate: htforge_obs::Gauge,
}

impl DeltaMetrics {
    fn from_global() -> Self {
        DeltaMetrics {
            runs: htforge_obs::counter("sim.delta_runs"),
            fallbacks: htforge_obs::counter("sim.delta_fallbacks"),
            step_words: htforge_obs::counter("sim.delta_steps"),
            frontier: htforge_obs::gauge("sim.delta_dirty_frontier"),
            fallback_rate: htforge_obs::gauge("sim.delta_fallback_rate"),
        }
    }
}

/// An incremental re-simulation session over one compiled program.
///
/// Construction ([`SimProgram::delta_sim`]) pays one full evaluation and
/// one consumer-index build; every subsequent
/// [`propagate`](DeltaSim::propagate) costs only the changed cones (or
/// one full run, past the fallback threshold).
///
/// # Examples
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::{DeltaOutcome, PatternSet, SimProgram};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let prog = SimProgram::compile(&nl)?;
/// let mut sim = prog.delta_sim(PatternSet::zeros(2, 1));
/// let y = nl.find("y").unwrap();
/// assert!(!sim.value(y, 0));
/// sim.set_input(0, 0, true);
/// sim.set_input(1, 0, true);
/// sim.propagate();
/// assert!(sim.value(y, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeltaSim<'p> {
    prog: &'p SimProgram,
    patterns: PatternSet,
    len: usize,
    words_per_node: usize,
    tail_mask: u64,
    /// Node-major base values, stride `words_per_node` — the same layout
    /// as [`NodeValues`], edited in place.
    values: Vec<u64>,
    /// Input node per pattern-column position.
    input_nodes: Vec<NodeId>,
    /// CSR consumer index: steps reading node `n` are
    /// `cons[cons_offs[n]..cons_offs[n + 1]]`.
    cons_offs: Vec<u32>,
    cons: Vec<u32>,
    /// Level-bucket index of every step (index into the level plan's
    /// ranges, so buckets are processed in ascending level order).
    step_bucket: Vec<u32>,
    /// Words per per-step dirty mask row.
    mask_stride: usize,
    /// Per-step dirty word masks, stride `mask_stride`.
    step_mask: Vec<u64>,
    /// Whether a step currently sits in a bucket.
    scheduled: Vec<bool>,
    /// Scheduled steps per level bucket.
    buckets: Vec<Vec<u32>>,
    /// Input columns edited since the last propagate (deduplicated).
    touched: Vec<u32>,
    touched_flag: Vec<bool>,
    /// Scheduled-step count past which propagate falls back to the full
    /// kernel.
    max_dirty_steps: usize,
    runs: u64,
    fallbacks: u64,
    metrics: DeltaMetrics,
}

/// Marks word `w` of `node` dirty: sets the bit in every consumer's
/// mask row and enqueues newly dirty consumers into their level bucket.
/// Free function over split field borrows so callers can hold the value
/// buffer and the scheduling scratch simultaneously.
#[allow(clippy::too_many_arguments)]
fn schedule(
    cons_offs: &[u32],
    cons: &[u32],
    step_bucket: &[u32],
    mask_stride: usize,
    step_mask: &mut [u64],
    scheduled: &mut [bool],
    buckets: &mut [Vec<u32>],
    total: &mut usize,
    node: usize,
    w: usize,
) {
    let (lo, hi) = (cons_offs[node] as usize, cons_offs[node + 1] as usize);
    for &s in &cons[lo..hi] {
        let s = s as usize;
        step_mask[s * mask_stride + w / 64] |= 1u64 << (w % 64);
        if !scheduled[s] {
            scheduled[s] = true;
            *total += 1;
            buckets[step_bucket[s] as usize].push(s as u32);
        }
    }
}

impl SimProgram {
    /// Opens an incremental re-simulation session seeded with a full
    /// evaluation of `patterns`.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the compiled
    /// netlist's input count.
    #[must_use]
    pub fn delta_sim(&self, patterns: PatternSet) -> DeltaSim<'_> {
        DeltaSim::new(self, patterns)
    }
}

impl<'p> DeltaSim<'p> {
    /// Default fallback threshold: propagate gives up once more than
    /// this fraction of the tape's steps is scheduled. At 25 % dirty the
    /// checked scalar sweep (evaluate + schedule + mask bookkeeping per
    /// step-word) already costs about as much as the unchecked
    /// bit-parallel kernel over the *whole* tape, so pushing further
    /// only loses; well below it the sweep wins by orders of magnitude.
    pub const DEFAULT_FALLBACK_FRACTION: f64 = 0.25;

    /// Opens a session over `prog` (see [`SimProgram::delta_sim`]).
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the program's
    /// input count.
    #[must_use]
    pub fn new(prog: &'p SimProgram, patterns: PatternSet) -> Self {
        assert_eq!(
            patterns.num_inputs(),
            prog.num_inputs(),
            "pattern width does not match netlist input count"
        );
        let len = patterns.len();
        let words_per_node = PatternSet::words_for(len);
        let tail_mask = PatternSet::tail_mask(len);
        let node_count = prog.node_count();
        let steps = prog.steps();

        let values = prog.run(&patterns).into_raw_words();

        // input_positions is built by enumerating nl.inputs(), so the
        // column position of entry i is i.
        let input_nodes: Vec<NodeId> = prog.input_positions.iter().map(|&(n, _)| n).collect();
        debug_assert!(prog
            .input_positions
            .iter()
            .enumerate()
            .all(|(i, &(_, pos))| i == pos));

        // CSR consumer index over the fanin pool.
        let mut cons_offs = vec![0u32; node_count + 1];
        for &f in &prog.pool {
            cons_offs[f as usize + 1] += 1;
        }
        for i in 0..node_count {
            cons_offs[i + 1] += cons_offs[i];
        }
        let mut cursor: Vec<u32> = cons_offs[..node_count].to_vec();
        let mut cons = vec![0u32; prog.pool.len()];
        for s in 0..steps {
            let (lo, hi) = (prog.offs[s] as usize, prog.offs[s + 1] as usize);
            for &f in &prog.pool[lo..hi] {
                let c = &mut cursor[f as usize];
                cons[*c as usize] = s as u32;
                *c += 1;
            }
        }

        let ranges = prog.level_plan().ranges();
        let mut step_bucket = vec![0u32; steps];
        for (li, &(lo, hi)) in ranges.iter().enumerate() {
            for s in lo..hi {
                step_bucket[s as usize] = li as u32;
            }
        }

        let mask_stride = words_per_node.div_ceil(64).max(1);
        let num_inputs = prog.num_inputs();
        DeltaSim {
            prog,
            patterns,
            len,
            words_per_node,
            tail_mask,
            values,
            input_nodes,
            cons_offs,
            cons,
            step_bucket,
            mask_stride,
            step_mask: vec![0u64; steps * mask_stride],
            scheduled: vec![false; steps],
            buckets: vec![Vec::new(); ranges.len()],
            touched: Vec::new(),
            touched_flag: vec![false; num_inputs],
            max_dirty_steps: Self::threshold(steps, Self::DEFAULT_FALLBACK_FRACTION),
            runs: 0,
            fallbacks: 0,
            metrics: DeltaMetrics::from_global(),
        }
    }

    fn threshold(steps: usize, fraction: f64) -> usize {
        ((steps as f64 * fraction) as usize).max(1)
    }

    /// Overrides the fallback threshold as a fraction of the tape's
    /// steps (see [`Self::DEFAULT_FALLBACK_FRACTION`]). Mostly for
    /// tests and benchmarks that want to force one path or the other.
    #[must_use]
    pub fn with_fallback_fraction(mut self, fraction: f64) -> Self {
        self.max_dirty_steps = Self::threshold(self.prog.steps(), fraction);
        self
    }

    /// Scheduled-step count past which [`Self::propagate`] re-runs the
    /// full kernel.
    #[must_use]
    pub fn fallback_threshold(&self) -> usize {
        self.max_dirty_steps
    }

    /// Number of patterns in the session.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the session simulates zero patterns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of primary-input columns.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_nodes.len()
    }

    /// The session's current input patterns (staged edits included).
    #[must_use]
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Stages one input-bit edit. Cheap; nothing propagates until
    /// [`Self::propagate`].
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_input(&mut self, input: usize, pattern: usize, value: bool) {
        self.patterns.set(input, pattern, value);
        self.touch(input);
    }

    /// Stages a whole-column overwrite with pre-packed words (tail bits
    /// are masked).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range or `words` has the wrong
    /// length.
    pub fn set_input_words(&mut self, input: usize, words: &[u64]) {
        self.patterns.set_input_words(input, words);
        self.touch(input);
    }

    fn touch(&mut self, input: usize) {
        if !self.touched_flag[input] {
            self.touched_flag[input] = true;
            self.touched.push(input as u32);
        }
    }

    /// Value of `node` in pattern `pattern` under the current base
    /// evaluation (staged-but-unpropagated edits are *not* reflected).
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= len()`.
    #[must_use]
    pub fn value(&self, node: NodeId, pattern: usize) -> bool {
        assert!(pattern < self.len, "pattern {pattern} out of range");
        let base = node.index() * self.words_per_node;
        (self.values[base + pattern / 64] >> (pattern % 64)) & 1 == 1
    }

    /// The packed words of one node under the current base evaluation.
    #[must_use]
    pub fn words(&self, node: NodeId) -> &[u64] {
        let base = node.index() * self.words_per_node;
        &self.values[base..base + self.words_per_node]
    }

    /// Snapshots the current base evaluation as [`NodeValues`] (one
    /// buffer clone).
    #[must_use]
    pub fn to_node_values(&self) -> NodeValues {
        NodeValues::from_raw(self.len, self.words_per_node, self.values.clone())
    }

    /// Propagates every staged input edit through the tape: dirty cones
    /// incrementally, or one full kernel run past the fallback
    /// threshold. Either way the session afterwards holds exactly the
    /// values a fresh full run of the current patterns would produce.
    pub fn propagate(&mut self) -> DeltaOutcome {
        htforge_obs::faultpoint!("sim.delta_propagate");
        self.runs += 1;
        self.metrics.runs.add(1);
        if self.words_per_node == 0 || self.prog.steps() == 0 {
            for &pos in &self.touched {
                self.touched_flag[pos as usize] = false;
            }
            self.touched.clear();
            // Zero-step tapes still need input rows refreshed.
            if self.words_per_node > 0 {
                for (pos, &node) in self.input_nodes.iter().enumerate() {
                    let base = node.index() * self.words_per_node;
                    self.values[base..base + self.words_per_node]
                        .copy_from_slice(self.patterns.input_words(pos));
                }
            }
            self.finish_metrics(0, 0);
            return DeltaOutcome::Incremental { step_words: 0 };
        }

        let mut frontier = 0usize;

        // Seed: XOR each touched input column against the stored base to
        // find exactly which words moved, commit the new words, and mark
        // their consumers dirty.
        {
            let DeltaSim {
                patterns,
                values,
                input_nodes,
                cons_offs,
                cons,
                step_bucket,
                mask_stride,
                step_mask,
                scheduled,
                buckets,
                touched,
                touched_flag,
                words_per_node,
                ..
            } = self;
            for &pos in touched.iter() {
                touched_flag[pos as usize] = false;
                let node = input_nodes[pos as usize];
                let base = node.index() * *words_per_node;
                let col = patterns.input_words(pos as usize);
                for (w, &new) in col.iter().enumerate() {
                    if values[base + w] != new {
                        values[base + w] = new;
                        schedule(
                            cons_offs,
                            cons,
                            step_bucket,
                            *mask_stride,
                            step_mask,
                            scheduled,
                            buckets,
                            &mut frontier,
                            node.index(),
                            w,
                        );
                    }
                }
            }
            touched.clear();
        }

        // Ascending level sweep. Consumers always sit in a strictly
        // higher bucket than their producer, so taking bucket `li` out
        // before processing it is safe: nothing is scheduled into it
        // while it runs.
        let mut step_words = 0usize;
        let mut fallback = frontier > self.max_dirty_steps;
        if !fallback {
            let prog = self.prog;
            for li in 0..self.buckets.len() {
                let bucket = std::mem::take(&mut self.buckets[li]);
                for &s in &bucket {
                    let s = s as usize;
                    self.scheduled[s] = false;
                    let dst = prog.dsts[s] as usize;
                    for mw in 0..self.mask_stride {
                        let mut m = self.step_mask[s * self.mask_stride + mw];
                        self.step_mask[s * self.mask_stride + mw] = 0;
                        while m != 0 {
                            let w = mw * 64 + m.trailing_zeros() as usize;
                            m &= m - 1;
                            let mut new =
                                prog.eval_step_word(s, &self.values, self.words_per_node, w);
                            if w == self.words_per_node - 1 {
                                new &= self.tail_mask;
                            }
                            step_words += 1;
                            let idx = dst * self.words_per_node + w;
                            if self.values[idx] != new {
                                self.values[idx] = new;
                                schedule(
                                    &self.cons_offs,
                                    &self.cons,
                                    &self.step_bucket,
                                    self.mask_stride,
                                    &mut self.step_mask,
                                    &mut self.scheduled,
                                    &mut self.buckets,
                                    &mut frontier,
                                    dst,
                                    w,
                                );
                            }
                        }
                    }
                }
                // Hand the allocation back for the next propagate.
                let mut bucket = bucket;
                bucket.clear();
                self.buckets[li] = bucket;
                if frontier > self.max_dirty_steps {
                    fallback = true;
                    break;
                }
            }
        }

        if fallback {
            self.clear_pending();
            self.fallbacks += 1;
            self.metrics.fallbacks.add(1);
            self.values = self.prog.run(&self.patterns).into_raw_words();
            self.finish_metrics(step_words, frontier);
            return DeltaOutcome::FullFallback;
        }
        self.finish_metrics(step_words, frontier);
        DeltaOutcome::Incremental { step_words }
    }

    /// Clears every scheduled step's mask and flag (fallback path: the
    /// full run supersedes whatever the sweep had left to do).
    fn clear_pending(&mut self) {
        let DeltaSim {
            buckets,
            scheduled,
            step_mask,
            mask_stride,
            ..
        } = self;
        for bucket in buckets.iter_mut() {
            for &s in bucket.iter() {
                let s = s as usize;
                scheduled[s] = false;
                step_mask[s * *mask_stride..(s + 1) * *mask_stride].fill(0);
            }
            bucket.clear();
        }
    }

    fn finish_metrics(&self, step_words: usize, frontier: usize) {
        self.metrics.step_words.add(step_words as u64);
        self.metrics.frontier.set(frontier as f64);
        self.metrics
            .fallback_rate
            .set(self.fallbacks as f64 / self.runs as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    fn c17() -> htforge_netlist::Netlist {
        htforge_netlist::bench::parse(C17, "c17").unwrap()
    }

    /// Every node must match a fresh full run of the session's patterns.
    fn assert_matches_full(sim: &DeltaSim<'_>, prog: &SimProgram, label: &str) {
        let full = prog.run(sim.patterns());
        for node in 0..prog.node_count() {
            let id = NodeId::from_index(node);
            assert_eq!(sim.words(id), full.words(id), "{label}: node {node}");
        }
    }

    #[test]
    fn single_bit_flips_track_full_runs() {
        let nl = c17();
        let prog = SimProgram::compile(&nl).unwrap();
        let mut sim = prog.delta_sim(PatternSet::zeros(5, 70));
        for i in 0..5 {
            for p in [0usize, 63, 64, 69] {
                sim.set_input(i, p, true);
                sim.propagate();
                assert_matches_full(&sim, &prog, &format!("set {i}/{p}"));
                sim.set_input(i, p, false);
                sim.propagate();
                assert_matches_full(&sim, &prog, &format!("clear {i}/{p}"));
            }
        }
    }

    #[test]
    fn noop_edit_recomputes_nothing() {
        let nl = c17();
        let prog = SimProgram::compile(&nl).unwrap();
        let mut sim = prog.delta_sim(PatternSet::zeros(5, 8));
        sim.set_input(0, 3, false); // already false
        let outcome = sim.propagate();
        assert_eq!(outcome, DeltaOutcome::Incremental { step_words: 0 });
    }

    #[test]
    fn wide_frontier_falls_back_to_full_run() {
        let nl = c17();
        let prog = SimProgram::compile(&nl).unwrap();
        // Threshold of one scheduled step: flipping input 3 (fans out to
        // two NANDs) must trip the fallback.
        let mut sim = prog
            .delta_sim(PatternSet::zeros(5, 4))
            .with_fallback_fraction(0.0);
        assert_eq!(sim.fallback_threshold(), 1);
        sim.set_input(2, 0, true);
        assert_eq!(sim.propagate(), DeltaOutcome::FullFallback);
        assert_matches_full(&sim, &prog, "post-fallback");
        // The session stays consistent afterwards: a no-op propagate
        // stays incremental, a real edit keeps tracking full runs.
        sim.set_input(0, 1, true);
        sim.propagate();
        assert_matches_full(&sim, &prog, "post-fallback edit");
    }

    #[test]
    fn column_overwrite_tracks_full_runs() {
        let nl = c17();
        let prog = SimProgram::compile(&nl).unwrap();
        let mut sim = prog.delta_sim(PatternSet::zeros(5, 100));
        sim.set_input_words(3, &[u64::MAX, u64::MAX]);
        sim.propagate();
        assert_matches_full(&sim, &prog, "column overwrite");
        // Tail bits beyond pattern 99 must stay masked.
        let y = nl.find("23").unwrap();
        let ones: u64 = sim.words(y).iter().map(|w| u64::from(w.count_ones())).sum();
        assert!(ones <= 100, "tail leaked: {ones}");
    }

    #[test]
    fn zero_pattern_session_is_inert() {
        let nl = c17();
        let prog = SimProgram::compile(&nl).unwrap();
        let mut sim = prog.delta_sim(PatternSet::zeros(5, 0));
        assert!(sim.is_empty());
        assert_eq!(sim.propagate(), DeltaOutcome::Incremental { step_words: 0 });
    }
}
