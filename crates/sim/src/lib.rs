//! Logic simulation substrate for `htforge`.
//!
//! Provides the functional-simulation machinery the paper's framework is
//! built on (§III-B):
//!
//! * [`patterns`] — bit-packed input pattern sets and random generation,
//! * [`simulator`] — 64-way bit-parallel 2-valued simulation,
//! * [`delta`] — event-driven incremental re-simulation (dirty-cone
//!   propagation over the levelized tape, with full-run fallback),
//! * [`tri`] — three-valued (0/1/X) logic and cube simulation,
//! * [`prob`] — signal-probability estimation,
//! * [`rare`] — **rare-node extraction, paper Algorithm 1**,
//! * [`sequential`] — cycle-accurate (non-scan) simulation for
//!   sequential trojans,
//! * [`seq_batch`] — batched sequential stepping: 64 independent
//!   functional traces per machine word, with per-trace first-fire-cycle
//!   extraction for trigger/detection latency statistics.
//!
//! # Examples
//!
//! Extract rare nodes from a circuit with a 20 % threshold, the
//! hyper-parameter selected in §IV-A of the paper:
//!
//! ```
//! use htforge_netlist::bench;
//! use htforge_sim::{PatternSet, RareNodeExtractor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
//! let vectors = PatternSet::random(nl.inputs().len(), 10_000, 0xC0FFEE);
//! let rare = RareNodeExtractor::new(0.20).extract(&nl, &vectors)?;
//! // The AND output is 1 about 25 % of the time — not rare at θ = 20 %.
//! assert!(rare.iter().all(|r| r.node != nl.find("y").unwrap()));
//! # Ok(())
//! # }
//! ```

pub mod delta;
pub mod patterns;
pub mod prob;
pub mod program;
pub mod rare;
pub mod seq_batch;
pub mod sequential;
pub mod simulator;
pub mod tri;

pub use delta::{DeltaOutcome, DeltaSim};
pub use patterns::PatternSet;
pub use program::{KernelPlan, KernelStrategy, LevelPlan, SimProgram};
pub use rare::{RareNode, RareNodeExtractor, RareNodeSet};
pub use seq_batch::{BatchedSequentialSimulator, FirstFireMonitor};
pub use sequential::{CycleSnapshot, SequentialSimulator};
pub use simulator::{NodeValues, Simulator};
pub use tri::Tri;
