//! Compiled, multi-threaded bit-parallel simulation kernel.
//!
//! [`SimProgram`] lowers a [`Netlist`] **once** into a flat instruction
//! tape and then evaluates pattern sets against that tape, instead of
//! re-walking the graph gate-by-gate the way the original interpreter
//! did. Three properties make the tape fast:
//!
//! * **SoA layout, no per-gate allocation.** The tape is four parallel
//!   arrays — opcode, destination, fanin offset, and one contiguous
//!   fanin-index pool — so the inner loop is a linear scan with no enum
//!   dispatch over [`NodeKind`](htforge_netlist::NodeKind), no `Vec`
//!   scratch per gate, and specialized opcodes for the 1- and 2-input
//!   gates that dominate real netlists.
//! * **Column parallelism.** Values are packed 64 patterns per word, and
//!   the word *columns* of a pattern set are fully independent: word `w`
//!   of every node depends only on word `w` of its fanins. With enough
//!   columns the kernel splits them across scoped [`std::thread`]
//!   workers with zero synchronization inside the hot loop.
//! * **Level parallelism.** The tape is emitted in *levelized* order
//!   (still topological), and [`SimProgram::compile`] records the step
//!   range of every logic level as a [`LevelPlan`]. All gates of one
//!   level are independent — every fanin lives at a strictly lower
//!   level — so workers can split a level's steps between them over one
//!   shared buffer and meet at a barrier before the next level. This is
//!   what parallelizes the *small-batch* workloads (≤64 vectors, one
//!   word per node) where column splitting is impossible by
//!   construction: MERO-style refinement, per-cube simulation, and
//!   every cycle of the batched sequential stepper.
//!
//! [`SimProgram::run_with_threads`] consults a planner
//! ([`SimProgram::plan`]) that picks column-parallel (words ≥ threads),
//! level-parallel (one word, wide levels), a hybrid (each column group
//! runs level-parallel), or plain single-threaded execution, and reports
//! the choice through the `sim.kernel_strategy` /
//! `sim.kernel_threads_effective` gauges plus `sim.kernel_run` span
//! attributes. All strategies are bit-identical — proven per node/word
//! by `tests/differential_sim.rs` and `tests/differential_seq.rs`.
//!
//! The public [`crate::simulator::Simulator`] API is a thin wrapper over
//! this kernel, so every existing caller — rare-node extraction, signal
//! probabilities, MERO / ND-ATPG / random detection, coverage
//! evaluation, fault simulation's good-machine run — upgrades without
//! code changes.

use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError, NodeKind};

use crate::patterns::PatternSet;
use crate::simulator::NodeValues;

/// Opcode of one tape step. 1- and 2-input gates get dedicated opcodes
/// (the common case in technology-mapped netlists); wider gates fall
/// back to the `*N` fold forms driven by the fanin pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpCode {
    /// Unary complement (also NAND/NOR/XNOR of one input).
    Not,
    /// Unary copy (also AND/OR/XOR of one input).
    Buf,
    And2,
    Nand2,
    Or2,
    Nor2,
    Xor2,
    Xnor2,
    AndN,
    NandN,
    OrN,
    NorN,
    XorN,
    XnorN,
}

/// How one kernel run distributes its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStrategy {
    /// One thread walks the whole tape (small workloads, where spawn
    /// and synchronization overhead dominate).
    Single,
    /// Word columns split across workers; no synchronization inside the
    /// run (many-word pattern sets).
    Column,
    /// Each logic level's steps split across workers sharing one
    /// buffer, with a barrier between levels (one-word pattern sets on
    /// wide netlists).
    Level,
    /// Column groups, each running level-parallel over its own columns
    /// (a few words, more threads than words).
    Hybrid,
}

impl KernelStrategy {
    /// Stable lowercase name (span attribute / bench row value).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelStrategy::Single => "single",
            KernelStrategy::Column => "column",
            KernelStrategy::Level => "level",
            KernelStrategy::Hybrid => "hybrid",
        }
    }

    /// Numeric encoding for the `sim.kernel_strategy` gauge:
    /// 1 = single, 2 = column, 3 = level, 4 = hybrid.
    #[must_use]
    pub fn code(self) -> f64 {
        match self {
            KernelStrategy::Single => 1.0,
            KernelStrategy::Column => 2.0,
            KernelStrategy::Level => 3.0,
            KernelStrategy::Hybrid => 4.0,
        }
    }
}

/// The planner's decision for one run: which strategy, how many workers
/// actually execute, how many the caller asked for, and the wide-lane
/// block width the column executor will use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPlan {
    /// Chosen execution strategy.
    pub strategy: KernelStrategy,
    /// Workers that will actually run (the *effective* parallelism —
    /// may be below the request when columns or levels are too narrow).
    pub workers: usize,
    /// The caller's requested thread count, before any clamping.
    pub requested: usize,
    /// Data-plane width of the column executor's tape walks, in words:
    /// 1, 4 or 8 means every walk runs the monomorphized fixed-width
    /// body (`[u64; W]` per step). For planner-chosen runs that happens
    /// exactly when a worker's whole span is 1, 4 or 8 words wide — the
    /// planner never *tiles* a wider span into blocks, because the
    /// block-major↔node-major conversion is page-scatter-bound and
    /// loses to one streaming walk at every measured shape (see
    /// `DESIGN.md`). Forced runs ([`SimProgram::run_with_lanes`]) do
    /// tile: 4/8 is the wide `[u64; W]` block plane, 1 the narrow
    /// one-word-per-step plane (the honest W = 1 baseline the bench
    /// rows compare against). 0 means the runtime-width walk over the
    /// whole per-worker span. Level and hybrid runs always report 0.
    pub lanes: usize,
}

/// The levelized structure of a compiled tape: per-level `[lo, hi)`
/// step ranges, in ascending level order (empty levels are skipped).
///
/// Because the tape is emitted level-sorted, the ranges tile
/// `0..steps()` exactly; the level executor hands each worker a
/// balanced contiguous slice of every range.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    ranges: Vec<(u32, u32)>,
}

impl LevelPlan {
    /// Number of (non-empty) logic levels.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.ranges.len()
    }

    /// Per-level `[step_lo, step_hi)` ranges into the tape.
    #[must_use]
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Gate count of the widest level.
    #[must_use]
    pub fn widest(&self) -> usize {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo) as usize)
            .max()
            .unwrap_or(0)
    }
}

/// A netlist compiled to a flat simulation tape.
///
/// # Examples
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::{PatternSet, SimProgram};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "t")?;
/// let prog = SimProgram::compile(&nl)?;
/// let ps = PatternSet::from_vectors(2, &[vec![true, false], vec![true, true]]);
/// let vals = prog.run(&ps);
/// let y = nl.find("y").unwrap();
/// assert!(vals.value(y, 0));
/// assert!(!vals.value(y, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimProgram {
    node_count: usize,
    /// `(node, column index into the PatternSet)` for each primary input.
    /// Crate-visible so [`crate::delta::DeltaSim`] can seed dirty cones
    /// straight from input columns.
    pub(crate) input_positions: Vec<(NodeId, usize)>,
    /// Per-step opcode, in level-sorted topological order.
    ops: Vec<OpCode>,
    /// Per-step destination node index (crate-visible for the delta
    /// executor's change detection).
    pub(crate) dsts: Vec<u32>,
    /// Per-step offset into `pool`; length `ops.len() + 1` so step `s`
    /// reads `pool[offs[s]..offs[s + 1]]`.
    pub(crate) offs: Vec<u32>,
    /// Contiguous fanin node indices for every step.
    pub(crate) pool: Vec<u32>,
    /// Levelized step ranges for the level-parallel executor.
    levels: LevelPlan,
    /// Observability handles, fetched once at compile time so each run
    /// records with one atomic add (`sim.kernel_words`) plus two gauge
    /// stores, and — only when the recorder is enabled — a throughput
    /// gauge update and a `sim.kernel_run` span.
    metrics: KernelMetrics,
}

#[derive(Debug, Clone)]
struct KernelMetrics {
    words: htforge_obs::Counter,
    throughput: htforge_obs::Gauge,
    /// Last run's [`KernelStrategy::code`].
    strategy: htforge_obs::Gauge,
    /// Last run's effective worker count (vs the caller's request,
    /// which goes on the `sim.kernel_run` span) — makes the "1-core CI
    /// container" caveat machine-detectable in run reports.
    threads_effective: htforge_obs::Gauge,
    /// Last run's wide-lane block width ([`KernelPlan::lanes`]).
    lanes: htforge_obs::Gauge,
    /// The host's available parallelism, set alongside the throughput
    /// and thread gauges so a `sim.kernel_words_per_sec` reading from a
    /// single-core CI container is machine-distinguishable from a
    /// many-core host number (matches the `host_threads` column of the
    /// `BENCH_sim.json` rows).
    host_threads: htforge_obs::Gauge,
}

impl KernelMetrics {
    fn from_global() -> Self {
        KernelMetrics {
            words: htforge_obs::counter("sim.kernel_words"),
            throughput: htforge_obs::gauge("sim.kernel_words_per_sec"),
            strategy: htforge_obs::gauge("sim.kernel_strategy"),
            threads_effective: htforge_obs::gauge("sim.kernel_threads_effective"),
            lanes: htforge_obs::gauge("sim.kernel_lanes"),
            host_threads: htforge_obs::gauge("sim.host_threads"),
        }
    }
}

/// The host's available hardware parallelism (1 when unknown).
fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A raw view of the shared node-major value buffer, passed to level
/// workers. Plain `&mut [u64]` splitting cannot express the level
/// executor's access pattern (each worker writes the *non-contiguous*
/// destination rows of its step slice), so workers get the base pointer
/// and the safety argument lives at the spawn site.
#[derive(Clone, Copy)]
struct SharedWords {
    ptr: *mut u64,
    len: usize,
}

// SAFETY: `SharedWords` is only handed to scoped workers whose step
// slices touch disjoint `u64` elements between barriers (see
// `run_levels`); the buffer outlives the scope.
unsafe impl Send for SharedWords {}
unsafe impl Sync for SharedWords {}

/// The column window one executor call operates on: node `n`, column
/// `k` (`k < width`) lives at `buf[n * stride + col0 + k]`.
#[derive(Clone, Copy)]
struct ColumnWindow {
    stride: usize,
    col0: usize,
    width: usize,
    /// Tail mask for the window's last column, when that column is the
    /// final (partially filled) word of the pattern set.
    mask: Option<u64>,
}

/// One group of the level executor: workers `0..workers` cooperate on
/// columns `[w0, w0 + width)` with a barrier per level. The hybrid
/// strategy runs one group per column; pure level mode runs one group
/// over all columns.
#[derive(Clone, Copy)]
struct LevelGroup {
    w0: usize,
    width: usize,
    workers: usize,
}

/// Sense-reversing spin barrier for the level executor. Levels are
/// microseconds apart, so parking on a mutex/condvar
/// ([`std::sync::Barrier`]) would dominate the compute; spinning (with
/// a yield fallback for oversubscribed hosts) keeps the inter-level gap
/// in the nanoseconds.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arriver: reset the count *before* releasing the
            // generation, so waiters entering the next round see zero.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(generation + 1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl SimProgram {
    /// Lowers `nl` into a simulation tape (level-sorted topological
    /// order, SoA arrays, specialized opcodes) and records the
    /// [`LevelPlan`] the level-parallel executor needs.
    ///
    /// Sequential netlists are accepted under the same convention as
    /// [`crate::simulator::Simulator`]: DFF Q outputs listed in
    /// `nl.inputs()` (scan-cut netlists) are free inputs; other DFF
    /// outputs simulate as constant 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part of `nl` is cyclic.
    pub fn compile(nl: &Netlist) -> Result<Self, NetlistError> {
        // The netlist caches its level column; `level_order` is a
        // counting sort over it — already level-sorted, ties in id
        // order. Since every fanin of a level-L gate sits at a level
        // < L, the level-sorted tape is a valid topological order for
        // the sequential executors.
        let level = nl.levels()?;
        let node_count = nl.node_count();
        let input_positions: Vec<(NodeId, usize)> = nl
            .inputs()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, pos))
            .collect();

        let steps: Vec<NodeId> = nl
            .level_order()?
            .into_iter()
            .filter(|&id| matches!(nl.node(id).kind(), NodeKind::Gate(_)))
            .collect();

        let mut ops = Vec::with_capacity(steps.len());
        let mut dsts = Vec::with_capacity(steps.len());
        let mut offs = vec![0u32];
        let mut pool: Vec<u32> = Vec::new();

        for &id in &steps {
            let node = nl.node(id);
            let kind = match node.kind() {
                NodeKind::Gate(k) => k,
                NodeKind::Input | NodeKind::Dff => unreachable!("steps are gates"),
            };
            let fanins = node.fanins();
            let op = match fanins.len() {
                1 => {
                    if kind.is_inverting() {
                        OpCode::Not
                    } else {
                        OpCode::Buf
                    }
                }
                2 => {
                    use htforge_netlist::GateKind as G;
                    match kind {
                        G::And => OpCode::And2,
                        G::Nand => OpCode::Nand2,
                        G::Or => OpCode::Or2,
                        G::Nor => OpCode::Nor2,
                        G::Xor => OpCode::Xor2,
                        G::Xnor => OpCode::Xnor2,
                        // Unary kinds never have two fanins (validated
                        // by the netlist), but stay total anyway.
                        G::Not => OpCode::Not,
                        G::Buf => OpCode::Buf,
                    }
                }
                _ => {
                    use htforge_netlist::GateKind as G;
                    match kind {
                        G::And => OpCode::AndN,
                        G::Nand => OpCode::NandN,
                        G::Or => OpCode::OrN,
                        G::Nor => OpCode::NorN,
                        G::Xor => OpCode::XorN,
                        G::Xnor => OpCode::XnorN,
                        G::Not => OpCode::Not,
                        G::Buf => OpCode::Buf,
                    }
                }
            };
            ops.push(op);
            dsts.push(id.index() as u32);
            pool.extend(fanins.iter().map(|f| f.index() as u32));
            offs.push(pool.len() as u32);
        }

        // Per-level [lo, hi) step ranges over the now level-sorted tape.
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut lo = 0usize;
        for s in 1..=steps.len() {
            if s == steps.len() || level[steps[s].index()] != level[steps[lo].index()] {
                ranges.push((lo as u32, s as u32));
                lo = s;
            }
        }

        // Kernel safety invariant: every node index on the tape is in
        // bounds, so the hot loop can use unchecked accesses.
        assert!(
            pool.iter().all(|&f| (f as usize) < node_count),
            "fanin index out of bounds"
        );
        assert!(
            dsts.iter().all(|&d| (d as usize) < node_count),
            "destination index out of bounds"
        );

        Ok(SimProgram {
            node_count,
            input_positions,
            ops,
            dsts,
            offs,
            pool,
            levels: LevelPlan { ranges },
            metrics: KernelMetrics::from_global(),
        })
    }

    /// Number of nodes in the compiled netlist.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of compiled gate steps.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.ops.len()
    }

    /// Number of primary-input columns the program expects.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_positions.len()
    }

    /// The levelized step ranges recorded at compile time.
    #[must_use]
    pub fn level_plan(&self) -> &LevelPlan {
        &self.levels
    }

    /// Simulates `patterns`, choosing a thread count automatically:
    /// single-threaded for small workloads (where spawn overhead
    /// dominates), [`std::thread::available_parallelism`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the compiled
    /// netlist's input count.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet) -> NodeValues {
        self.run_with_threads(patterns, self.default_threads(patterns.len()))
    }

    /// The automatic thread count [`SimProgram::run`] would use for a
    /// `len`-pattern set.
    #[must_use]
    pub fn default_threads(&self, len: usize) -> usize {
        let words = PatternSet::words_for(len);
        if words == 0 {
            return 1;
        }
        let avail = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        if words >= 4 {
            // Column regime. Below ~2^15 word-gate evaluations a spawn
            // costs more than it saves.
            if self.steps().saturating_mul(words) < (1 << 15) {
                1
            } else {
                avail.min(words)
            }
        } else {
            // Small-batch regime: only a level split can use extra
            // workers, and its barriers only pay off on deep tapes.
            if self.steps() >= Self::LEVEL_AUTO_MIN_STEPS {
                avail
            } else {
                1
            }
        }
    }

    /// Below this many tape steps the automatic heuristic keeps
    /// small-word runs single-threaded (per-level barrier overhead
    /// would eat the split's gain on shallow netlists).
    const LEVEL_AUTO_MIN_STEPS: usize = 4096;

    /// Target byte size of the wide-lane executor's dense scratch tile
    /// (≈ the L2 size on current parts): wide enough to amortize the
    /// per-node tile entry/exit copies, small enough that the walks'
    /// whole working set stays cache-resident.
    const LANE_TILE_BYTES: usize = 1 << 20;

    /// The data-plane width the tape walk will use for a per-worker
    /// chunk of `chunk` words (see [`KernelPlan::lanes`]): chunks of
    /// exactly 1, 4 or 8 words dispatch to the monomorphized
    /// fixed-width walk; any other width runs the runtime-width body
    /// (reported as 0).
    ///
    /// The planner never tiles a wider chunk into `[u64; W]` blocks:
    /// measured on the reference runner, the blocked executor's
    /// block-major↔node-major conversion is page-scatter-bound and
    /// loses to the streaming unblocked walk at every shape, even for
    /// buffers hundreds of MB past cache (see `DESIGN.md`). Forced
    /// wide-lane runs stay available via
    /// [`SimProgram::run_with_lanes`].
    fn auto_lanes(&self, chunk: usize) -> usize {
        match chunk {
            1 | 4 | 8 => chunk,
            _ => 0,
        }
    }

    /// A level-split worker wants at least this many word-evaluations
    /// per level; narrower shares are all barrier, no compute.
    const MIN_WORDS_PER_LEVEL_WORKER: usize = 16;

    /// Most workers a level split can usefully feed: average level
    /// width divided by the per-worker minimum.
    fn max_level_workers(&self) -> usize {
        let levels = self.levels.level_count();
        if levels == 0 {
            return 1;
        }
        (self.steps() / levels) / Self::MIN_WORDS_PER_LEVEL_WORKER
    }

    /// Picks the execution strategy for a `len`-pattern run with
    /// `threads` requested workers. Pure function of the compiled tape
    /// shape — bench and tests call it to label runs.
    #[must_use]
    pub fn plan(&self, len: usize, threads: usize) -> KernelPlan {
        let words = PatternSet::words_for(len);
        let requested = threads;
        let threads = threads.max(1);
        if words == 0 || threads == 1 || self.steps() == 0 {
            return KernelPlan {
                strategy: KernelStrategy::Single,
                workers: 1,
                requested,
                lanes: self.auto_lanes(words),
            };
        }
        if words >= threads {
            // Enough columns to feed every worker — the cheapest split
            // (no synchronization at all inside the run).
            return KernelPlan {
                strategy: KernelStrategy::Column,
                workers: threads,
                requested,
                lanes: self.auto_lanes(words.div_ceil(threads)),
            };
        }
        // Fewer columns than workers: level-split each column group if
        // the levels are wide enough to amortize the barriers.
        let per_column = (threads / words).min(self.max_level_workers());
        if per_column <= 1 {
            // One column per worker: every span is exactly one word.
            let workers = words;
            return KernelPlan {
                strategy: if workers == 1 {
                    KernelStrategy::Single
                } else {
                    KernelStrategy::Column
                },
                workers,
                requested,
                lanes: self.auto_lanes(1),
            };
        }
        if words == 1 {
            KernelPlan {
                strategy: KernelStrategy::Level,
                workers: per_column,
                requested,
                lanes: 0,
            }
        } else {
            KernelPlan {
                strategy: KernelStrategy::Hybrid,
                workers: words * per_column,
                requested,
                lanes: 0,
            }
        }
    }

    /// Simulates `patterns` with `threads` requested workers, routed
    /// through the planner ([`SimProgram::plan`]). Output is
    /// bit-identical at every thread count and strategy.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the compiled
    /// netlist's input count.
    #[must_use]
    pub fn run_with_threads(&self, patterns: &PatternSet, threads: usize) -> NodeValues {
        self.run_planned(patterns, self.plan(patterns.len(), threads))
    }

    /// Simulates `patterns` forcing `strategy` (the differential suites
    /// and bench rows use this to exercise every executor on the same
    /// input; production code goes through [`SimProgram::run`] /
    /// [`SimProgram::run_with_threads`]).
    ///
    /// The worker count is still clamped to what the strategy can use:
    /// `Column` to the column count, `Hybrid` to at least one worker
    /// per column.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the compiled
    /// netlist's input count.
    #[must_use]
    pub fn run_with_strategy(
        &self,
        patterns: &PatternSet,
        strategy: KernelStrategy,
        threads: usize,
    ) -> NodeValues {
        let words = PatternSet::words_for(patterns.len());
        let requested = threads;
        let threads = threads.max(1);
        let plan = if words == 0 {
            KernelPlan {
                strategy: KernelStrategy::Single,
                workers: 1,
                requested,
                lanes: 0,
            }
        } else {
            match strategy {
                KernelStrategy::Single => KernelPlan {
                    strategy,
                    workers: 1,
                    requested,
                    lanes: self.auto_lanes(words),
                },
                KernelStrategy::Column => {
                    let workers = threads.min(words);
                    KernelPlan {
                        strategy,
                        workers,
                        requested,
                        lanes: self.auto_lanes(words.div_ceil(workers)),
                    }
                }
                KernelStrategy::Level => KernelPlan {
                    strategy,
                    workers: threads,
                    requested,
                    lanes: 0,
                },
                KernelStrategy::Hybrid => KernelPlan {
                    strategy,
                    workers: words * (threads / words).max(1),
                    requested,
                    lanes: 0,
                },
            }
        };
        self.run_planned(patterns, plan)
    }

    /// Simulates `patterns` forcing the column executor's wide-lane
    /// block width (the differential suites and bench rows use this to
    /// pit W ∈ {4, 8} against the W = 1 narrow plane on the same
    /// input; production code goes through [`SimProgram::run`], whose
    /// planner picks the width from the buffer size).
    ///
    /// `lanes = 1` is the narrow plane — every tape walk computes one
    /// `u64` per step. `lanes = 4/8` widens each walk to a fixed
    /// `[u64; W]` block. `lanes = 0` forces the unblocked plane (one
    /// variable-width walk over each worker's whole span). All widths
    /// are bit-identical; only the throughput differs.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not 0, 1, 4 or 8, or if
    /// `patterns.num_inputs()` differs from the compiled netlist's
    /// input count.
    #[must_use]
    pub fn run_with_lanes(
        &self,
        patterns: &PatternSet,
        lanes: usize,
        threads: usize,
    ) -> NodeValues {
        assert!(
            matches!(lanes, 0 | 1 | 4 | 8),
            "lane width must be 0 (unblocked), 1, 4 or 8, got {lanes}"
        );
        let words = PatternSet::words_for(patterns.len());
        let requested = threads;
        let workers = threads.max(1).min(words.max(1));
        let plan = KernelPlan {
            strategy: if workers == 1 {
                KernelStrategy::Single
            } else {
                KernelStrategy::Column
            },
            workers,
            requested,
            lanes,
        };
        self.run_planned(patterns, plan)
    }

    fn run_planned(&self, patterns: &PatternSet, plan: KernelPlan) -> NodeValues {
        assert_eq!(
            patterns.num_inputs(),
            self.input_positions.len(),
            "pattern width does not match netlist input count"
        );
        // Timing and the span only when the recorder is enabled: the
        // disabled path stays the pre-instrumentation code plus three
        // relaxed atomic stores.
        let enabled = htforge_obs::enabled();
        let started = enabled.then(std::time::Instant::now);
        let mut span = enabled.then(|| htforge_obs::span("sim.kernel_run"));

        let words_per_node = PatternSet::words_for(patterns.len());
        let values = match plan.strategy {
            KernelStrategy::Single => self.run_columns(patterns, 1, plan.lanes),
            KernelStrategy::Column => self.run_columns(patterns, plan.workers, plan.lanes),
            KernelStrategy::Level => {
                let group = LevelGroup {
                    w0: 0,
                    width: words_per_node,
                    workers: plan.workers,
                };
                self.run_levels(patterns, &[group])
            }
            KernelStrategy::Hybrid => {
                let per_column = (plan.workers / words_per_node).max(1);
                let groups: Vec<LevelGroup> = (0..words_per_node)
                    .map(|w| LevelGroup {
                        w0: w,
                        width: 1,
                        workers: per_column,
                    })
                    .collect();
                self.run_levels(patterns, &groups)
            }
        };

        let words_done = (self.steps() * words_per_node) as u64;
        self.metrics.words.add(words_done);
        self.metrics.strategy.set(plan.strategy.code());
        self.metrics.threads_effective.set(plan.workers as f64);
        self.metrics.lanes.set(plan.lanes as f64);
        self.metrics.host_threads.set(host_threads() as f64);
        if let Some(span) = &mut span {
            span.attr("strategy", plan.strategy.name());
            span.attr("threads_requested", plan.requested.to_string());
            span.attr("threads_effective", plan.workers.to_string());
            span.attr("words", words_per_node.to_string());
            span.attr("lanes", plan.lanes.to_string());
            span.attr("host_threads", host_threads().to_string());
        }
        if let Some(t0) = started {
            let dt = t0.elapsed().as_secs_f64();
            if dt > 0.0 {
                self.metrics.throughput.set(words_done as f64 / dt);
            }
        }
        values
    }

    fn run_columns(&self, patterns: &PatternSet, threads: usize, lanes: usize) -> NodeValues {
        let len = patterns.len();
        let words_per_node = PatternSet::words_for(len);
        let tail_mask = PatternSet::tail_mask(len);
        let mut words = vec![0u64; self.node_count * words_per_node];

        if words_per_node == 0 {
            return NodeValues::from_raw(len, words_per_node, words);
        }

        let threads = threads.clamp(1, words_per_node);
        if threads == 1 {
            self.exec_columns(
                patterns,
                0,
                words_per_node,
                words_per_node,
                tail_mask,
                &mut words,
                lanes,
            );
            return NodeValues::from_raw(len, words_per_node, words);
        }

        // Columns are embarrassingly parallel: give each worker a
        // contiguous column range, let it simulate into a dense local
        // buffer (stride = its chunk width), then stitch the chunks into
        // the node-major result. The stitch is a per-node contiguous
        // copy — O(nodes × words) — which is noise next to the
        // O(steps × words) simulation itself.
        let base = words_per_node / threads;
        let extra = words_per_node % threads;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut w0 = 0usize;
            for t in 0..threads {
                let chunk = base + usize::from(t < extra);
                let start = w0;
                handles.push(scope.spawn(move || {
                    let mut local = vec![0u64; self.node_count * chunk];
                    self.exec_columns(
                        patterns,
                        start,
                        chunk,
                        words_per_node,
                        tail_mask,
                        &mut local,
                        lanes,
                    );
                    (start, chunk, local)
                }));
                w0 += chunk;
            }
            for handle in handles {
                // Re-raise a worker panic with its original payload so
                // injected-fault messages survive to the caller.
                match handle.join() {
                    Ok((start, chunk, local)) => {
                        for node in 0..self.node_count {
                            let dst = node * words_per_node + start;
                            let src = node * chunk;
                            words[dst..dst + chunk].copy_from_slice(&local[src..src + chunk]);
                        }
                    }
                    Err(payload) => resume_unwind(payload),
                }
            }
        });
        NodeValues::from_raw(len, words_per_node, words)
    }

    /// Runs the tape level by level over one shared node-major buffer,
    /// one barrier-synchronized worker team per [`LevelGroup`].
    fn run_levels(&self, patterns: &PatternSet, groups: &[LevelGroup]) -> NodeValues {
        let len = patterns.len();
        let words_per_node = PatternSet::words_for(len);
        let tail_mask = PatternSet::tail_mask(len);
        let mut words = vec![0u64; self.node_count * words_per_node];
        if words_per_node == 0 {
            return NodeValues::from_raw(len, words_per_node, words);
        }

        // Input columns land in their final node-major rows before any
        // worker starts; unconnected DFF outputs stay constant 0.
        for &(node, pos) in &self.input_positions {
            let base = node.index() * words_per_node;
            words[base..base + words_per_node].copy_from_slice(patterns.input_words(pos));
        }

        let shared = SharedWords {
            ptr: words.as_mut_ptr(),
            len: words.len(),
        };
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for group in groups {
                // Each group owns a disjoint column window; inside a
                // group the per-level step split assigns each worker
                // disjoint destination rows, so no two threads ever
                // touch the same u64 between barriers.
                let barrier = Arc::new(SpinBarrier::new(group.workers));
                let poisoned = Arc::new(AtomicBool::new(false));
                for worker in 0..group.workers {
                    let barrier = Arc::clone(&barrier);
                    let poisoned = Arc::clone(&poisoned);
                    let group = *group;
                    handles.push(scope.spawn(move || {
                        self.level_worker(
                            shared,
                            group,
                            worker,
                            &barrier,
                            &poisoned,
                            words_per_node,
                            tail_mask,
                        );
                    }));
                }
            }
            for handle in handles {
                if let Err(payload) = handle.join() {
                    // Keep the first payload; the others are the same
                    // injected fault re-raised per worker.
                    first_panic.get_or_insert(payload);
                }
            }
        });
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        NodeValues::from_raw(len, words_per_node, words)
    }

    /// One level-executor worker: takes its balanced share of every
    /// level, meeting the group at the barrier in between.
    ///
    /// Panic protocol: a panicking worker would strand its teammates at
    /// the barrier forever, so each level's compute runs under
    /// `catch_unwind`; on panic the worker poisons the group, keeps
    /// attending every remaining barrier (teammates see the poison and
    /// skip their compute), and re-raises the original payload at the
    /// end so `run_levels` can propagate it.
    #[allow(clippy::too_many_arguments)]
    fn level_worker(
        &self,
        buf: SharedWords,
        group: LevelGroup,
        worker: usize,
        barrier: &SpinBarrier,
        poisoned: &AtomicBool,
        words_per_node: usize,
        tail_mask: u64,
    ) {
        let mask = (group.w0 + group.width == words_per_node && tail_mask != u64::MAX)
            .then_some(tail_mask);
        let window = ColumnWindow {
            stride: words_per_node,
            col0: group.w0,
            width: group.width,
            mask,
        };
        let mut caught: Option<Box<dyn Any + Send>> = None;
        for (li, &(lo, hi)) in self.levels.ranges.iter().enumerate() {
            if caught.is_none() && !poisoned.load(Ordering::Acquire) {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if li == 0 {
                        htforge_obs::faultpoint!("sim.level_worker");
                    }
                    let steps = (hi - lo) as usize;
                    let share = steps / group.workers;
                    let extra = steps % group.workers;
                    let my_lo = lo as usize + worker * share + worker.min(extra);
                    let my_steps = share + usize::from(worker < extra);
                    if my_steps > 0 {
                        // SAFETY: `compile` bounds-checked every tape
                        // index; workers of this group own disjoint
                        // step sub-ranges of the level (disjoint
                        // destination rows), other groups own disjoint
                        // columns, and every fanin of this level was
                        // written at a lower level — published by the
                        // previous barrier.
                        unsafe { self.exec_steps(my_lo, my_lo + my_steps, buf, window) };
                    }
                }));
                if let Err(payload) = result {
                    poisoned.store(true, Ordering::Release);
                    caught = Some(payload);
                }
            }
            barrier.wait();
        }
        if let Some(payload) = caught {
            resume_unwind(payload);
        }
    }

    /// Executes the tape over columns `[w0, w0 + chunk)` into `buf`,
    /// which is node-major with stride `chunk` (so `buf[node * chunk + k]`
    /// is column `w0 + k` of `node`). `buf` must be zero-initialized:
    /// unconnected DFF outputs read as constant 0 (reset state).
    ///
    /// With `lanes > 0` the chunk is tiled into `[u64; lanes]` blocks,
    /// each evaluated by one tape walk over a *dense* block-major
    /// scratch buffer (`node_count × lanes` words, contiguous): the
    /// walk's whole working set is `node_count × lanes × 8` bytes — one
    /// cache line per node at `lanes = 8` — so intermediate values stay
    /// cache-resident instead of streaming through the full-size buffer
    /// once per step. Widths 1/4/8 run monomorphized walks whose inner
    /// loops have compile-time trip counts. Each finished block is
    /// stitched into `buf` with per-node contiguous copies
    /// (O(nodes × chunk) total — noise next to the O(steps × chunk)
    /// simulation). `lanes == 0` (or `lanes >= chunk`) is the unblocked
    /// plane: a single variable-width walk over the whole chunk.
    #[allow(clippy::too_many_arguments)]
    fn exec_columns(
        &self,
        patterns: &PatternSet,
        w0: usize,
        chunk: usize,
        words_per_node: usize,
        tail_mask: u64,
        buf: &mut [u64],
        lanes: usize,
    ) {
        debug_assert_eq!(buf.len(), self.node_count * chunk);
        debug_assert!(w0 + chunk <= words_per_node);

        // The last global column carries the tail; only the block that
        // owns it masks anything.
        let block_mask = |k: usize, width: usize| {
            (w0 + k + width == words_per_node && tail_mask != u64::MAX).then_some(tail_mask)
        };

        if lanes == 0 || lanes >= chunk {
            for &(node, pos) in &self.input_positions {
                let src = &patterns.input_words(pos)[w0..w0 + chunk];
                let base = node.index() * chunk;
                buf[base..base + chunk].copy_from_slice(src);
            }
            let shared = SharedWords {
                ptr: buf.as_mut_ptr(),
                len: buf.len(),
            };
            let window = ColumnWindow {
                stride: chunk,
                col0: 0,
                width: chunk,
                mask: block_mask(0, chunk),
            };
            // SAFETY: single-threaded over a uniquely borrowed buffer;
            // `compile` bounds-checked every tape index against
            // node_count and `buf` spans node_count * chunk words.
            unsafe { self.exec_steps(0, self.steps(), shared, window) };
            return;
        }

        // Tile width: as many columns as keep the dense scratch around
        // the L2 size, rounded to whole blocks. The W-wide walks run
        // *inside* one tile (stride = tile, col0 = block offset) so the
        // per-node entry/exit copies — which touch one far-apart page
        // per node in the full-size buffer — are paid once per tile,
        // not once per block.
        let tile = (Self::LANE_TILE_BYTES / (self.node_count * 8).max(1))
            .div_euclid(lanes)
            .max(1)
            * lanes;
        let tile = tile.min(chunk);
        // Zeroed once: rows never written by any step (unconnected DFF
        // outputs) must read as constant 0 in every tile; every other
        // row is fully overwritten per tile before it is read.
        let mut scratch = vec![0u64; self.node_count * tile];
        let mut t0 = 0usize;
        while t0 < chunk {
            let tw = tile.min(chunk - t0);
            for &(node, pos) in &self.input_positions {
                let src = patterns.input_block(pos, w0 + t0, tw);
                let base = node.index() * tile;
                scratch[base..base + tw].copy_from_slice(src);
            }
            let shared = SharedWords {
                ptr: scratch.as_mut_ptr(),
                len: scratch.len(),
            };
            let mut k = 0usize;
            while k < tw {
                let width = lanes.min(tw - k);
                let window = ColumnWindow {
                    stride: tile,
                    col0: k,
                    width,
                    mask: block_mask(t0 + k, width),
                };
                // SAFETY: single-threaded over the uniquely borrowed
                // scratch; `compile` bounds-checked every tape index
                // and scratch spans node_count * tile words with
                // col0 + width ≤ tile. The monomorphized widths match
                // `window.width`.
                unsafe {
                    match width {
                        8 => self.exec_steps_w::<8>(0, self.steps(), shared, window),
                        4 => self.exec_steps_w::<4>(0, self.steps(), shared, window),
                        1 => self.exec_steps_w::<1>(0, self.steps(), shared, window),
                        _ => self.exec_steps(0, self.steps(), shared, window),
                    }
                }
                k += width;
            }
            for node in 0..self.node_count {
                let s0 = node * tile;
                let d0 = node * chunk + t0;
                buf[d0..d0 + tw].copy_from_slice(&scratch[s0..s0 + tw]);
            }
            t0 += tw;
        }
    }

    /// Executes tape steps `[lo, hi)` over one column window of `buf`.
    /// Shared by every strategy: the column path passes its dense local
    /// buffer (`stride = chunk, col0 = block start`), the level path the
    /// final node-major buffer (`stride = words_per_node, col0 = group
    /// start`). Runtime-width entry point; see [`Self::exec_steps_w`].
    ///
    /// # Safety
    ///
    /// Callers must guarantee that
    /// * every tape index times `window.stride` plus `window.col0 +
    ///   window.width` stays within `buf.len()` (upheld by `compile`'s
    ///   bounds assertions plus a correctly sized buffer), and
    /// * no other thread touches this window's destination elements
    ///   concurrently, and all fanin elements of steps `[lo, hi)` were
    ///   written-and-published before the call.
    unsafe fn exec_steps(&self, lo: usize, hi: usize, buf: SharedWords, window: ColumnWindow) {
        // The widths that dominate production runs get monomorphized
        // walks: 1 covers every small-batch client (MERO refinement,
        // cube validation, the level/hybrid per-column windows), 4/8
        // cover narrow column spans and the wide-lane blocks.
        match window.width {
            1 => self.exec_steps_w::<1>(lo, hi, buf, window),
            4 => self.exec_steps_w::<4>(lo, hi, buf, window),
            8 => self.exec_steps_w::<8>(lo, hi, buf, window),
            _ => self.exec_steps_w::<0>(lo, hi, buf, window),
        }
    }

    /// The tape interpreter. `W == 0` is the runtime-width instantiation
    /// (reads `window.width`); `W == 4` / `W == 8` are the wide-lane
    /// instantiations where every inner loop has a compile-time trip
    /// count, so LLVM unrolls and vectorizes each gate into one or two
    /// 256/512-bit blocks.
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::exec_steps`]; additionally, if `W != 0`
    /// then `window.width` must equal `W`.
    unsafe fn exec_steps_w<const W: usize>(
        &self,
        lo: usize,
        hi: usize,
        buf: SharedWords,
        window: ColumnWindow,
    ) {
        let ColumnWindow {
            stride,
            col0,
            width: run_width,
            mask,
        } = window;
        debug_assert!(W == 0 || run_width == W);
        let width = if W == 0 { run_width } else { W };
        debug_assert!(col0 + width <= stride);
        debug_assert!(self.node_count * stride <= buf.len);
        let p = buf.ptr;
        let offs = &self.offs;
        let pool = &self.pool;
        for s in lo..hi {
            let op = *self.ops.get_unchecked(s);
            let d = *self.dsts.get_unchecked(s) as usize * stride + col0;
            let off = *offs.get_unchecked(s) as usize;
            // SAFETY (for the whole match): `compile` asserted every
            // destination and fanin index is < node_count, and the
            // caller sized `buf` so `idx * stride + col0 + w` with
            // `w < width <= stride - col0` is in bounds. Sources and
            // destination never alias within one step (a gate is not
            // its own fanin in an acyclic order), and distinct nodes'
            // windows are disjoint (their base offsets differ by at
            // least `stride`).
            match op {
                OpCode::Not => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = !*p.add(a + w);
                    }
                }
                OpCode::Buf => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = *p.add(a + w);
                    }
                }
                OpCode::And2 => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    let b = *pool.get_unchecked(off + 1) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = *p.add(a + w) & *p.add(b + w);
                    }
                }
                OpCode::Nand2 => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    let b = *pool.get_unchecked(off + 1) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = !(*p.add(a + w) & *p.add(b + w));
                    }
                }
                OpCode::Or2 => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    let b = *pool.get_unchecked(off + 1) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = *p.add(a + w) | *p.add(b + w);
                    }
                }
                OpCode::Nor2 => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    let b = *pool.get_unchecked(off + 1) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = !(*p.add(a + w) | *p.add(b + w));
                    }
                }
                OpCode::Xor2 => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    let b = *pool.get_unchecked(off + 1) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = *p.add(a + w) ^ *p.add(b + w);
                    }
                }
                OpCode::Xnor2 => {
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    let b = *pool.get_unchecked(off + 1) as usize * stride + col0;
                    for w in 0..width {
                        *p.add(d + w) = !(*p.add(a + w) ^ *p.add(b + w));
                    }
                }
                OpCode::AndN | OpCode::NandN => {
                    let end = *offs.get_unchecked(s + 1) as usize;
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    std::ptr::copy_nonoverlapping(p.add(a), p.add(d), width);
                    for &f in &pool[off + 1..end] {
                        let fb = f as usize * stride + col0;
                        for w in 0..width {
                            *p.add(d + w) &= *p.add(fb + w);
                        }
                    }
                    if op == OpCode::NandN {
                        for w in 0..width {
                            *p.add(d + w) = !*p.add(d + w);
                        }
                    }
                }
                OpCode::OrN | OpCode::NorN => {
                    let end = *offs.get_unchecked(s + 1) as usize;
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    std::ptr::copy_nonoverlapping(p.add(a), p.add(d), width);
                    for &f in &pool[off + 1..end] {
                        let fb = f as usize * stride + col0;
                        for w in 0..width {
                            *p.add(d + w) |= *p.add(fb + w);
                        }
                    }
                    if op == OpCode::NorN {
                        for w in 0..width {
                            *p.add(d + w) = !*p.add(d + w);
                        }
                    }
                }
                OpCode::XorN | OpCode::XnorN => {
                    let end = *offs.get_unchecked(s + 1) as usize;
                    let a = *pool.get_unchecked(off) as usize * stride + col0;
                    std::ptr::copy_nonoverlapping(p.add(a), p.add(d), width);
                    for &f in &pool[off + 1..end] {
                        let fb = f as usize * stride + col0;
                        for w in 0..width {
                            *p.add(d + w) ^= *p.add(fb + w);
                        }
                    }
                    if op == OpCode::XnorN {
                        for w in 0..width {
                            *p.add(d + w) = !*p.add(d + w);
                        }
                    }
                }
            }
            if let Some(m) = mask {
                *p.add(d + width - 1) &= m;
            }
        }
    }

    /// Evaluates one tape step for one packed word and returns the new
    /// destination word. `values` is node-major with stride `stride`
    /// (`values[node * stride + w]`); `w` selects the word column. Safe,
    /// bounds-checked scalar path used by the incremental re-simulation
    /// session ([`crate::delta::DeltaSim`]), where per-step work is one
    /// dirty word rather than a whole column span.
    pub(crate) fn eval_step_word(&self, s: usize, values: &[u64], stride: usize, w: usize) -> u64 {
        let op = self.ops[s];
        let off = self.offs[s] as usize;
        let at = |f: u32| values[f as usize * stride + w];
        match op {
            OpCode::Not => !at(self.pool[off]),
            OpCode::Buf => at(self.pool[off]),
            OpCode::And2 => at(self.pool[off]) & at(self.pool[off + 1]),
            OpCode::Nand2 => !(at(self.pool[off]) & at(self.pool[off + 1])),
            OpCode::Or2 => at(self.pool[off]) | at(self.pool[off + 1]),
            OpCode::Nor2 => !(at(self.pool[off]) | at(self.pool[off + 1])),
            OpCode::Xor2 => at(self.pool[off]) ^ at(self.pool[off + 1]),
            OpCode::Xnor2 => !(at(self.pool[off]) ^ at(self.pool[off + 1])),
            OpCode::AndN | OpCode::NandN => {
                let end = self.offs[s + 1] as usize;
                let v = self.pool[off..end].iter().fold(u64::MAX, |v, &f| v & at(f));
                if op == OpCode::NandN {
                    !v
                } else {
                    v
                }
            }
            OpCode::OrN | OpCode::NorN => {
                let end = self.offs[s + 1] as usize;
                let v = self.pool[off..end].iter().fold(0u64, |v, &f| v | at(f));
                if op == OpCode::NorN {
                    !v
                } else {
                    v
                }
            }
            OpCode::XorN | OpCode::XnorN => {
                let end = self.offs[s + 1] as usize;
                let v = self.pool[off..end].iter().fold(0u64, |v, &f| v ^ at(f));
                if op == OpCode::XnorN {
                    !v
                } else {
                    v
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    const C17: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn compile_specializes_opcodes() {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n = NOT(a)
w = AND(a, b, c)
y = NAND(n, w)
";
        let nl = bench::parse(src, "t").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        assert_eq!(prog.steps(), 3);
        assert_eq!(prog.num_inputs(), 3);
        assert!(prog.ops.contains(&OpCode::Not));
        assert!(prog.ops.contains(&OpCode::AndN));
        assert!(prog.ops.contains(&OpCode::Nand2));
    }

    #[test]
    fn level_plan_tiles_the_tape_in_order() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let plan = prog.level_plan();
        // c17 is three NAND levels: 2 + 2 + 2 gates.
        assert_eq!(plan.level_count(), 3);
        assert_eq!(plan.ranges(), &[(0, 2), (2, 4), (4, 6)]);
        assert_eq!(plan.widest(), 2);
        // Ranges tile 0..steps and the tape stays topological: every
        // fanin of a step is an input or an earlier step's destination.
        let mut ready = vec![false; prog.node_count()];
        for &(node, _) in &prog.input_positions {
            ready[node.index()] = true;
        }
        for s in 0..prog.steps() {
            let (lo, hi) = (prog.offs[s] as usize, prog.offs[s + 1] as usize);
            for &f in &prog.pool[lo..hi] {
                assert!(ready[f as usize], "step {s} reads unwritten node {f}");
            }
            ready[prog.dsts[s] as usize] = true;
        }
    }

    #[test]
    fn c17_exhaustive_all_thread_counts() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let vectors: Vec<Vec<bool>> = (0u32..32)
            .map(|p| (0..5).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let ps = PatternSet::from_vectors(5, &vectors);
        let reference = prog.run_with_threads(&ps, 1);
        for threads in [2, 3, 8] {
            let vals = prog.run_with_threads(&ps, threads);
            for id in nl.node_ids() {
                assert_eq!(
                    vals.words(id),
                    reference.words(id),
                    "node {} at {threads} threads",
                    nl.node(id).name()
                );
            }
        }
    }

    #[test]
    fn every_strategy_is_bit_identical() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        for len in [1, 63, 64, 65, 200] {
            let ps = PatternSet::random(5, len, 0xFEED + len as u64);
            let reference = prog.run_with_strategy(&ps, KernelStrategy::Single, 1);
            for strategy in [
                KernelStrategy::Column,
                KernelStrategy::Level,
                KernelStrategy::Hybrid,
            ] {
                for threads in [1, 2, 4, 8] {
                    let vals = prog.run_with_strategy(&ps, strategy, threads);
                    for id in nl.node_ids() {
                        assert_eq!(
                            vals.words(id),
                            reference.words(id),
                            "node {} len {len} {} threads {threads}",
                            nl.node(id).name(),
                            strategy.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tail_masked_at_every_thread_count() {
        // NOT of constant 0 is all-ones: tail bits must not leak.
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let ps = PatternSet::zeros(1, 70); // 2 words, 6-bit tail
        for threads in [1, 2] {
            let vals = prog.run_with_threads(&ps, threads);
            assert_eq!(
                vals.count_ones(nl.find("y").unwrap()),
                70,
                "{threads} threads"
            );
        }
        // The level and hybrid executors must mask the same tail.
        for strategy in [KernelStrategy::Level, KernelStrategy::Hybrid] {
            let vals = prog.run_with_strategy(&ps, strategy, 4);
            assert_eq!(
                vals.count_ones(nl.find("y").unwrap()),
                70,
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn empty_pattern_set() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let vals = prog.run(&PatternSet::zeros(5, 0));
        assert!(vals.is_empty());
        // Forced strategies degrade gracefully on empty sets too.
        for strategy in [KernelStrategy::Level, KernelStrategy::Hybrid] {
            assert!(prog
                .run_with_strategy(&PatternSet::zeros(5, 0), strategy, 4)
                .is_empty());
        }
    }

    #[test]
    fn thread_count_is_clamped_to_columns() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let ps = PatternSet::random(5, 100, 1); // 2 words
        let a = prog.run_with_threads(&ps, 64);
        let b = prog.run_with_threads(&ps, 1);
        for id in nl.node_ids() {
            assert_eq!(a.words(id), b.words(id));
        }
    }

    #[test]
    fn default_threads_stays_single_for_tiny_workloads() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        assert_eq!(prog.default_threads(1), 1);
        assert_eq!(prog.default_threads(64), 1);
    }

    #[test]
    fn planner_picks_strategies_by_shape() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        // One thread or no words: single.
        assert_eq!(prog.plan(1000, 1).strategy, KernelStrategy::Single);
        assert_eq!(prog.plan(0, 8).strategy, KernelStrategy::Single);
        // Words >= threads: column, workers = request.
        let p = prog.plan(64 * 8, 4);
        assert_eq!((p.strategy, p.workers), (KernelStrategy::Column, 4));
        // c17's levels are 2 gates wide — far below the per-worker
        // minimum — so a 1-word run falls back to a single worker and
        // the "64 threads on 2 words" request clamps to the columns.
        let p = prog.plan(64, 8);
        assert_eq!((p.strategy, p.workers), (KernelStrategy::Single, 1));
        let p = prog.plan(100, 64);
        assert_eq!((p.strategy, p.workers), (KernelStrategy::Column, 2));
        assert_eq!(p.requested, 64);

        // A wide synthetic netlist (1 level with 64 parallel NOTs, one
        // OR): level for 1 word, hybrid for 2 words.
        let mut src = String::from("INPUT(a)\nOUTPUT(y)\n");
        let mut or_in = Vec::new();
        for i in 0..64 {
            src.push_str(&format!("n{i} = NOT(a)\n"));
            or_in.push(format!("n{i}"));
        }
        src.push_str(&format!("y = OR({})\n", or_in.join(", ")));
        let wide = bench::parse(&src, "wide").unwrap();
        let prog = SimProgram::compile(&wide).unwrap();
        let p = prog.plan(64, 2);
        assert_eq!((p.strategy, p.workers), (KernelStrategy::Level, 2));
        let p = prog.plan(128, 4);
        assert_eq!((p.strategy, p.workers), (KernelStrategy::Hybrid, 4));
    }

    #[test]
    fn wide_netlist_level_split_matches_reference() {
        // 200 parallel XOR gates in one level, then a tree — wide
        // enough that 4 workers genuinely split each level.
        let mut src = String::from("INPUT(a)\nINPUT(b)\nOUTPUT(y)\n");
        let mut names = Vec::new();
        for i in 0..200 {
            let name = format!("x{i}");
            src.push_str(&format!("{name} = XOR(a, b)\n"));
            names.push(name);
        }
        src.push_str(&format!("y = AND({})\n", names.join(", ")));
        let nl = bench::parse(&src, "wide").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        for len in [5, 64, 130] {
            let ps = PatternSet::random(2, len, len as u64);
            let reference = prog.run_with_strategy(&ps, KernelStrategy::Single, 1);
            for threads in [2, 3, 4, 8] {
                let vals = prog.run_with_strategy(&ps, KernelStrategy::Level, threads);
                for id in nl.node_ids() {
                    assert_eq!(vals.words(id), reference.words(id), "len {len} t{threads}");
                }
            }
        }
    }

    #[test]
    fn forced_lane_widths_are_bit_identical() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        // Pattern counts chosen so chunks are narrower than, equal to,
        // and wider than both block widths, with and without a tail:
        // 5 words + tail (321), exact 8 words (512), 13 words + tail.
        for len in [100usize, 321, 512, 830] {
            let ps = PatternSet::random(5, len, 0x1a + len as u64);
            // Planner path (unblocked for a circuit this small).
            let reference = prog.run_with_threads(&ps, 1);
            for lanes in [1usize, 4, 8] {
                for threads in [1usize, 2, 3] {
                    let vals = prog.run_with_lanes(&ps, lanes, threads);
                    for id in nl.node_ids() {
                        assert_eq!(
                            vals.words(id),
                            reference.words(id),
                            "len {len} lanes {lanes} threads {threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_tail_is_masked_in_every_block() {
        // NOT of constant 0 is all-ones: only the final word may be
        // partial, and only its owning block may mask.
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let ps = PatternSet::zeros(1, 9 * 64 + 7); // 10 words, 7-bit tail
        for lanes in [1usize, 4, 8] {
            let vals = prog.run_with_lanes(&ps, lanes, 1);
            assert_eq!(
                vals.count_ones(nl.find("y").unwrap()),
                9 * 64 + 7,
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn planner_reports_dispatch_width_and_never_tiles() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        // Spans of exactly 1/4/8 words run the monomorphized walk.
        assert_eq!(prog.auto_lanes(1), 1);
        assert_eq!(prog.auto_lanes(4), 4);
        assert_eq!(prog.auto_lanes(8), 8);
        // Everything else — including arbitrarily wide chunks — stays
        // on the runtime-width streaming walk: the planner never tiles.
        assert_eq!(prog.auto_lanes(2), 0);
        assert_eq!(prog.auto_lanes(1000), 0);
        assert_eq!(prog.auto_lanes(1 << 24), 0);
        // Planner plumbs the width through to the plan.
        assert_eq!(prog.plan(64, 1).lanes, 1); // one word
        assert_eq!(prog.plan(8 * 64, 1).lanes, 8); // exactly eight
        assert_eq!(prog.plan(100, 1).lanes, 0); // two words
        assert_eq!(prog.plan(8 * 64, 2).lanes, 4); // 8 cols / 2 workers
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn bad_lane_width_panics() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let _ = prog.run_with_lanes(&PatternSet::zeros(5, 8), 3, 1);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn wrong_width_panics() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let _ = prog.run(&PatternSet::zeros(4, 8));
    }

    #[test]
    fn kernel_run_labels_throughput_with_host_threads() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let _ = prog.run(&PatternSet::zeros(5, 64));
        // Single-core CI numbers are only interpretable next to the
        // host's parallelism; the gauge makes that machine-detectable.
        assert!(htforge_obs::gauge("sim.host_threads").get() >= 1.0);
    }
}
