//! Compiled, multi-threaded bit-parallel simulation kernel.
//!
//! [`SimProgram`] lowers a [`Netlist`] **once** into a flat instruction
//! tape and then evaluates pattern sets against that tape, instead of
//! re-walking the graph gate-by-gate the way the original interpreter
//! did. Two properties make the tape fast:
//!
//! * **SoA layout, no per-gate allocation.** The tape is four parallel
//!   arrays — opcode, destination, fanin offset, and one contiguous
//!   fanin-index pool — so the inner loop is a linear scan with no enum
//!   dispatch over [`NodeKind`](htforge_netlist::NodeKind), no `Vec`
//!   scratch per gate, and specialized opcodes for the 1- and 2-input
//!   gates that dominate real netlists.
//! * **Column parallelism.** Values are packed 64 patterns per word, and
//!   the word *columns* of a pattern set are fully independent: word `w`
//!   of every node depends only on word `w` of its fanins. [`SimProgram::run_with_threads`]
//!   therefore splits the columns across scoped [`std::thread`] workers
//!   with zero synchronization inside the hot loop (the same
//!   `thread::scope` idiom used by the compatibility-graph builder in
//!   `htforge-core`).
//!
//! The public [`crate::simulator::Simulator`] API is a thin wrapper over
//! this kernel, so every existing caller — rare-node extraction, signal
//! probabilities, MERO / ND-ATPG / random detection, coverage
//! evaluation, fault simulation's good-machine run — upgrades without
//! code changes.

use std::num::NonZeroUsize;

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError, NodeKind};

use crate::patterns::PatternSet;
use crate::simulator::NodeValues;

/// Opcode of one tape step. 1- and 2-input gates get dedicated opcodes
/// (the common case in technology-mapped netlists); wider gates fall
/// back to the `*N` fold forms driven by the fanin pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpCode {
    /// Unary complement (also NAND/NOR/XNOR of one input).
    Not,
    /// Unary copy (also AND/OR/XOR of one input).
    Buf,
    And2,
    Nand2,
    Or2,
    Nor2,
    Xor2,
    Xnor2,
    AndN,
    NandN,
    OrN,
    NorN,
    XorN,
    XnorN,
}

/// A netlist compiled to a flat simulation tape.
///
/// # Examples
///
/// ```
/// use htforge_netlist::bench;
/// use htforge_sim::{PatternSet, SimProgram};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "t")?;
/// let prog = SimProgram::compile(&nl)?;
/// let ps = PatternSet::from_vectors(2, &[vec![true, false], vec![true, true]]);
/// let vals = prog.run(&ps);
/// let y = nl.find("y").unwrap();
/// assert!(vals.value(y, 0));
/// assert!(!vals.value(y, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimProgram {
    node_count: usize,
    /// `(node, column index into the PatternSet)` for each primary input.
    input_positions: Vec<(NodeId, usize)>,
    /// Per-step opcode, in topological order.
    ops: Vec<OpCode>,
    /// Per-step destination node index.
    dsts: Vec<u32>,
    /// Per-step offset into `pool`; length `ops.len() + 1` so step `s`
    /// reads `pool[offs[s]..offs[s + 1]]`.
    offs: Vec<u32>,
    /// Contiguous fanin node indices for every step.
    pool: Vec<u32>,
    /// Observability handles, fetched once at compile time so each run
    /// records with one atomic add (`sim.kernel_words`) plus — only when
    /// the recorder is enabled — a throughput gauge update.
    metrics: KernelMetrics,
}

#[derive(Debug, Clone)]
struct KernelMetrics {
    words: htforge_obs::Counter,
    throughput: htforge_obs::Gauge,
}

impl KernelMetrics {
    fn from_global() -> Self {
        KernelMetrics {
            words: htforge_obs::counter("sim.kernel_words"),
            throughput: htforge_obs::gauge("sim.kernel_words_per_sec"),
        }
    }
}

impl SimProgram {
    /// Lowers `nl` into a simulation tape (topological order, SoA
    /// arrays, specialized opcodes).
    ///
    /// Sequential netlists are accepted under the same convention as
    /// [`crate::simulator::Simulator`]: DFF Q outputs listed in
    /// `nl.inputs()` (scan-cut netlists) are free inputs; other DFF
    /// outputs simulate as constant 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part of `nl` is cyclic.
    pub fn compile(nl: &Netlist) -> Result<Self, NetlistError> {
        let order = htforge_netlist::graph::topo_order(nl)?;
        let node_count = nl.node_count();
        let input_positions: Vec<(NodeId, usize)> = nl
            .inputs()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, pos))
            .collect();

        let mut ops = Vec::new();
        let mut dsts = Vec::new();
        let mut offs = vec![0u32];
        let mut pool: Vec<u32> = Vec::new();

        for &id in &order {
            let node = nl.node(id);
            let kind = match node.kind() {
                NodeKind::Gate(k) => k,
                NodeKind::Input | NodeKind::Dff => continue,
            };
            let fanins = node.fanins();
            let op = match fanins.len() {
                1 => {
                    if kind.is_inverting() {
                        OpCode::Not
                    } else {
                        OpCode::Buf
                    }
                }
                2 => {
                    use htforge_netlist::GateKind as G;
                    match kind {
                        G::And => OpCode::And2,
                        G::Nand => OpCode::Nand2,
                        G::Or => OpCode::Or2,
                        G::Nor => OpCode::Nor2,
                        G::Xor => OpCode::Xor2,
                        G::Xnor => OpCode::Xnor2,
                        // Unary kinds never have two fanins (validated
                        // by the netlist), but stay total anyway.
                        G::Not => OpCode::Not,
                        G::Buf => OpCode::Buf,
                    }
                }
                _ => {
                    use htforge_netlist::GateKind as G;
                    match kind {
                        G::And => OpCode::AndN,
                        G::Nand => OpCode::NandN,
                        G::Or => OpCode::OrN,
                        G::Nor => OpCode::NorN,
                        G::Xor => OpCode::XorN,
                        G::Xnor => OpCode::XnorN,
                        G::Not => OpCode::Not,
                        G::Buf => OpCode::Buf,
                    }
                }
            };
            ops.push(op);
            dsts.push(id.index() as u32);
            pool.extend(fanins.iter().map(|f| f.index() as u32));
            offs.push(pool.len() as u32);
        }

        // Kernel safety invariant: every node index on the tape is in
        // bounds, so the hot loop can use unchecked accesses.
        debug_assert!(dsts.iter().all(|&d| (d as usize) < node_count));
        assert!(
            pool.iter().all(|&f| (f as usize) < node_count),
            "fanin index out of bounds"
        );
        assert!(
            dsts.iter().all(|&d| (d as usize) < node_count),
            "destination index out of bounds"
        );

        Ok(SimProgram {
            node_count,
            input_positions,
            ops,
            dsts,
            offs,
            pool,
            metrics: KernelMetrics::from_global(),
        })
    }

    /// Number of nodes in the compiled netlist.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of compiled gate steps.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.ops.len()
    }

    /// Number of primary-input columns the program expects.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_positions.len()
    }

    /// Simulates `patterns`, choosing a thread count automatically:
    /// single-threaded for small workloads (where spawn overhead
    /// dominates), [`std::thread::available_parallelism`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the compiled
    /// netlist's input count.
    #[must_use]
    pub fn run(&self, patterns: &PatternSet) -> NodeValues {
        self.run_with_threads(patterns, self.default_threads(patterns.len()))
    }

    /// The automatic thread count [`SimProgram::run`] would use for a
    /// `len`-pattern set.
    #[must_use]
    pub fn default_threads(&self, len: usize) -> usize {
        let words = PatternSet::words_for(len);
        // Below ~2^15 word-gate evaluations a spawn costs more than it
        // saves; also never run more workers than there are columns.
        if words < 4 || self.steps().saturating_mul(words) < (1 << 15) {
            return 1;
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(words)
    }

    /// Simulates `patterns` over exactly `threads` workers (clamped to
    /// at least 1 and at most the number of 64-pattern word columns).
    ///
    /// Output is bit-identical at every thread count: each worker owns a
    /// contiguous range of word columns, and columns never interact.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_inputs()` differs from the compiled
    /// netlist's input count.
    #[must_use]
    pub fn run_with_threads(&self, patterns: &PatternSet, threads: usize) -> NodeValues {
        // Timing only when the recorder is enabled: two clock reads per
        // run would still be noise, but the disabled path stays exactly
        // the pre-instrumentation code.
        let started = htforge_obs::enabled().then(std::time::Instant::now);
        let values = self.run_columns(patterns, threads);
        let words_done = (self.steps() * PatternSet::words_for(patterns.len())) as u64;
        self.metrics.words.add(words_done);
        if let Some(t0) = started {
            let dt = t0.elapsed().as_secs_f64();
            if dt > 0.0 {
                self.metrics.throughput.set(words_done as f64 / dt);
            }
        }
        values
    }

    fn run_columns(&self, patterns: &PatternSet, threads: usize) -> NodeValues {
        assert_eq!(
            patterns.num_inputs(),
            self.input_positions.len(),
            "pattern width does not match netlist input count"
        );
        let len = patterns.len();
        let words_per_node = PatternSet::words_for(len);
        let tail_mask = PatternSet::tail_mask(len);
        let mut words = vec![0u64; self.node_count * words_per_node];

        if words_per_node == 0 {
            return NodeValues::from_raw(len, words_per_node, words);
        }

        let threads = threads.clamp(1, words_per_node);
        if threads == 1 {
            self.exec_columns(
                patterns,
                0,
                words_per_node,
                words_per_node,
                tail_mask,
                &mut words,
            );
            return NodeValues::from_raw(len, words_per_node, words);
        }

        // Columns are embarrassingly parallel: give each worker a
        // contiguous column range, let it simulate into a dense local
        // buffer (stride = its chunk width), then stitch the chunks into
        // the node-major result. The stitch is a per-node contiguous
        // copy — O(nodes × words) — which is noise next to the
        // O(steps × words) simulation itself.
        let base = words_per_node / threads;
        let extra = words_per_node % threads;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut w0 = 0usize;
            for t in 0..threads {
                let chunk = base + usize::from(t < extra);
                let start = w0;
                handles.push(scope.spawn(move || {
                    let mut local = vec![0u64; self.node_count * chunk];
                    self.exec_columns(
                        patterns,
                        start,
                        chunk,
                        words_per_node,
                        tail_mask,
                        &mut local,
                    );
                    (start, chunk, local)
                }));
                w0 += chunk;
            }
            for handle in handles {
                let (start, chunk, local) = handle.join().expect("simulation worker panicked");
                for node in 0..self.node_count {
                    let dst = node * words_per_node + start;
                    let src = node * chunk;
                    words[dst..dst + chunk].copy_from_slice(&local[src..src + chunk]);
                }
            }
        });
        NodeValues::from_raw(len, words_per_node, words)
    }

    /// Executes the tape over columns `[w0, w0 + chunk)` into `buf`,
    /// which is node-major with stride `chunk` (so `buf[node * chunk + k]`
    /// is column `w0 + k` of `node`). `buf` must be zero-initialized:
    /// unconnected DFF outputs read as constant 0 (reset state).
    fn exec_columns(
        &self,
        patterns: &PatternSet,
        w0: usize,
        chunk: usize,
        words_per_node: usize,
        tail_mask: u64,
        buf: &mut [u64],
    ) {
        debug_assert_eq!(buf.len(), self.node_count * chunk);
        debug_assert!(w0 + chunk <= words_per_node);

        for &(node, pos) in &self.input_positions {
            let src = &patterns.input_words(pos)[w0..w0 + chunk];
            let base = node.index() * chunk;
            buf[base..base + chunk].copy_from_slice(src);
        }

        // The last global column carries the tail; only the worker that
        // owns it masks anything.
        let masked_at = if w0 + chunk == words_per_node && tail_mask != u64::MAX {
            chunk - 1
        } else {
            usize::MAX
        };

        let offs = &self.offs;
        let pool = &self.pool;
        for (s, (&op, &dst)) in self.ops.iter().zip(&self.dsts).enumerate() {
            let d = dst as usize * chunk;
            let off = offs[s] as usize;
            // SAFETY: `compile` asserted every destination and fanin
            // index is < node_count, and `buf` spans node_count * chunk
            // words, so every `idx * chunk + w` with `w < chunk` is in
            // bounds. Sources and destination may never alias within one
            // step (a gate is not its own fanin in an acyclic order),
            // and each word is read before the destination word is
            // written.
            unsafe {
                match op {
                    OpCode::Not => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) = !*buf.get_unchecked(a + w);
                        }
                    }
                    OpCode::Buf => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) = *buf.get_unchecked(a + w);
                        }
                    }
                    OpCode::And2 => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        let b = *pool.get_unchecked(off + 1) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) =
                                *buf.get_unchecked(a + w) & *buf.get_unchecked(b + w);
                        }
                    }
                    OpCode::Nand2 => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        let b = *pool.get_unchecked(off + 1) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) =
                                !(*buf.get_unchecked(a + w) & *buf.get_unchecked(b + w));
                        }
                    }
                    OpCode::Or2 => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        let b = *pool.get_unchecked(off + 1) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) =
                                *buf.get_unchecked(a + w) | *buf.get_unchecked(b + w);
                        }
                    }
                    OpCode::Nor2 => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        let b = *pool.get_unchecked(off + 1) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) =
                                !(*buf.get_unchecked(a + w) | *buf.get_unchecked(b + w));
                        }
                    }
                    OpCode::Xor2 => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        let b = *pool.get_unchecked(off + 1) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) =
                                *buf.get_unchecked(a + w) ^ *buf.get_unchecked(b + w);
                        }
                    }
                    OpCode::Xnor2 => {
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        let b = *pool.get_unchecked(off + 1) as usize * chunk;
                        for w in 0..chunk {
                            *buf.get_unchecked_mut(d + w) =
                                !(*buf.get_unchecked(a + w) ^ *buf.get_unchecked(b + w));
                        }
                    }
                    OpCode::AndN | OpCode::NandN => {
                        let end = offs[s + 1] as usize;
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        buf.copy_within(a..a + chunk, d);
                        for &f in &pool[off + 1..end] {
                            let fb = f as usize * chunk;
                            for w in 0..chunk {
                                *buf.get_unchecked_mut(d + w) &= *buf.get_unchecked(fb + w);
                            }
                        }
                        if op == OpCode::NandN {
                            for w in 0..chunk {
                                let v = buf.get_unchecked_mut(d + w);
                                *v = !*v;
                            }
                        }
                    }
                    OpCode::OrN | OpCode::NorN => {
                        let end = offs[s + 1] as usize;
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        buf.copy_within(a..a + chunk, d);
                        for &f in &pool[off + 1..end] {
                            let fb = f as usize * chunk;
                            for w in 0..chunk {
                                *buf.get_unchecked_mut(d + w) |= *buf.get_unchecked(fb + w);
                            }
                        }
                        if op == OpCode::NorN {
                            for w in 0..chunk {
                                let v = buf.get_unchecked_mut(d + w);
                                *v = !*v;
                            }
                        }
                    }
                    OpCode::XorN | OpCode::XnorN => {
                        let end = offs[s + 1] as usize;
                        let a = *pool.get_unchecked(off) as usize * chunk;
                        buf.copy_within(a..a + chunk, d);
                        for &f in &pool[off + 1..end] {
                            let fb = f as usize * chunk;
                            for w in 0..chunk {
                                *buf.get_unchecked_mut(d + w) ^= *buf.get_unchecked(fb + w);
                            }
                        }
                        if op == OpCode::XnorN {
                            for w in 0..chunk {
                                let v = buf.get_unchecked_mut(d + w);
                                *v = !*v;
                            }
                        }
                    }
                }
            }
            if masked_at != usize::MAX {
                buf[d + masked_at] &= tail_mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    const C17: &str = "\
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn compile_specializes_opcodes() {
        let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n = NOT(a)
w = AND(a, b, c)
y = NAND(n, w)
";
        let nl = bench::parse(src, "t").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        assert_eq!(prog.steps(), 3);
        assert_eq!(prog.num_inputs(), 3);
        assert!(prog.ops.contains(&OpCode::Not));
        assert!(prog.ops.contains(&OpCode::AndN));
        assert!(prog.ops.contains(&OpCode::Nand2));
    }

    #[test]
    fn c17_exhaustive_all_thread_counts() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let vectors: Vec<Vec<bool>> = (0u32..32)
            .map(|p| (0..5).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let ps = PatternSet::from_vectors(5, &vectors);
        let reference = prog.run_with_threads(&ps, 1);
        for threads in [2, 3, 8] {
            let vals = prog.run_with_threads(&ps, threads);
            for id in nl.node_ids() {
                assert_eq!(
                    vals.words(id),
                    reference.words(id),
                    "node {} at {threads} threads",
                    nl.node(id).name()
                );
            }
        }
    }

    #[test]
    fn tail_masked_at_every_thread_count() {
        // NOT of constant 0 is all-ones: tail bits must not leak.
        let nl = bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let ps = PatternSet::zeros(1, 70); // 2 words, 6-bit tail
        for threads in [1, 2] {
            let vals = prog.run_with_threads(&ps, threads);
            assert_eq!(
                vals.count_ones(nl.find("y").unwrap()),
                70,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_pattern_set() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let vals = prog.run(&PatternSet::zeros(5, 0));
        assert!(vals.is_empty());
    }

    #[test]
    fn thread_count_is_clamped_to_columns() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let ps = PatternSet::random(5, 100, 1); // 2 words
        let a = prog.run_with_threads(&ps, 64);
        let b = prog.run_with_threads(&ps, 1);
        for id in nl.node_ids() {
            assert_eq!(a.words(id), b.words(id));
        }
    }

    #[test]
    fn default_threads_stays_single_for_tiny_workloads() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        assert_eq!(prog.default_threads(1), 1);
        assert_eq!(prog.default_threads(64), 1);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn wrong_width_panics() {
        let nl = bench::parse(C17, "c17").unwrap();
        let prog = SimProgram::compile(&nl).unwrap();
        let _ = prog.run(&PatternSet::zeros(4, 8));
    }
}
