//! Three-valued (0 / 1 / X) logic and cube simulation.
//!
//! Used to verify that a merged PODEM test cube still justifies every rare
//! node of a clique (the paper's "no validation needed" claim, which we
//! nevertheless assert in tests), and as the value system of the ATPG
//! crate's test cubes.

use std::fmt;

use htforge_netlist::{netlist::NodeId, Netlist, NetlistError, NodeKind};

/// A three-valued logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tri {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / don't-care.
    #[default]
    X,
}

impl Tri {
    /// Converts a `bool`.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Tri::One
        } else {
            Tri::Zero
        }
    }

    /// The definite boolean value, if any.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tri::Zero => Some(false),
            Tri::One => Some(true),
            Tri::X => None,
        }
    }

    /// Whether this is a care value (0 or 1).
    #[must_use]
    pub fn is_care(self) -> bool {
        self != Tri::X
    }

    /// Three-valued negation.
    ///
    /// An inherent method rather than `std::ops::Not` so call sites stay
    /// explicit about Kleene (not boolean) semantics.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        match self {
            Tri::Zero => Tri::One,
            Tri::One => Tri::Zero,
            Tri::X => Tri::X,
        }
    }

    /// Three-valued AND.
    #[must_use]
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Zero, _) | (_, Tri::Zero) => Tri::Zero,
            (Tri::One, Tri::One) => Tri::One,
            _ => Tri::X,
        }
    }

    /// Three-valued OR.
    #[must_use]
    pub fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::One, _) | (_, Tri::One) => Tri::One,
            (Tri::Zero, Tri::Zero) => Tri::Zero,
            _ => Tri::X,
        }
    }

    /// Three-valued XOR.
    #[must_use]
    pub fn xor(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::X, _) | (_, Tri::X) => Tri::X,
            (a, b) => Tri::from_bool(a != b),
        }
    }

    /// Two cubes *conflict* on a bit iff one assigns 0 and the other 1.
    /// X is compatible with everything. This is the paper's §III-C
    /// care-bit conflict test.
    #[must_use]
    pub fn conflicts(self, other: Tri) -> bool {
        matches!((self, other), (Tri::Zero, Tri::One) | (Tri::One, Tri::Zero))
    }

    /// Merges two non-conflicting values (care value wins over X).
    ///
    /// # Panics
    ///
    /// Panics if the values conflict; check [`Tri::conflicts`] first.
    #[must_use]
    pub fn merge(self, other: Tri) -> Tri {
        assert!(!self.conflicts(other), "merging conflicting care bits");
        if self == Tri::X {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tri::Zero => "0",
            Tri::One => "1",
            Tri::X => "X",
        })
    }
}

/// Evaluates a gate in three-valued logic.
#[must_use]
pub fn eval_gate_tri(kind: htforge_netlist::GateKind, fanins: &[Tri]) -> Tri {
    use htforge_netlist::GateKind;
    assert!(!fanins.is_empty(), "gate evaluated with no fan-ins");
    match kind {
        GateKind::And => fanins.iter().fold(Tri::One, |a, &b| a.and(b)),
        GateKind::Nand => fanins.iter().fold(Tri::One, |a, &b| a.and(b)).not(),
        GateKind::Or => fanins.iter().fold(Tri::Zero, |a, &b| a.or(b)),
        GateKind::Nor => fanins.iter().fold(Tri::Zero, |a, &b| a.or(b)).not(),
        GateKind::Xor => fanins.iter().fold(Tri::Zero, |a, &b| a.xor(b)),
        GateKind::Xnor => fanins.iter().fold(Tri::Zero, |a, &b| a.xor(b)).not(),
        GateKind::Not => fanins[0].not(),
        GateKind::Buf => fanins[0],
    }
}

/// Simulates one three-valued input assignment over the whole netlist.
/// `assignment` supplies one [`Tri`] per primary input (in `nl.inputs()`
/// order); all other sources (unconnected DFFs) evaluate to X.
///
/// Returns one value per node, indexed by [`NodeId::index`].
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `assignment.len()` differs from the input count.
pub fn simulate_tri(nl: &Netlist, assignment: &[Tri]) -> Result<Vec<Tri>, NetlistError> {
    assert_eq!(
        assignment.len(),
        nl.inputs().len(),
        "assignment width does not match input count"
    );
    let order = htforge_netlist::graph::topo_order(nl)?;
    let mut values = vec![Tri::X; nl.node_count()];
    for (pos, &id) in nl.inputs().iter().enumerate() {
        values[id.index()] = assignment[pos];
    }
    let mut scratch: Vec<Tri> = Vec::new();
    for id in order {
        let node = nl.node(id);
        if let NodeKind::Gate(kind) = node.kind() {
            scratch.clear();
            scratch.extend(node.fanins().iter().map(|f| values[f.index()]));
            values[id.index()] = eval_gate_tri(kind, &scratch);
        }
    }
    Ok(values)
}

/// Checks whether `assignment` *justifies* `node = value`: the 3-valued
/// simulation yields the definite `value` at `node` regardless of how the
/// X bits are later filled.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
pub fn justifies(
    nl: &Netlist,
    assignment: &[Tri],
    node: NodeId,
    value: bool,
) -> Result<bool, NetlistError> {
    let values = simulate_tri(nl, assignment)?;
    Ok(values[node.index()] == Tri::from_bool(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use htforge_netlist::bench;

    #[test]
    fn truth_tables() {
        use Tri::{One, Zero, X};
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(One.xor(Zero), One);
        assert_eq!(X.not(), X);
    }

    #[test]
    fn conflicts_and_merge() {
        use Tri::{One, Zero, X};
        assert!(Zero.conflicts(One));
        assert!(!Zero.conflicts(X));
        assert!(!X.conflicts(X));
        assert_eq!(X.merge(One), One);
        assert_eq!(Zero.merge(X), Zero);
        assert_eq!(One.merge(One), One);
    }

    #[test]
    #[should_panic(expected = "conflicting")]
    fn merge_conflicting_panics() {
        let _ = Tri::Zero.merge(Tri::One);
    }

    #[test]
    fn cube_simulation_propagates_controlling_values() {
        // y = AND(a, b): a=0 determines y=0 even with b=X.
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let vals = simulate_tri(&nl, &[Tri::Zero, Tri::X]).unwrap();
        assert_eq!(vals[nl.find("y").unwrap().index()], Tri::Zero);
        let vals = simulate_tri(&nl, &[Tri::One, Tri::X]).unwrap();
        assert_eq!(vals[nl.find("y").unwrap().index()], Tri::X);
    }

    #[test]
    fn justifies_checks_definite_value() {
        let nl = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n", "t").unwrap();
        let y = nl.find("y").unwrap();
        assert!(justifies(&nl, &[Tri::Zero, Tri::Zero], y, true).unwrap());
        assert!(!justifies(&nl, &[Tri::Zero, Tri::X], y, true).unwrap());
        assert!(justifies(&nl, &[Tri::One, Tri::X], y, false).unwrap());
    }

    #[test]
    fn three_valued_agrees_with_two_valued_on_care_inputs() {
        use htforge_netlist::GateKind;
        for kind in GateKind::ALL {
            let arity = if kind.is_unary() { 1 } else { 3 };
            for pattern in 0u64..(1 << arity) {
                let bools: Vec<bool> = (0..arity).map(|i| (pattern >> i) & 1 == 1).collect();
                let tris: Vec<Tri> = bools.iter().map(|&b| Tri::from_bool(b)).collect();
                assert_eq!(
                    eval_gate_tri(kind, &tris),
                    Tri::from_bool(kind.eval_bool(&bools)),
                    "{kind} {pattern:b}"
                );
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Tri::Zero.to_string(), "0");
        assert_eq!(Tri::One.to_string(), "1");
        assert_eq!(Tri::X.to_string(), "X");
    }
}
